//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam) crate.
//!
//! Implements the multi-producer multi-consumer channel subset this workspace uses
//! ([`channel::unbounded`], [`channel::Sender`], [`channel::Receiver`] and the
//! [`select!`] macro) on top of `std::sync` primitives. The `select!` implementation polls
//! its `recv` arms in order, delivering queued messages before reporting disconnections,
//! and parks the thread between rounds with **wake-accurate** unparking (every send on a
//! selected channel unparks the selector) — which matches crossbeam's observable
//! semantics for the workspace's select loops (arbitrary-order arm readiness, `Err` on
//! disconnection, no starvation of a ready arm by a permanently-disconnected one,
//! `default(timeout)` after inactivity) without adding polling-interval latency to
//! cross-thread hand-offs.

#![forbid(unsafe_code)]

pub mod channel {
    //! MPMC channels mirroring `crossbeam_channel`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::thread::Thread;
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        /// Threads parked in a [`select!`] with this channel as an arm. A send (or a
        /// disconnecting sender drop) unparks them all, so a selecting thread wakes at
        /// channel-op speed instead of a polling interval.
        waiters: Vec<Thread>,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        cond: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                waiters: Vec::new(),
            }),
            cond: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            let waiters = inner.waiters.clone();
            drop(inner);
            self.shared.cond.notify_all();
            for waiter in waiters {
                waiter.unpark();
            }
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders += 1;
            drop(inner);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            let waiters = if disconnected {
                std::mem::take(&mut inner.waiters)
            } else {
                Vec::new()
            };
            drop(inner);
            if disconnected {
                self.shared.cond.notify_all();
                for waiter in waiters {
                    waiter.unpark();
                }
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .cond
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .cond
                    .wait_timeout(inner, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Whether the channel currently holds no messages.
        pub fn is_empty(&self) -> bool {
            let inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.queue.is_empty()
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            let inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.queue.len()
        }

        #[doc(hidden)]
        pub fn __select_disconnected_result(&self) -> Result<T, RecvError> {
            Err(RecvError)
        }

        /// Registers the current thread to be unparked by the next send on this
        /// channel (or by the sender side disconnecting). Part of the [`select!`]
        /// machinery; idempotent per thread.
        #[doc(hidden)]
        pub fn __select_register(&self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            let me = std::thread::current();
            if !inner.waiters.iter().any(|t| t.id() == me.id()) {
                inner.waiters.push(me);
            }
        }

        /// Removes the current thread from this channel's waiter list.
        #[doc(hidden)]
        pub fn __select_unregister(&self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            let me = std::thread::current().id();
            inner.waiters.retain(|t| t.id() != me);
        }

        /// Whether a [`select!`] arm on this channel would fire right now (queued
        /// message or observable disconnection).
        #[doc(hidden)]
        pub fn __select_ready(&self) -> bool {
            let inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            !inner.queue.is_empty() || inner.senders == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers += 1;
            drop(inner);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    pub use crate::select;
}

/// Waits on several channel operations at once: `recv(receiver) -> result => body` arms
/// plus a mandatory `default(timeout) => body` arm (the only shape this workspace uses).
///
/// Queued messages take priority over disconnections: each polling round first scans
/// every arm (in order) for a deliverable message and only then reports the first
/// *disconnected* arm as ready with `Err(RecvError)`. Real crossbeam picks uniformly at
/// random among ready operations, which guarantees a permanently-ready disconnected arm
/// cannot starve an arm with pending messages; the message-first scan gives the same
/// progress guarantee deterministically. With no arm ready the thread registers as a
/// waiter on every arm and parks until a send (or sender-side disconnect) unparks it or
/// the default deadline passes — select wake-ups track channel operations, not a
/// polling interval.
#[macro_export]
macro_rules! select {
    ($(recv($r:expr) -> $res:pat => $body:expr,)+ default($timeout:expr) => $default:expr $(,)?) => {{
        let __deadline = ::std::time::Instant::now() + $timeout;
        'crossbeam_select: loop {
            // Pass 1: deliver a queued message from the first arm holding one. A
            // disconnected arm is skipped here — if any other arm has traffic queued,
            // that traffic must keep flowing (a disconnection stays observable forever;
            // a starved message queue deadlocks its producer's counterpart).
            $(
                {
                    let __receiver = &$r;
                    if let ::std::result::Result::Ok(__value) = __receiver.try_recv() {
                        let $res: ::std::result::Result<_, $crate::channel::RecvError> =
                            ::std::result::Result::Ok(__value);
                        break 'crossbeam_select ($body);
                    }
                }
            )+
            // Pass 2: no arm held a message — the first disconnected arm is ready with
            // `Err(RecvError)`, like crossbeam's. (A message that raced in between the
            // passes is simply delivered, which is equally valid.)
            $(
                {
                    let __receiver = &$r;
                    match __receiver.try_recv() {
                        ::std::result::Result::Ok(__value) => {
                            let $res: ::std::result::Result<_, $crate::channel::RecvError> =
                                ::std::result::Result::Ok(__value);
                            break 'crossbeam_select ($body);
                        }
                        ::std::result::Result::Err(
                            $crate::channel::TryRecvError::Disconnected,
                        ) => {
                            let $res = __receiver.__select_disconnected_result();
                            break 'crossbeam_select ($body);
                        }
                        ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                    }
                }
            )+
            if ::std::time::Instant::now() >= __deadline {
                break 'crossbeam_select ($default);
            }
            // No arm is ready: park until a sender wakes us or the default deadline
            // passes. Registration makes the wake-up precise — a send (or sender-side
            // disconnect) on any arm unparks this thread immediately, so select adds
            // channel-op latency, not polling-interval latency. The recheck between
            // registering and parking closes the race with a send that landed after
            // the polling passes (its unpark would be lost); a stale unpark token
            // from an earlier round at worst causes one spurious re-poll.
            $(
                {
                    (&$r).__select_register();
                }
            )+
            let mut __raced = false;
            $(
                {
                    if (&$r).__select_ready() {
                        __raced = true;
                    }
                }
            )+
            if !__raced {
                let __remaining =
                    __deadline.saturating_duration_since(::std::time::Instant::now());
                ::std::thread::park_timeout(__remaining);
            }
            $(
                {
                    (&$r).__select_unregister();
                }
            )+
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv(), Ok(5));
    }

    #[test]
    fn disconnection_is_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn disconnected_arm_cannot_starve_an_arm_with_messages() {
        // Regression: a disconnected channel listed *before* a channel with queued
        // traffic must not short-circuit the select — crossbeam picks among ready
        // operations, so the queued messages keep flowing and only once they are
        // drained does the disconnection fire. (The unfixed order-biased poll starved
        // the second arm forever, hanging the sharded driver's shutdown drain.)
        let (dead_tx, dead_rx) = unbounded::<u8>();
        drop(dead_tx);
        let (tx, rx) = unbounded();
        tx.send(1u8).unwrap();
        tx.send(2u8).unwrap();
        let mut got = Vec::new();
        let mut disconnections = 0;
        for _ in 0..3 {
            crate::channel::select! {
                recv(dead_rx) -> msg => { assert!(msg.is_err()); disconnections += 1; },
                recv(rx) -> msg => got.push(msg.unwrap()),
                default(Duration::from_millis(5)) => panic!("an arm is always ready"),
            }
        }
        assert_eq!(got, vec![1, 2]);
        assert_eq!(disconnections, 1, "disconnection fires once the queue is dry");
    }

    #[test]
    fn select_wakes_on_cross_thread_send_before_the_deadline() {
        // The selector must wake on the send's unpark, not wait out the default
        // timeout: a generous deadline with a prompt sender still delivers.
        let (tx, rx) = unbounded();
        let (_keep, rx2) = unbounded::<u8>();
        let sender = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            tx.send(7u8).unwrap();
        });
        let started = std::time::Instant::now();
        let mut got = None;
        crate::channel::select! {
            recv(rx) -> msg => got = msg.ok(),
            recv(rx2) -> msg => got = msg.ok(),
            default(Duration::from_secs(10)) => {},
        }
        sender.join().unwrap();
        assert_eq!(got, Some(7));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "select waited out the deadline instead of waking on the send"
        );
    }

    #[test]
    fn select_picks_ready_arm_and_default() {
        let (tx, rx) = unbounded();
        let (_tx2, rx2) = unbounded::<u8>();
        tx.send(9u8).unwrap();
        let mut got = None;
        let mut defaulted = false;
        crate::channel::select! {
            recv(rx) -> msg => got = msg.ok(),
            recv(rx2) -> msg => got = msg.ok(),
            default(Duration::from_millis(5)) => defaulted = true,
        }
        assert_eq!(got, Some(9));
        assert!(!defaulted);
        crate::channel::select! {
            recv(rx) -> msg => { let _ = msg; },
            recv(rx2) -> msg => { let _ = msg; },
            default(Duration::from_millis(5)) => defaulted = true,
        }
        assert!(defaulted);
    }
}
