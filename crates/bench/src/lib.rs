//! Experiment harnesses reproducing the paper's evaluation (Sec. 7).
//!
//! Every table and figure of the paper has a corresponding harness function in this crate
//! and a binary under `src/bin/` that prints the same rows/series the paper reports:
//!
//! | paper artifact | harness | binary |
//! |---|---|---|
//! | Table 1 (+ Sec. 7.6 asynchronous variant) — per-modification impact | [`table1::run_table1`] | `table1` |
//! | Fig. 4a/4b — latency & bandwidth vs connectivity, MBD.1/7/8/9/11 | [`figures::run_fig4`] | `fig4` |
//! | Fig. 5a/5b — latency & bandwidth vs connectivity, lat./bdw./lat.&bdw. | [`figures::run_fig5`] | `fig5` |
//! | Fig. 6a/6b — relative improvement vs connectivity, N = 30/50 | [`figures::run_fig6`] | `fig6` |
//! | Figs. 7–10 — per-modification impact distributions (box plots) | [`figures::run_fig7_to_10`] | `fig7_to_10` |
//! | Sec. 7.3 — memory consumption | [`figures::run_memory`] | `memory` |
//!
//! The absolute numbers differ from the paper (different implementation language, machine
//! and network substrate), but the harnesses reproduce the *shape* of the results: which
//! modification wins, by roughly what factor, and how trends evolve with the connectivity,
//! the payload size and the synchrony assumption.
//!
//! Because a single paper-scale sweep involves hundreds of simulated broadcasts, every
//! harness takes a [`Scale`] parameter: [`Scale::Quick`] runs a reduced sweep suitable for
//! `cargo bench` / CI, [`Scale::Paper`] runs dimensions close to the paper's
//! (N = 50, connectivity sweeps, several seeds per point).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behaviors;
pub mod churn;
pub mod consensus;
pub mod figures;
pub mod json;
pub mod saturation;
pub mod table1;
pub mod trace;
pub mod workload;

use brb_core::config::Config;
use brb_core::stack::StackSpec;
use brb_graph::Graph;
use brb_sim::{
    run_experiment_on_graph, DelayModel, ExperimentParams, ExperimentSpec, SweepOutcome,
};
use brb_stats::Accumulator;

/// Sweep size of a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced dimensions (small N, few seeds) for CI and `cargo bench`.
    Quick,
    /// Dimensions close to the paper's evaluation.
    Paper,
}

impl Scale {
    /// Parses `--quick` / `--paper` style command-line arguments (defaults to `Paper`).
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }

    /// Number of runs (seeds) averaged per data point.
    pub fn runs(self) -> usize {
        match self {
            Scale::Quick => 1,
            Scale::Paper => 3,
        }
    }
}

/// Whether the asynchronous delay model was requested on the command line.
pub fn async_from_args(args: &[String]) -> bool {
    args.iter().any(|a| a == "--async")
}

/// Whether the multi-broadcast workload sweep was requested on the command line
/// (`--workload`; see [`workload::run_workload_sweep`]).
pub fn workload_from_args(args: &[String]) -> bool {
    args.iter().any(|a| a == "--workload")
}

/// Whether the Byzantine behavior matrix was requested on the command line
/// (`--behaviors`; see [`behaviors::run_behavior_matrix`]).
pub fn behaviors_from_args(args: &[String]) -> bool {
    args.iter().any(|a| a == "--behaviors")
}

/// Whether the churn scenario matrix was requested on the command line
/// (`--churn`; see [`churn::run_churn_matrix`]).
pub fn churn_from_args(args: &[String]) -> bool {
    args.iter().any(|a| a == "--churn")
}

/// Whether the consensus-over-BRB matrix was requested on the command line
/// (`--consensus`; see [`consensus::run_consensus_matrix`]).
pub fn consensus_from_args(args: &[String]) -> bool {
    args.iter().any(|a| a == "--consensus")
}

/// Whether the structured-trace matrix was requested on the command line
/// (`--trace`; see [`trace::run_trace_matrix`]).
pub fn trace_from_args(args: &[String]) -> bool {
    args.iter().any(|a| a == "--trace")
}

/// Whether the saturation ramp was requested on the command line
/// (`--saturation`; see [`saturation::run_saturation_sweep`]).
pub fn saturation_from_args(args: &[String]) -> bool {
    args.iter().any(|a| a == "--saturation")
}

/// Parses the `--stack NAME` / `--stack=NAME` command-line option (defaults to the
/// paper's Bracha–Dolev stack).
///
/// Every harness threads the chosen [`StackSpec`] into its sweep specs, so table/figure
/// baselines can be regenerated per stack. Note that the MD/MBD ablation axes only move
/// the needle for the stacks that read those flags (`bd`, `dolev`); for the other stacks
/// the harnesses still sweep `(N, k, f, payload)` but the configuration rows coincide.
///
/// # Panics
///
/// Panics with the list of known stacks if the name does not parse, or if `--stack` is
/// given without a value (a silent fallback to `bd` would mislabel a whole sweep).
pub fn stack_from_args(args: &[String]) -> StackSpec {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let value = if arg == "--stack" {
            Some(
                iter.next()
                    .unwrap_or_else(|| panic!("--stack requires a value"))
                    .clone(),
            )
        } else {
            arg.strip_prefix("--stack=").map(str::to_string)
        };
        if let Some(name) = value {
            return name.parse::<StackSpec>().unwrap_or_else(|e| panic!("{e}"));
        }
    }
    StackSpec::Bd
}

/// Parses the `--workers N` / `--workers=N` command-line option.
///
/// Defaults to the host parallelism. Results are bit-identical for every worker count
/// (see `brb_sim::sweep`), so the flag only trades wall-clock time for CPU.
pub fn workers_from_args(args: &[String]) -> usize {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--workers" {
            if let Some(n) = iter.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = arg.strip_prefix("--workers=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    brb_sim::sweep::default_workers()
}

/// Builds the `runs` sweep specs of one data point: run `i` uses topology seed
/// `graph_seed_base + i` and run seed `params.seed + i`, the same seeding scheme as
/// [`averaged_on_graphs`], so sweep-based harnesses run the exact same simulations.
pub fn point_specs(
    label: &str,
    params: &ExperimentParams,
    graph_seed_base: u64,
    runs: usize,
) -> Vec<ExperimentSpec> {
    (0..runs)
        .map(|i| {
            let mut p = params.clone();
            p.seed = params.seed.wrapping_add(i as u64);
            ExperimentSpec::new(label.to_string(), graph_seed_base + i as u64, p)
        })
        .collect()
}

/// Averages the outcomes of one data point's runs (the sweep-based counterpart of
/// [`averaged_on_graphs`]), aggregating with the `brb-stats` accumulators.
pub fn averaged_of_outcomes(outcomes: &[SweepOutcome]) -> AveragedResult {
    let mut latency = Accumulator::new();
    let mut bytes = Accumulator::new();
    let mut messages = Accumulator::new();
    let mut state = Accumulator::new();
    let mut paths = Accumulator::new();
    for outcome in outcomes {
        let r = &outcome.record.result;
        if let Some(l) = r.latency_ms {
            latency.push(l);
        }
        bytes.push(r.bytes as f64);
        messages.push(r.messages as f64);
        state.push(r.peak_state_bytes as f64);
        paths.push(r.peak_stored_paths as f64);
    }
    AveragedResult {
        latency_ms: if latency.count() > 0 {
            latency.mean()
        } else {
            f64::NAN
        },
        bytes: bytes.mean(),
        messages: messages.mean(),
        peak_state_bytes: state.mean(),
        peak_stored_paths: paths.mean(),
    }
}

/// Averaged metrics of an experiment repeated over several seeds.
#[derive(Debug, Clone, Copy)]
pub struct AveragedResult {
    /// Mean latency (ms) over the completed runs.
    pub latency_ms: f64,
    /// Mean network consumption (bytes).
    pub bytes: f64,
    /// Mean number of messages.
    pub messages: f64,
    /// Mean peak protocol-state bytes (Sec. 7.3 proxy).
    pub peak_state_bytes: f64,
    /// Mean peak number of stored paths.
    pub peak_stored_paths: f64,
}

/// Runs `runs` seeds of the given configuration, generating one random regular graph per
/// seed (shared across configurations through [`averaged_on_graphs`]).
pub fn averaged(params: &ExperimentParams, runs: usize) -> AveragedResult {
    let graphs: Vec<Graph> = (0..runs)
        .map(|i| {
            brb_sim::experiment::experiment_graph(
                params.n,
                params.connectivity,
                params.seed.wrapping_add(i as u64),
            )
        })
        .collect();
    averaged_on_graphs(params, &graphs)
}

/// Runs the configuration once per provided graph and averages the metrics. Using the same
/// graphs for every configuration compared in a table/figure removes topology noise from
/// the comparison, as the paper does by reusing one generated graph per `(N, k, f)` tuple.
pub fn averaged_on_graphs(params: &ExperimentParams, graphs: &[Graph]) -> AveragedResult {
    let mut latency = 0.0;
    let mut bytes = 0.0;
    let mut messages = 0.0;
    let mut state = 0.0;
    let mut paths = 0.0;
    let mut completed = 0usize;
    for (i, graph) in graphs.iter().enumerate() {
        let mut p = params.clone();
        p.seed = params.seed.wrapping_add(i as u64);
        let r = run_experiment_on_graph(&p, graph);
        if let Some(l) = r.latency_ms {
            latency += l;
            completed += 1;
        }
        bytes += r.bytes as f64;
        messages += r.messages as f64;
        state += r.peak_state_bytes as f64;
        paths += r.peak_stored_paths as f64;
    }
    let n = graphs.len().max(1) as f64;
    AveragedResult {
        latency_ms: if completed > 0 {
            latency / completed as f64
        } else {
            f64::NAN
        },
        bytes: bytes / n,
        messages: messages / n,
        peak_state_bytes: state / n,
        peak_stored_paths: paths / n,
    }
}

/// Builds the experiment parameters shared by all harnesses (on the default Bd stack;
/// callers override [`ExperimentParams::stack`] via `with_stack`).
pub fn experiment(
    n: usize,
    k: usize,
    f: usize,
    payload: usize,
    config: Config,
    delay: DelayModel,
    seed: u64,
) -> ExperimentParams {
    ExperimentParams {
        n,
        connectivity: k,
        f,
        crashed: 0,
        payload_size: payload,
        config,
        stack: StackSpec::Bd,
        delay,
        seed,
        workload: None,
        behaviors: Vec::new(),
        churn: None,
        consensus: None,
    }
}

/// Relative variation in percent, as reported throughout the paper's tables and figures.
pub fn variation_pct(baseline: f64, value: f64) -> f64 {
    brb_stats::relative_variation(baseline, value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_args(&["--quick".to_string()]), Scale::Quick);
        assert_eq!(Scale::from_args(&[]), Scale::Paper);
        assert_eq!(Scale::Quick.runs(), 1);
        assert!(Scale::Paper.runs() >= 2);
        assert!(async_from_args(&["--async".to_string()]));
        assert!(!async_from_args(&[]));
    }

    #[test]
    fn stack_parsing() {
        assert_eq!(stack_from_args(&[]), StackSpec::Bd);
        assert_eq!(
            stack_from_args(&["--stack".to_string(), "bracha-cpa".to_string()]),
            StackSpec::BrachaCpa
        );
        assert_eq!(
            stack_from_args(&["--stack=routed-dolev".to_string()]),
            StackSpec::RoutedDolev
        );
    }

    #[test]
    #[should_panic(expected = "unknown stack")]
    fn stack_parsing_rejects_unknown_names() {
        stack_from_args(&["--stack=quantum".to_string()]);
    }

    #[test]
    fn averaged_runs_complete() {
        let params = experiment(
            12,
            4,
            1,
            64,
            Config::bdopt_mbd1(12, 1),
            DelayModel::synchronous(),
            3,
        );
        let avg = averaged(&params, 2);
        assert!(avg.latency_ms.is_finite());
        assert!(avg.bytes > 0.0);
        assert!(avg.messages > 0.0);
    }

    #[test]
    fn variation_matches_stats_crate() {
        assert_eq!(variation_pct(200.0, 100.0), -50.0);
    }
}
