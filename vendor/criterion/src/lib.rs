//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion) crate.
//!
//! The build environment of this repository has no crates.io access, so this crate
//! implements the benchmarking API surface the workspace's `benches/` targets use —
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`], [`black_box`],
//! [`BenchmarkId`] and grouped/parametrised benches — with a deliberately simple
//! measurement loop: a short warm-up, then `sample_size` timed iterations whose mean and
//! minimum are printed per benchmark. It has no statistical analysis, plotting or CLI;
//! its job is to keep `cargo bench` targets compiling and producing comparable
//! wall-clock numbers until the real criterion can be dropped in.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// An opaque identity function that prevents the optimiser from deleting a computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter description.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter description.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(function), Some(parameter)) => write!(f, "{function}/{parameter}"),
            (Some(function), None) => write!(f, "{function}"),
            (None, Some(parameter)) => write!(f, "{parameter}"),
            (None, None) => write!(f, "<unnamed>"),
        }
    }
}

/// Settings shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, samples: usize) -> Self {
        assert!(samples >= 2, "sample size must be at least 2");
        self.settings.sample_size = samples;
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.settings.warm_up_time = duration;
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.settings.measurement_time = duration;
        self
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.settings, &mut routine);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let settings = self.settings;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            settings,
        }
    }
}

/// A named group of benchmarks with its own settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        assert!(samples >= 2, "sample size must be at least 2");
        self.settings.sample_size = samples;
        self
    }

    /// Sets the warm-up duration for this group.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.settings.warm_up_time = duration;
        self
    }

    /// Sets the measurement budget for this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.settings.measurement_time = duration;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.settings,
            &mut routine,
        );
        self
    }

    /// Runs one parametrised benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.settings, &mut |b| {
            routine(b, input)
        });
        self
    }

    /// Finishes the group (reporting already happened per benchmark; kept for API parity).
    pub fn finish(self) {}
}

/// Times a closure over the configured number of iterations.
pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine` once per sample, recording each sample's wall-clock duration.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_up_deadline = Instant::now() + self.settings.warm_up_time;
        while Instant::now() < warm_up_deadline {
            black_box(routine());
        }
        let budget = Instant::now() + self.settings.measurement_time;
        self.samples.clear();
        for _ in 0..self.settings.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() > budget {
                break;
            }
        }
    }

    /// Like [`Bencher::iter`], but runs `setup` outside the timed section to produce the
    /// input each timed call consumes.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_up_deadline = Instant::now() + self.settings.warm_up_time;
        while Instant::now() < warm_up_deadline {
            black_box(routine(setup()));
        }
        let budget = Instant::now() + self.settings.measurement_time;
        self.samples.clear();
        for _ in 0..self.settings.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() > budget {
                break;
            }
        }
    }
}

fn run_benchmark(label: &str, settings: Settings, routine: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        settings,
        samples: Vec::new(),
    };
    routine(&mut bencher);
    if bencher.samples.is_empty() {
        println!("bench {label:<60} (no samples: routine never called iter)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "bench {label:<60} mean {:>12.3?}  min {:>12.3?}  ({} samples)",
        mean,
        min,
        bencher.samples.len()
    );
}

/// Declares a group of benchmark functions, optionally with a custom [`Criterion`] config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench-target `main` function from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = quick();
        let mut runs = 0usize;
        c.bench_function("counter", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs >= 3);
    }

    #[test]
    fn groups_and_ids_compose() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 7), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter(|| black_box(1))
        });
        group.finish();
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
