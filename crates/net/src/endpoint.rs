//! TCP endpoints and authenticated-link establishment over loopback.
//!
//! Every process binds one TCP listener on `127.0.0.1` (ephemeral port) and maintains one
//! TCP connection per edge of the communication graph, exactly like the paper's testbed
//! keeps one TCP connection per pair of containers that share an edge. Within a single
//! trusted host the TCP connection itself plays the role of the authenticated channel of
//! Sec. 3: the mapping from connection to peer identity is established once at connection
//! time (handshake) by the deployment — which is trusted infrastructure, not protocol
//! code — and the receiving side tags every inbound frame with that identity, so a
//! Byzantine *protocol layer* cannot forge the sender of its messages.

use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use brb_core::types::ProcessId;
use brb_graph::Graph;
use brb_transport::Frame;
use crossbeam::channel::Sender;

use crate::frame::{read_frame_burst, read_handshake, write_frame, write_handshake};

/// A bound, not yet connected endpoint of one process.
#[derive(Debug)]
pub struct Endpoint {
    /// Identifier of the process owning this endpoint.
    pub id: ProcessId,
    /// Listener accepting inbound links.
    pub listener: TcpListener,
    /// Address peers connect to.
    pub addr: SocketAddr,
}

/// Binds one loopback endpoint per process.
///
/// # Errors
///
/// Returns any socket error raised while binding.
pub fn bind_endpoints(n: usize) -> io::Result<Vec<Endpoint>> {
    (0..n)
        .map(|id| {
            let listener = TcpListener::bind(("127.0.0.1", 0))?;
            let addr = listener.local_addr()?;
            Ok(Endpoint { id, listener, addr })
        })
        .collect()
}

/// The established links of one process: one writable stream per neighbor, keyed by the
/// authenticated peer identity.
#[derive(Debug, Default)]
pub struct NodeLinks {
    /// Write halves, keyed by neighbor identifier.
    pub writers: HashMap<ProcessId, TcpStream>,
    /// Read halves, keyed by neighbor identifier (moved out by the deployment when it
    /// spawns reader threads).
    pub readers: HashMap<ProcessId, TcpStream>,
}

/// Establishes the full set of TCP links dictated by `graph` among the given endpoints.
///
/// For every edge `{u, v}` with `u < v`, process `u` connects to `v`'s listener and sends
/// a handshake announcing its identity; `v` accepts, validates that the announced identity
/// is an expected, not-yet-connected neighbor, and acknowledges with its own handshake.
/// Both directions of the resulting stream are used (TCP is full duplex), so exactly one
/// connection per edge exists, as in the paper's deployment.
///
/// # Errors
///
/// Returns any socket error, or [`io::ErrorKind::InvalidData`] if a handshake announces an
/// identity that is not an expected neighbor.
pub fn connect_mesh(graph: &Graph, endpoints: &[Endpoint]) -> io::Result<Vec<NodeLinks>> {
    let n = graph.node_count();
    assert_eq!(endpoints.len(), n, "one endpoint per process");
    let mut links: Vec<NodeLinks> = (0..n).map(|_| NodeLinks::default()).collect();

    // Acceptor threads: each endpoint accepts one inbound connection per neighbor with a
    // smaller identifier and returns the authenticated (peer, stream) pairs.
    let mut acceptors = Vec::new();
    for endpoint in endpoints {
        let expected: Vec<ProcessId> = graph
            .neighbors(endpoint.id)
            .filter(|&v| v < endpoint.id)
            .collect();
        let listener = endpoint.listener.try_clone()?;
        let my_id = endpoint.id;
        acceptors.push(std::thread::spawn(
            move || -> io::Result<Vec<(ProcessId, TcpStream)>> {
                let mut accepted = Vec::with_capacity(expected.len());
                let mut remaining: Vec<ProcessId> = expected;
                while !remaining.is_empty() {
                    let (mut stream, _) = listener.accept()?;
                    stream.set_nodelay(true)?;
                    let peer = read_handshake(&mut stream)?;
                    let Some(pos) = remaining.iter().position(|&p| p == peer) else {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "process {my_id} received a handshake from unexpected peer {peer}"
                            ),
                        ));
                    };
                    remaining.swap_remove(pos);
                    write_handshake(&mut stream, my_id)?;
                    accepted.push((peer, stream));
                }
                Ok(accepted)
            },
        ));
    }

    // Outbound connections: u -> v for every edge with u < v.
    for (u, v) in graph.edges() {
        let (lo, hi) = (u.min(v), u.max(v));
        let mut stream = TcpStream::connect(endpoints[hi].addr)?;
        stream.set_nodelay(true)?;
        write_handshake(&mut stream, lo)?;
        let acked = read_handshake(&mut stream)?;
        if acked != hi {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected handshake ack from {hi}, got {acked}"),
            ));
        }
        links[lo].writers.insert(hi, stream.try_clone()?);
        links[lo].readers.insert(hi, stream);
    }

    // Collect the accepted halves.
    for (id, acceptor) in acceptors.into_iter().enumerate() {
        let accepted = acceptor
            .join()
            .map_err(|_| io::Error::other("acceptor thread panicked"))??;
        for (peer, stream) in accepted {
            links[id].writers.insert(peer, stream.try_clone()?);
            links[id].readers.insert(peer, stream);
        }
    }
    Ok(links)
}

/// Spawns a reader thread for one inbound link: every decoded frame is forwarded to the
/// node's mailbox as an authenticated [`Frame`] tagged with the peer identity (the
/// common inbound currency of every [`brb_transport::Transport`]). The thread exits when
/// the peer closes or the stream is shut down.
pub fn spawn_link_reader(
    peer: ProcessId,
    stream: TcpStream,
    mailbox: Sender<Frame>,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut reader = BufReader::new(stream);
        loop {
            match read_frame_burst(&mut reader) {
                Ok(burst) => {
                    for bytes in burst {
                        if mailbox.send(Frame::single(peer, bytes)).is_err() {
                            return;
                        }
                    }
                }
                Err(_) => return,
            }
        }
    })
}

/// Writes one frame to a neighbor's stream, returning whether the write succeeded (a
/// failed write means the peer crashed or shut down, which the protocol tolerates).
pub fn send_frame(stream: &mut TcpStream, bytes: &[u8]) -> bool {
    write_frame(stream, bytes).is_ok()
}

/// Sets a read timeout used while draining links during shutdown.
pub fn set_drain_timeout(stream: &TcpStream, timeout: Duration) -> io::Result<()> {
    stream.set_read_timeout(Some(timeout))
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_graph::generate;
    use crossbeam::channel::unbounded;

    #[test]
    fn mesh_connects_every_edge_in_both_directions() {
        let graph = generate::ring(5);
        let endpoints = bind_endpoints(5).unwrap();
        let links = connect_mesh(&graph, &endpoints).unwrap();
        for (u, node) in links.iter().enumerate() {
            let expected: Vec<ProcessId> = graph.neighbors_vec(u);
            let mut have: Vec<ProcessId> = node.writers.keys().copied().collect();
            have.sort_unstable();
            assert_eq!(have, expected, "node {u} writer links");
            let mut have: Vec<ProcessId> = node.readers.keys().copied().collect();
            have.sort_unstable();
            assert_eq!(have, expected, "node {u} reader links");
        }
    }

    #[test]
    fn frames_travel_with_the_authenticated_identity() {
        let graph = generate::complete(3);
        let endpoints = bind_endpoints(3).unwrap();
        let mut links = connect_mesh(&graph, &endpoints).unwrap();

        // Node 2 listens on all its inbound links.
        let (tx, rx) = unbounded();
        let readers: Vec<_> = links[2].readers.drain().collect();
        for (peer, stream) in readers {
            spawn_link_reader(peer, stream, tx.clone());
        }
        // Node 0 and node 1 each send one frame to node 2.
        assert!(send_frame(
            links[0].writers.get_mut(&2).unwrap(),
            b"from zero"
        ));
        assert!(send_frame(
            links[1].writers.get_mut(&2).unwrap(),
            b"from one"
        ));

        let mut received: Vec<(ProcessId, Vec<u8>)> = vec![
            rx.recv_timeout(Duration::from_secs(5))
                .map(|f| (f.from, f.bytes.to_vec()))
                .unwrap(),
            rx.recv_timeout(Duration::from_secs(5))
                .map(|f| (f.from, f.bytes.to_vec()))
                .unwrap(),
        ];
        received.sort();
        assert_eq!(received[0], (0, b"from zero".to_vec()));
        assert_eq!(received[1], (1, b"from one".to_vec()));
    }

    #[test]
    fn reader_thread_exits_when_peer_closes() {
        let graph = generate::complete(2);
        let endpoints = bind_endpoints(2).unwrap();
        let mut links = connect_mesh(&graph, &endpoints).unwrap();
        let (tx, rx) = unbounded();
        let (peer, stream) = links[1].readers.drain().next().unwrap();
        let handle = spawn_link_reader(peer, stream, tx);
        // Closing node 0's side of the link terminates node 1's reader.
        links[0] = NodeLinks::default();
        handle.join().unwrap();
        assert!(rx.try_recv().is_err());
    }
}
