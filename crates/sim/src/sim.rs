//! The discrete-event network simulator.
//!
//! The simulator owns one protocol instance per process, a virtual clock and a priority
//! queue of in-flight messages. Sending a message schedules its reception after a delay
//! drawn from the configured [`DelayModel`]; receptions are processed in timestamp order,
//! which reproduces the synchronous and asynchronous regimes of the paper's evaluation
//! (asynchronous delays reorder messages exactly as described in Sec. 7.6).
//!
//! Determinism: for a fixed seed, topology and protocol configuration, a run is perfectly
//! reproducible (events with equal timestamps are ordered by a sequence number).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use brb_core::protocol::Protocol;
use brb_core::types::{Action, Payload, ProcessId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::behavior::Behavior;
use crate::delay::DelayModel;
use crate::metrics::RunMetrics;
use crate::time::SimTime;

/// An in-flight message.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Event<M> {
    at: SimTime,
    seq: u64,
    from: ProcessId,
    to: ProcessId,
    message: M,
}

impl<M: Eq> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<M: Eq> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Discrete-event simulation of a set of processes running protocol `P`.
pub struct Simulation<P: Protocol>
where
    P::Message: Eq,
{
    processes: Vec<P>,
    behaviors: Vec<Behavior>,
    sent_per_process: Vec<usize>,
    queue: BinaryHeap<Reverse<Event<P::Message>>>,
    now: SimTime,
    next_seq: u64,
    delay: DelayModel,
    rng: StdRng,
    metrics: RunMetrics,
    /// Safety bound on processed events (guards against configuration mistakes that would
    /// otherwise loop forever, e.g. the unoptimized protocol on large dense graphs).
    max_events: usize,
}

impl<P: Protocol> Simulation<P>
where
    P::Message: Eq,
{
    /// Creates a simulation over the given processes, all initially [`Behavior::Correct`].
    pub fn new(processes: Vec<P>, delay: DelayModel, seed: u64) -> Self {
        let n = processes.len();
        Self {
            processes,
            behaviors: vec![Behavior::Correct; n],
            sent_per_process: vec![0; n],
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            delay,
            rng: StdRng::seed_from_u64(seed),
            metrics: RunMetrics::default(),
            max_events: 50_000_000,
        }
    }

    /// Overrides the behaviour of one process.
    pub fn set_behavior(&mut self, process: ProcessId, behavior: Behavior) {
        self.behaviors[process] = behavior;
    }

    /// Overrides the event-count safety bound.
    pub fn set_max_events(&mut self, max_events: usize) {
        self.max_events = max_events;
    }

    /// Identifiers of the processes with [`Behavior::Correct`].
    pub fn correct_processes(&self) -> Vec<ProcessId> {
        self.behaviors
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.is_byzantine())
            .map(|(i, _)| i)
            .collect()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &RunMetrics {
        &self.metrics
    }

    /// Immutable access to the protocol instances.
    pub fn processes(&self) -> &[P] {
        &self.processes
    }

    /// Mutable access to the protocol instances (used by tests to inspect or perturb
    /// protocol state between runs).
    pub fn processes_mut(&mut self) -> &mut [P] {
        &mut self.processes
    }

    /// Makes process `source` broadcast `payload` at the current virtual time.
    ///
    /// The resulting messages are scheduled but not yet processed; call
    /// [`Simulation::run_to_quiescence`] to process them.
    pub fn broadcast(&mut self, source: ProcessId, payload: Payload) {
        if !self.behaviors[source].receives() {
            return;
        }
        let actions = self.processes[source].broadcast(payload);
        self.schedule_actions(source, actions);
    }

    /// Processes events until no message is in flight (or the safety bound is reached).
    ///
    /// Returns the number of events processed.
    ///
    /// # Panics
    ///
    /// Panics if the event bound is exceeded, which indicates a diverging configuration.
    pub fn run_to_quiescence(&mut self) -> usize {
        let mut processed = 0usize;
        while let Some(Reverse(event)) = self.queue.pop() {
            processed += 1;
            self.metrics.events_processed += 1;
            assert!(
                processed <= self.max_events,
                "simulation exceeded {} events without quiescing",
                self.max_events
            );
            self.now = event.at;
            if !self.behaviors[event.to].receives() {
                continue;
            }
            let actions = self.processes[event.to].handle_message(event.from, event.message);
            self.schedule_actions(event.to, actions);
            self.update_memory_peaks(event.to);
        }
        processed
    }

    /// Runs until either quiescence or the given virtual deadline; events scheduled after
    /// the deadline remain queued. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> usize {
        let mut processed = 0usize;
        loop {
            let due = matches!(self.queue.peek(), Some(Reverse(e)) if e.at <= deadline);
            if !due {
                break;
            }
            let Reverse(event) = self.queue.pop().expect("peeked event exists");
            processed += 1;
            self.metrics.events_processed += 1;
            assert!(
                processed <= self.max_events,
                "simulation exceeded {} events without quiescing",
                self.max_events
            );
            self.now = event.at;
            if !self.behaviors[event.to].receives() {
                continue;
            }
            let actions = self.processes[event.to].handle_message(event.from, event.message);
            self.schedule_actions(event.to, actions);
            self.update_memory_peaks(event.to);
        }
        self.now = self.now.max(deadline);
        processed
    }

    fn schedule_actions(&mut self, from: ProcessId, actions: Vec<Action<P::Message>>) {
        for action in actions {
            match action {
                Action::Send { to, message } => {
                    let behavior = self.behaviors[from].clone();
                    let copies =
                        behavior.outbound_copies(to, self.sent_per_process[from], &mut self.rng);
                    self.sent_per_process[from] += 1;
                    for _ in 0..copies {
                        let bytes = P::message_size(&message);
                        self.metrics.record_send(&kind_label(&message), bytes);
                        let delay = self.delay.sample(&mut self.rng);
                        let event = Event {
                            at: self.now + delay,
                            seq: self.next_seq,
                            from,
                            to,
                            message: message.clone(),
                        };
                        self.next_seq += 1;
                        self.queue.push(Reverse(event));
                    }
                }
                Action::Deliver(delivery) => {
                    self.metrics.record_delivery(from, delivery.id, self.now);
                }
            }
        }
        self.update_memory_peaks(from);
    }

    fn update_memory_peaks(&mut self, process: ProcessId) {
        let state = self.processes[process].state_bytes();
        if state > self.metrics.peak_state_bytes {
            self.metrics.peak_state_bytes = state;
        }
        let paths = self.processes[process].stored_paths();
        if paths > self.metrics.peak_stored_paths {
            self.metrics.peak_stored_paths = paths;
        }
    }
}

/// A short label for the message kind, derived from its `Debug` representation (the first
/// identifier), used only for diagnostic per-kind counters.
fn kind_label<M: std::fmt::Debug>(message: &M) -> String {
    let repr = format!("{message:?}");
    repr.split(|c: char| !c.is_alphanumeric())
        .find(|s| !s.is_empty())
        .unwrap_or("Message")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_core::bd::BdProcess;
    use brb_core::bracha::BrachaProcess;
    use brb_core::config::Config;
    use brb_core::types::BroadcastId;
    use brb_graph::generate;

    fn bd_simulation(
        n: usize,
        f: usize,
        config: Config,
        delay: DelayModel,
        seed: u64,
    ) -> Simulation<BdProcess> {
        let graph = generate::figure1_example();
        assert_eq!(graph.node_count(), n);
        let processes: Vec<BdProcess> = (0..n)
            .map(|i| BdProcess::new(i, config, graph.neighbors_vec(i)))
            .collect();
        let _ = f;
        Simulation::new(processes, delay, seed)
    }

    #[test]
    fn synchronous_bd_broadcast_delivers_everywhere() {
        let config = Config::bdopt_mbd1(10, 1);
        let mut sim = bd_simulation(10, 1, config, DelayModel::synchronous(), 1);
        sim.broadcast(0, Payload::filled(1, 16));
        sim.run_to_quiescence();
        let correct = sim.correct_processes();
        let id = BroadcastId::new(0, 0);
        assert_eq!(sim.metrics().delivered_count(id, &correct), 10);
        let latency = sim.metrics().latency(id, &correct).unwrap();
        // With 50 ms hops and a diameter-2 graph, latency is a small multiple of 50 ms.
        assert!(latency >= SimTime::from_millis(100));
        assert!(latency <= SimTime::from_millis(500));
        assert!(sim.metrics().bytes_sent > 0);
        assert!(sim.metrics().messages_sent > 0);
    }

    #[test]
    fn asynchronous_bd_broadcast_delivers_everywhere() {
        let config = Config::latency_preset(10, 1);
        let mut sim = bd_simulation(10, 1, config, DelayModel::asynchronous(), 7);
        sim.broadcast(3, Payload::filled(1, 1024));
        sim.run_to_quiescence();
        let correct = sim.correct_processes();
        let id = BroadcastId::new(3, 0);
        assert_eq!(sim.metrics().delivered_count(id, &correct), 10);
    }

    #[test]
    fn crashed_processes_do_not_prevent_delivery() {
        let config = Config::bdopt_mbd1(10, 1);
        let mut sim = bd_simulation(10, 1, config, DelayModel::synchronous(), 3);
        sim.set_behavior(5, Behavior::Crash);
        sim.broadcast(0, Payload::filled(2, 16));
        sim.run_to_quiescence();
        let correct = sim.correct_processes();
        assert_eq!(correct.len(), 9);
        let id = BroadcastId::new(0, 0);
        assert_eq!(sim.metrics().delivered_count(id, &correct), 9);
    }

    #[test]
    fn crashed_source_broadcasts_nothing() {
        let config = Config::bdopt_mbd1(10, 1);
        let mut sim = bd_simulation(10, 1, config, DelayModel::synchronous(), 3);
        sim.set_behavior(0, Behavior::Crash);
        sim.broadcast(0, Payload::filled(2, 16));
        assert_eq!(sim.run_to_quiescence(), 0);
        assert_eq!(sim.metrics().messages_sent, 0);
    }

    #[test]
    fn replayer_behavior_does_not_break_no_duplication() {
        let config = Config::bdopt_mbd1(10, 1);
        let mut sim = bd_simulation(10, 1, config, DelayModel::synchronous(), 3);
        sim.set_behavior(1, Behavior::Replayer);
        sim.broadcast(0, Payload::filled(2, 16));
        sim.run_to_quiescence();
        for p in sim.processes() {
            assert!(p.deliveries().len() <= 1);
        }
        let correct = sim.correct_processes();
        let id = BroadcastId::new(0, 0);
        assert_eq!(sim.metrics().delivered_count(id, &correct), correct.len());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let config = Config::bandwidth_preset(10, 1);
        let run = |seed| {
            let mut sim = bd_simulation(10, 1, config, DelayModel::asynchronous(), seed);
            sim.broadcast(0, Payload::filled(9, 64));
            sim.run_to_quiescence();
            (
                sim.metrics().messages_sent,
                sim.metrics().bytes_sent,
                sim.metrics()
                    .latency(BroadcastId::new(0, 0), &sim.correct_processes())
                    .unwrap(),
            )
        };
        assert_eq!(run(42), run(42));
        // Different seeds almost surely reorder events and change counters.
        let a = run(1);
        let b = run(2);
        assert!(
            a != b || a.0 == b.0,
            "runs are allowed to coincide but usually differ"
        );
    }

    #[test]
    fn bracha_on_complete_graph_in_simulation() {
        let n = 7;
        let processes: Vec<BrachaProcess> = (0..n).map(|i| BrachaProcess::new(i, n, 2)).collect();
        let mut sim = Simulation::new(processes, DelayModel::synchronous(), 11);
        sim.broadcast(2, Payload::from("hello"));
        sim.run_to_quiescence();
        let correct = sim.correct_processes();
        let id = BroadcastId::new(2, 0);
        assert_eq!(sim.metrics().delivered_count(id, &correct), n);
        // SEND + ECHO + READY rounds with one 50 ms hop each: exactly 150 ms on a complete
        // graph with constant delays.
        assert_eq!(
            sim.metrics().latency(id, &correct),
            Some(SimTime::from_millis(150))
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let config = Config::bdopt_mbd1(10, 1);
        let mut sim = bd_simulation(10, 1, config, DelayModel::synchronous(), 1);
        sim.broadcast(0, Payload::filled(1, 16));
        // Stop before the first hop completes: nothing can have been processed.
        let processed = sim.run_until(SimTime::from_millis(10));
        assert_eq!(processed, 0);
        let processed = sim.run_until(SimTime::from_millis(60));
        assert!(processed > 0, "first hop arrives at 50 ms");
        sim.run_to_quiescence();
        let correct = sim.correct_processes();
        assert_eq!(
            sim.metrics()
                .delivered_count(BroadcastId::new(0, 0), &correct),
            10
        );
    }

    #[test]
    fn kind_labels_are_extracted_from_debug() {
        let config = Config::bdopt_mbd1(10, 1);
        let mut sim = bd_simulation(10, 1, config, DelayModel::synchronous(), 1);
        sim.broadcast(0, Payload::filled(1, 16));
        sim.run_to_quiescence();
        let kinds = &sim.metrics().messages_per_kind;
        assert!(kinds.keys().any(|k| k == "WireMessage"));
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn event_bound_guards_against_divergence() {
        let config = Config::bdopt_mbd1(10, 1);
        let mut sim = bd_simulation(10, 1, config, DelayModel::synchronous(), 1);
        sim.set_max_events(5);
        sim.broadcast(0, Payload::filled(1, 16));
        sim.run_to_quiescence();
    }
}
