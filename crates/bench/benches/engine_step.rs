//! Criterion microbenchmark of single protocol-engine steps: the cost of handling one
//! message (the quantity that, multiplied by the message count, dominates CPU usage in a
//! real deployment — Sec. 7.7 notes that local computations are no longer negligible once
//! the protocol runs outside a network simulator).

use brb_core::bd::BdProcess;
use brb_core::config::Config;
use brb_core::protocol::Protocol;
use brb_core::types::{BroadcastId, Payload};
use brb_core::wire::{FieldPresence, MessageKind, PayloadRef, WireMessage};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn echo_message(originator: usize, seq: u32, path: Vec<usize>) -> WireMessage {
    WireMessage {
        kind: MessageKind::Echo,
        id: BroadcastId::new(0, seq),
        originator,
        originator2: None,
        payload: PayloadRef::Inline(Payload::filled(1, 1024)),
        path,
        fields: FieldPresence::full(),
    }
}

fn bench_handle_echo(c: &mut Criterion) {
    let config = Config::bdopt_mbd1(50, 9);
    c.bench_function("bd_handle_fresh_echo", |b| {
        b.iter_with_setup(
            || BdProcess::new(0, config, (1..26).collect()),
            |mut process| {
                for originator in 26..36usize {
                    let actions =
                        process.handle_message(1, echo_message(originator, 0, vec![originator]));
                    black_box(actions.len());
                }
                black_box(process.stored_paths())
            },
        )
    });
}

fn bench_broadcast_creation(c: &mut Criterion) {
    let config = Config::latency_preset(50, 9);
    c.bench_function("bd_broadcast_creation_50_neighbors", |b| {
        b.iter_with_setup(
            || BdProcess::new(0, config, (1..50).collect()),
            |mut process| {
                let actions = process.broadcast(Payload::filled(7, 1024));
                black_box(actions.len())
            },
        )
    });
}

fn bench_wire_codec(c: &mut Criterion) {
    let message = echo_message(3, 1, vec![1, 2, 3, 4, 5]);
    c.bench_function("wire_encode_decode_1KiB_echo", |b| {
        b.iter(|| {
            let encoded = black_box(&message).encode();
            let decoded = WireMessage::decode(&encoded).unwrap();
            black_box(decoded.wire_size())
        })
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_handle_echo, bench_broadcast_creation, bench_wire_codec
}
criterion_main!(benches);
