//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr) crate.
//!
//! Provides the [`Normal`] distribution (Box–Muller transform), the [`Exp`] exponential
//! distribution (inversion method, used by the Poisson arrival process of the workload
//! generator) and the [`Zipf`] distribution (precomputed-CDF inversion, used for skewed
//! source selection), and re-exports the [`Distribution`] trait from the vendored
//! `rand` — exactly the API subset this workspace uses.

#![forbid(unsafe_code)]

use rand::RngCore;

pub use rand::distributions::Distribution;

/// One uniform deviate in `[0, 1)` with 53 bits of precision, the shared primitive of the
/// inversion-based samplers below.
fn uniform_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or NaN.
    StdDevTooSmall,
    /// The mean was NaN.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::StdDevTooSmall => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::StdDevTooSmall);
        }
        Ok(Self { mean, std_dev })
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms in (0, 1] -> one standard normal deviate.
        let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Error returned by [`Exp::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpError {
    /// `lambda` was not finite and strictly positive.
    LambdaTooSmall,
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpError::LambdaTooSmall => write!(f, "lambda must be finite and > 0"),
        }
    }
}

impl std::error::Error for ExpError {}

/// The exponential distribution `Exp(lambda)` with rate `lambda` (mean `1 / lambda`).
///
/// Sampled by inversion: `-ln(1 - u) / lambda` with `u` uniform in `[0, 1)`, so one
/// `next_u64` call per sample — the stream is a pure function of the RNG seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// Returns [`ExpError::LambdaTooSmall`] unless `lambda` is finite and strictly
    /// positive.
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ExpError::LambdaTooSmall);
        }
        Ok(Self { lambda })
    }

    /// The rate parameter `lambda`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // u in [0, 1) makes 1 - u in (0, 1], so the logarithm is always finite.
        let u = uniform_unit(rng);
        -(1.0 - u).ln() / self.lambda
    }
}

/// Error returned by [`Zipf::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZipfError {
    /// The number of elements was zero.
    NTooSmall,
    /// The exponent was negative or not finite.
    STooSmall,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::NTooSmall => write!(f, "number of elements must be >= 1"),
            ZipfError::STooSmall => write!(f, "exponent must be finite and >= 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf distribution over `{1, 2, …, n}` with exponent `s`: rank `k` has probability
/// proportional to `1 / k^s` (`s = 0` is uniform).
///
/// Sampled by inversion on a precomputed cumulative table — `O(n)` memory, one
/// `next_u64` plus a binary search per sample. The workloads that use it select among at
/// most a few thousand processes, where the table is both exact and fast; the
/// rejection-based sampler of the real `rand_distr` only wins for astronomically large
/// `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` elements with exponent `s`.
    ///
    /// # Errors
    ///
    /// Returns [`ZipfError::NTooSmall`] if `n == 0`, [`ZipfError::STooSmall`] unless `s`
    /// is finite and non-negative.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NTooSmall);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::STooSmall);
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0f64;
        for k in 1..=n {
            total += (k as f64).powf(-s);
            cdf.push(total);
        }
        Ok(Self { cdf })
    }

    /// Number of elements `n`.
    pub fn n(&self) -> u64 {
        self.cdf.len() as u64
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let total = *self.cdf.last().expect("n >= 1");
        let target = uniform_unit(rng) * total;
        // First rank whose cumulative weight exceeds the target.
        let index = self.cdf.partition_point(|&c| c <= target);
        (index.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_mean_and_spread_are_plausible() {
        let mut rng = StdRng::seed_from_u64(17);
        let normal = Normal::new(50.0, 10.0).unwrap();
        let samples: Vec<f64> = (0..4000).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 50.0).abs() < 1.0, "sample mean {mean}");
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!(
            (var.sqrt() - 10.0).abs() < 1.0,
            "sample std dev {}",
            var.sqrt()
        );
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let normal = Normal::new(5.0, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(normal.sample(&mut rng), 5.0);
        }
    }

    #[test]
    fn exp_rejects_invalid_parameters() {
        assert_eq!(Exp::new(0.0), Err(ExpError::LambdaTooSmall));
        assert_eq!(Exp::new(-1.0), Err(ExpError::LambdaTooSmall));
        assert_eq!(Exp::new(f64::NAN), Err(ExpError::LambdaTooSmall));
        assert_eq!(Exp::new(f64::INFINITY), Err(ExpError::LambdaTooSmall));
        assert_eq!(Exp::new(2.0).unwrap().lambda(), 2.0);
    }

    #[test]
    fn exp_sample_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let exp = Exp::new(1.0 / 50.0).unwrap(); // mean 50
        let samples: Vec<f64> = (0..8000).map(|_| exp.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s >= 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 50.0).abs() < 2.5, "sample mean {mean}");
    }

    /// Pins the exact deterministic stream under the vendored xoshiro256** `StdRng`: the
    /// workload generator's golden snapshots depend on these bits never changing.
    #[test]
    fn exp_stream_is_pinned_under_std_rng() {
        let mut rng = StdRng::seed_from_u64(42);
        let exp = Exp::new(0.5).unwrap();
        let samples: Vec<f64> = (0..4).map(|_| exp.sample(&mut rng)).collect();
        let expected = [
            0.17517866116683514,
            0.9527847901575448,
            2.279139903707755,
            5.172362921973685,
        ];
        assert_eq!(samples, expected);
    }

    #[test]
    fn zipf_rejects_invalid_parameters() {
        assert_eq!(Zipf::new(0, 1.0), Err(ZipfError::NTooSmall));
        assert_eq!(Zipf::new(5, -0.1), Err(ZipfError::STooSmall));
        assert_eq!(Zipf::new(5, f64::NAN), Err(ZipfError::STooSmall));
        assert_eq!(Zipf::new(5, 1.0).unwrap().n(), 5);
    }

    #[test]
    fn zipf_samples_stay_in_range_and_skew_low() {
        let mut rng = StdRng::seed_from_u64(7);
        let zipf = Zipf::new(10, 1.2).unwrap();
        let mut counts = [0usize; 10];
        for _ in 0..4000 {
            let k = zipf.sample(&mut rng);
            assert!((1.0..=10.0).contains(&k));
            assert_eq!(k, k.trunc(), "Zipf returns integral ranks");
            counts[k as usize - 1] += 1;
        }
        assert!(
            counts[0] > counts[4] && counts[4] > counts[9],
            "rank frequencies must decrease: {counts:?}"
        );
        // Rank 1 carries ~34% of the mass for n = 10, s = 1.2.
        assert!(counts[0] > 1000, "rank-1 count {}", counts[0]);
    }

    #[test]
    fn zipf_with_zero_exponent_is_uniform() {
        let mut rng = StdRng::seed_from_u64(5);
        let zipf = Zipf::new(4, 0.0).unwrap();
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[zipf.sample(&mut rng) as usize - 1] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "uniform-ish counts: {counts:?}");
        }
    }

    /// Pins the exact deterministic rank stream under the vendored `StdRng`.
    #[test]
    fn zipf_stream_is_pinned_under_std_rng() {
        let mut rng = StdRng::seed_from_u64(42);
        let zipf = Zipf::new(8, 1.0).unwrap();
        let ranks: Vec<f64> = (0..8).map(|_| zipf.sample(&mut rng)).collect();
        assert_eq!(ranks, vec![1.0, 2.0, 4.0, 7.0, 8.0, 5.0, 4.0, 6.0]);
    }
}
