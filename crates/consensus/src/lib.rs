//! Safe binary Byzantine consensus on top of Byzantine reliable broadcast.
//!
//! The paper's BRB stacks (`brb-core`) give every process a reliable broadcast
//! primitive on a partially connected network; this crate closes the classic loop and
//! builds **binary consensus** from it, DBFT-style (Crain–Gramoli–Larrea–Raynal;
//! Mostéfaoui–Moumen–Raynal's safe rounds with a common coin): each round runs a
//! BV-broadcast of binary estimates, an `AUX` vote exchange, and a deterministic
//! seeded common coin that breaks ties. **Every round-message is carried by a fresh
//! BRB instance** of whatever [`brb_core::stack::StackSpec`] engine the host chose —
//! consensus consumes BRB deliveries as its *only* input, so it inherits the
//! BRB guarantees (totality, agreement, no-duplicity) of the stack below it,
//! including on partially connected topologies where plain Bracha cannot run.
//!
//! ```text
//!   harness control ops           client payloads
//!   (Propose / CloseBv /          (plain broadcast_wire,
//!    CloseRound)                   NAMESPACE_CLIENT)
//!        │                              │
//!        ▼                              │ pass-through
//!  ┌───────────────────────────────┐    │
//!  │ ConsensusEngine (DynEngine)   │    │
//!  │  ConsensusNode: est /         │    │
//!  │  bin_values / aux / decide    │    │
//!  │    ▲ deliveries     │ EST/AUX │    │
//!  │    │                ▼ (new BRB│    │
//!  │    │   broadcast_wire_seq,    │    │
//!  │    │   NAMESPACE_CONSENSUS)   │    │
//!  └────┼────────────────┼─────────┘    │
//!       │                ▼              ▼
//!  ┌───────────────────────────────────────┐
//!  │ any BRB stack (Bd, Bracha⋅RoutedDolev,│
//!  │ Bracha⋅CPA, Bracha, …)                │
//!  └───────────────────────────────────────┘
//!                 │ frames
//!                 ▼  sim / channel runtime / TCP
//! ```
//!
//! The protocol is **phase-stepped**: the harness (the simulator's `run_consensus`,
//! or the live drivers' `drive_consensus`) closes each phase only once the network
//! is quiescent, by injecting [`ControlOp`]s through the ordinary broadcast entry
//! point. Because all consensus inputs are BRB deliveries evaluated at global
//! fixpoints, every correct process sees identical delivery sets at each close — so
//! decisions are lockstep-deterministic: the same value in the same round, on every
//! backend, for a given seed.
//!
//! # Quickstart
//!
//! Four processes over plain Bracha on a complete graph, proposing unanimously:
//!
//! ```
//! use brb_consensus::{close_bv_payload, close_round_payload, propose_payload};
//! use brb_consensus::{ConsensusEngine, ConsensusSpec, ProposalPattern};
//! use brb_core::config::Config;
//! use brb_core::stack::{DynEngine, StackSpec, WireAction, WireActionBuf};
//!
//! fn drain(from: usize, buf: &mut WireActionBuf, wires: &mut Vec<(usize, WireAction)>) {
//!     wires.extend(buf.drain().map(|a| (from, a)));
//! }
//!
//! /// Shuttle frames until the network is quiescent.
//! fn quiesce(nodes: &mut [ConsensusEngine], wires: &mut Vec<(usize, WireAction)>) {
//!     let mut buf = WireActionBuf::new();
//!     while let Some((from, action)) = wires.pop() {
//!         if let WireAction::Send { to, frame, .. } = action {
//!             nodes[to].handle_frame(from, &frame, &mut buf);
//!             drain(to, &mut buf, wires);
//!         }
//!     }
//! }
//!
//! let (n, f) = (4, 1);
//! let graph = brb_graph::generate::complete(n);
//! let config = Config::plain(n, f);
//! let spec = ConsensusSpec::default().with_proposals(ProposalPattern::Unanimous(1));
//! let mut nodes: Vec<ConsensusEngine> = (0..n)
//!     .map(|i| ConsensusEngine::new(StackSpec::Bracha.build(&config, &graph, i), n, f, &spec))
//!     .collect();
//! let handles: Vec<_> = nodes.iter().map(|e| e.decision_handle()).collect();
//!
//! let mut wires = Vec::new();
//! let mut buf = WireActionBuf::new();
//! for i in 0..n {
//!     nodes[i].broadcast_wire(propose_payload(), &mut buf);
//!     drain(i, &mut buf, &mut wires);
//! }
//! quiesce(&mut nodes, &mut wires);
//!
//! let mut round = 0;
//! while handles.iter().any(|h| h.get().is_none()) {
//!     for op in [close_bv_payload(round), close_round_payload(round)] {
//!         for i in 0..n {
//!             nodes[i].broadcast_wire(op.clone(), &mut buf);
//!             drain(i, &mut buf, &mut wires);
//!         }
//!         quiesce(&mut nodes, &mut wires);
//!     }
//!     round += 1;
//! }
//!
//! // Validity: everyone proposed 1, so every process decides 1 — in the same round.
//! let first = handles[0].get().unwrap();
//! assert_eq!(first.value, 1);
//! for h in &handles {
//!     assert_eq!(h.get(), Some(first));
//! }
//! ```
//!
//! # Instance namespacing
//!
//! Round-messages are broadcast through
//! [`DynEngine::broadcast_wire_seq`](brb_core::stack::DynEngine::broadcast_wire_seq)
//! with `seq = namespaced_seq(NAMESPACE_CONSENSUS, (round << 2) | slot)` — the
//! engine's own counter (plain broadcasts, workload schedules) lives in
//! [`brb_core::types::NAMESPACE_CLIENT`], so consensus instances can never collide
//! with client ids on the same node (see `brb_core::types::NAMESPACE_SHIFT`).

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

use brb_core::types::ProcessId;

pub mod checks;
pub mod codec;
mod engine;
mod node;

pub use codec::{
    close_bv_payload, close_round_payload, propose_payload, ControlOp, RoundMsg, SLOT_AUX,
};
pub use engine::{ConsensusEngine, DecisionHandle};
pub use node::ConsensusNode;

/// A consensus decision: the agreed binary value and the round it was reached in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Decision {
    /// The decided binary value (0 or 1).
    pub value: u8,
    /// The round in which this process decided.
    pub round: u32,
}

/// How initial proposals are assigned across processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProposalPattern {
    /// Every process proposes the same value.
    Unanimous(u8),
    /// Even process ids propose 0, odd ids propose 1.
    Split,
    /// Each process proposes a seeded pseudo-random bit.
    Random(u64),
}

impl ProposalPattern {
    /// The value process `id` proposes under this pattern.
    pub fn value_for(&self, id: ProcessId) -> u8 {
        match *self {
            ProposalPattern::Unanimous(v) => v & 1,
            ProposalPattern::Split => (id % 2) as u8,
            ProposalPattern::Random(seed) => (splitmix64(seed ^ (id as u64)) & 1) as u8,
        }
    }

    /// Canonical name used by CSV labels and CLI flags.
    pub fn name(&self) -> String {
        match *self {
            ProposalPattern::Unanimous(v) => format!("unanimous{}", v & 1),
            ProposalPattern::Split => "split".into(),
            ProposalPattern::Random(seed) => format!("random{seed}"),
        }
    }

    /// Parses a CLI flag value (`unanimous0`, `unanimous1`, `split`, `random<seed>`).
    pub fn parse(s: &str) -> Option<ProposalPattern> {
        match s {
            "unanimous0" => Some(ProposalPattern::Unanimous(0)),
            "unanimous1" => Some(ProposalPattern::Unanimous(1)),
            "split" => Some(ProposalPattern::Split),
            _ => s
                .strip_prefix("random")
                .and_then(|seed| seed.parse().ok())
                .map(ProposalPattern::Random),
        }
    }
}

/// Parameters of one consensus run, threaded through the experiment harnesses.
///
/// System-level parameters (`n`, `f`, the stack, the topology) come from the
/// surrounding experiment configuration; this spec holds the consensus-level knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsensusSpec {
    /// How initial proposals are assigned.
    pub proposals: ProposalPattern,
    /// Processes that run the consensus-level Byzantine value-flipper behaviour
    /// (complement every outgoing round-message, consistently in payload and slot).
    #[serde(default)]
    pub flippers: Vec<ProcessId>,
    /// Seed of the deterministic common coin.
    #[serde(default)]
    pub coin_seed: u64,
    /// Safety bound on the number of rounds (the coin decides long before this).
    #[serde(default = "default_max_rounds")]
    pub max_rounds: u32,
}

fn default_max_rounds() -> u32 {
    32
}

impl Default for ConsensusSpec {
    fn default() -> Self {
        Self {
            proposals: ProposalPattern::Split,
            flippers: Vec::new(),
            coin_seed: 0,
            max_rounds: default_max_rounds(),
        }
    }
}

impl ConsensusSpec {
    /// Returns a copy with the proposal pattern replaced.
    pub fn with_proposals(mut self, proposals: ProposalPattern) -> Self {
        self.proposals = proposals;
        self
    }

    /// Returns a copy with the given consensus-level value-flippers.
    pub fn with_flippers(mut self, flippers: Vec<ProcessId>) -> Self {
        self.flippers = flippers;
        self
    }

    /// Returns a copy with the common-coin seed replaced.
    pub fn with_coin_seed(mut self, seed: u64) -> Self {
        self.coin_seed = seed;
        self
    }

    /// Returns a copy with the round safety bound replaced.
    pub fn with_max_rounds(mut self, max_rounds: u32) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// The value process `id` proposes under this spec.
    pub fn proposal_for(&self, id: ProcessId) -> u8 {
        self.proposals.value_for(id)
    }
}

/// The deterministic seeded common coin: every process computes the same bit for a
/// given `(seed, round)`, with no interaction (the paper's model has no cryptography,
/// so a verifiable random beacon is out of scope; a shared seed plays its role).
pub fn common_coin(seed: u64, round: u32) -> u8 {
    (splitmix64(seed ^ (round as u64).wrapping_mul(0xA24B_AED4_963E_E407)) & 1) as u8
}

/// SplitMix64 finalizer — the same deterministic mixer on every platform.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coin_is_pinned_for_the_default_seed() {
        // Cross-backend determinism rests on every process computing these exact bits;
        // pin the first rounds of the default seed so a mixer change cannot slip by.
        let bits: Vec<u8> = (0..8).map(|r| common_coin(0, r)).collect();
        assert_eq!(bits, vec![1, 0, 0, 1, 1, 1, 1, 0]);
        // Both outcomes occur within a few rounds for arbitrary seeds (termination).
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            let first8: Vec<u8> = (0..8).map(|r| common_coin(seed, r)).collect();
            assert!(
                first8.contains(&0) && first8.contains(&1),
                "seed {seed}: {first8:?}"
            );
        }
    }

    #[test]
    fn proposal_patterns_are_deterministic_and_named() {
        assert_eq!(ProposalPattern::Unanimous(1).value_for(12), 1);
        assert_eq!(ProposalPattern::Split.value_for(4), 0);
        assert_eq!(ProposalPattern::Split.value_for(5), 1);
        let r = ProposalPattern::Random(42);
        assert_eq!(r.value_for(3), r.value_for(3));
        for p in [
            ProposalPattern::Unanimous(0),
            ProposalPattern::Unanimous(1),
            ProposalPattern::Split,
            ProposalPattern::Random(42),
        ] {
            assert_eq!(ProposalPattern::parse(&p.name()), Some(p));
        }
        assert_eq!(ProposalPattern::parse("bogus"), None);
    }

    #[test]
    fn spec_builders_compose() {
        let spec = ConsensusSpec::default()
            .with_proposals(ProposalPattern::Random(9))
            .with_flippers(vec![2, 5])
            .with_coin_seed(77)
            .with_max_rounds(8);
        assert_eq!(spec.proposals, ProposalPattern::Random(9));
        assert_eq!(spec.flippers, vec![2, 5]);
        assert_eq!(spec.coin_seed, 77);
        assert_eq!(spec.max_rounds, 8);
        assert_eq!(
            spec.proposal_for(3),
            ProposalPattern::Random(9).value_for(3)
        );
    }
}
