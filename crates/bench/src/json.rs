//! Minimal hand-rolled JSON emission shared by the machine-readable benchmark binaries.
//!
//! The workspace deliberately carries no JSON dependency, so `bench_quiescence` and
//! `bench_consensus` used to each format their `BENCH_*.json` snapshot with ad-hoc
//! `format!` strings. This module is that formatting written once: an insertion-ordered
//! [`JsonObject`] builder that renders pretty-printed two-space-indented JSON, plus the
//! `--out PATH` argument parsing and the write-echo epilogue both binaries share.
//!
//! The emitted documents parse under `brb_trace::parse_json`, which the round-trip test
//! below pins.

use std::fmt::Write as _;

/// One JSON value as the benchmark emitters need it: numbers are pre-formatted strings
/// (so callers control float precision), objects nest.
#[derive(Debug, Clone)]
enum JsonField {
    /// A pre-rendered literal: number or boolean.
    Raw(String),
    /// A string value (escaped on render).
    Str(String),
    /// A nested object.
    Obj(JsonObject),
}

/// An insertion-ordered JSON object builder.
///
/// ```
/// use brb_bench::json::JsonObject;
///
/// let mut obj = JsonObject::new();
/// obj.str("bench", "demo").u64("iters", 3).f64("mean_ms", 1.5, 3);
/// assert!(obj.render().contains("\"mean_ms\": 1.500"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, JsonField)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.fields
            .push((key.to_string(), JsonField::Str(value.to_string())));
        self
    }

    /// Appends an unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.fields
            .push((key.to_string(), JsonField::Raw(value.to_string())));
        self
    }

    /// Appends a float field rendered with the given number of decimal places.
    pub fn f64(&mut self, key: &str, value: f64, places: usize) -> &mut Self {
        self.fields
            .push((key.to_string(), JsonField::Raw(format!("{value:.places$}"))));
        self
    }

    /// Appends a nested object field.
    pub fn obj(&mut self, key: &str, value: JsonObject) -> &mut Self {
        self.fields.push((key.to_string(), JsonField::Obj(value)));
        self
    }

    /// Renders the object as pretty-printed JSON (two-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        if self.fields.is_empty() {
            out.push_str("{}");
            return;
        }
        let pad = "  ".repeat(depth + 1);
        out.push_str("{\n");
        for (i, (key, field)) in self.fields.iter().enumerate() {
            let _ = write!(out, "{pad}\"{}\": ", brb_trace::escape_json(key));
            match field {
                JsonField::Raw(raw) => out.push_str(raw),
                JsonField::Str(s) => {
                    let _ = write!(out, "\"{}\"", brb_trace::escape_json(s));
                }
                JsonField::Obj(obj) => obj.render_into(out, depth + 1),
            }
            if i + 1 < self.fields.len() {
                out.push(',');
            }
            out.push('\n');
        }
        let _ = write!(out, "{}}}", "  ".repeat(depth));
    }
}

/// Parses the `--out PATH` / `--out=PATH` option every benchmark binary supports,
/// defaulting to `default` when absent.
pub fn out_path_from_args(args: &[String], default: &str) -> String {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix("--out=").map(str::to_string))
        })
        .unwrap_or_else(|| default.to_string())
}

/// The shared epilogue: writes `json` to `path`, echoes it to stdout, and prints the
/// `# written to` marker the smoke script greps for.
///
/// # Panics
///
/// Panics when the path is not writable — benchmark binaries want the hard failure.
pub fn write_and_echo(path: &str, json: &str) {
    std::fs::write(path, json).expect("JSON output path must be writable");
    print!("{json}");
    println!("# written to {path}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_parseable_nested_json() {
        let mut inner = JsonObject::new();
        inner.u64("first_bytes", 100).u64("last_bytes", 400);
        let mut obj = JsonObject::new();
        obj.str("bench", "demo \"quoted\"")
            .f64("mean_ms", 12.3456, 3)
            .obj("curve", inner)
            .obj("empty", JsonObject::new());
        let rendered = obj.render();
        assert!(rendered.contains("\"mean_ms\": 12.346"));
        assert!(rendered.ends_with("}\n"));
        let parsed = brb_trace::parse_json(&rendered).expect("round-trips");
        let brb_trace::JsonValue::Object(fields) = &parsed else {
            panic!("top level must be an object");
        };
        assert_eq!(fields.len(), 4);
        assert_eq!(parsed.get("bench").and_then(|v| v.as_str()), Some("demo \"quoted\""));
        assert_eq!(
            parsed
                .get("curve")
                .and_then(|c| c.get("last_bytes"))
                .and_then(|v| v.as_u64()),
            Some(400)
        );
    }

    #[test]
    fn out_path_parsing() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(out_path_from_args(&args(&[]), "d.json"), "d.json");
        assert_eq!(
            out_path_from_args(&args(&["--out", "a.json"]), "d.json"),
            "a.json"
        );
        assert_eq!(
            out_path_from_args(&args(&["--out=b.json"]), "d.json"),
            "b.json"
        );
    }
}
