//! The transport-generic node event loop shared by every live deployment.
//!
//! `brb-runtime` and `brb-net` used to each carry their own near-identical node loop
//! (command handling, idle shutdown, jitter sleeps, `WireActionBuf` dispatch). The
//! [`NodeDriver`] is that loop, written once against the [`Transport`] abstraction: a
//! deployment builds one driver per process — a boxed [`DynEngine`], a decorated
//! transport, a command channel and the shared delivery channel — spawns `run()` on a
//! thread, and collects the [`NodeReport`]s at shutdown. The deployments themselves are
//! thereby reduced to *constructors* (wire the links, build the engines, spawn drivers).

use std::sync::Arc;
use std::time::Duration;

use brb_core::stack::{DynEngine, WireAction, WireActionBuf};
use brb_core::types::{BroadcastId, BroadcastSeq, Delivery, Payload, ProcessId};
use brb_core::wire::split_batch;
use brb_sim::churn::RestartMemory;
use brb_sim::Behavior;
use brb_trace::{DropCounts, NodeCounters, TraceEventKind, TraceSink, Tracer};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::churn::{ChurnHandle, ChurnLink};
use crate::link::Frame;
use crate::policy::{DelayedLink, FaultyLink, LinkDelay, LinkObserver, LinkPolicy};
use crate::transport::{OutFrame, Transport};

/// Structured-trace configuration of a live deployment: one shared sink and one shared
/// **wall-clock** epoch, so every node's events are stamped on the same time base.
///
/// Build one per deployment ([`TraceConfig::new`]) and install it with
/// [`DriverOptions::with_trace`]; each node's driver derives its tracer from it and
/// threads the handle through its engine and link decorators.
#[derive(Clone)]
pub struct TraceConfig {
    sink: Arc<dyn TraceSink>,
    backend: brb_trace::Backend,
    clock: brb_trace::Clock,
}

impl TraceConfig {
    /// A trace configuration for `backend` writing to `sink`, with the shared epoch
    /// anchored at the moment of this call.
    pub fn new(backend: brb_trace::Backend, sink: Arc<dyn TraceSink>) -> Self {
        Self {
            sink,
            backend,
            clock: brb_trace::Clock::wall_from_now(),
        }
    }

    /// The tracer a node derives from this configuration (all nodes share the sink and
    /// the epoch).
    pub fn tracer(&self) -> Tracer {
        Tracer::new(self.backend, self.clock.clone(), self.sink.clone())
    }
}

impl std::fmt::Debug for TraceConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceConfig")
            .field("backend", &self.backend)
            .finish_non_exhaustive()
    }
}

/// Commands a deployment sends to one of its node drivers.
#[derive(Debug, Clone)]
pub enum Command {
    /// Initiate the broadcast of the given payload.
    ///
    /// Broadcasts initiated this way mint ids in the **client instance namespace**
    /// (`brb_core::types::NAMESPACE_CLIENT`): engines allocate the next free local
    /// sequence number under namespace 0, so deployment-initiated client traffic can
    /// never collide with the ids a decorator engine (e.g. a
    /// `brb_consensus::ConsensusEngine`, which owns `NAMESPACE_CONSENSUS`) mints for
    /// its own internal broadcasts on the same node.
    Broadcast(Payload),
    /// Crash-recover the node: its engine (all volatile protocol state) is discarded
    /// and rebuilt through the driver's engine factory; the durable delivered log
    /// survives. A no-op when no factory was installed
    /// (see [`NodeDriver::with_engine_factory`]).
    Restart,
    /// Finish processing pending traffic, then exit and report.
    Shutdown,
}

/// Options of a live deployment, shared by the channel runtime and the TCP backend.
///
/// This replaces the former `RuntimeOptions` / `TcpOptions` pair, whose separately
/// maintained `Default` impls had already started to drift apart in spirit. On top of
/// the old knobs it carries the
/// [`LinkPolicy`] vocabulary: per-process Byzantine [`Behavior`]s and a wall-clock-scaled
/// [`brb_sim::DelayModel`], so the simulator's scenario configurations run identically on
/// the live backends.
#[derive(Debug, Clone)]
pub struct DriverOptions {
    /// Legacy artificial per-frame transmission delay: `Some((mean, jitter))` delays
    /// each outbound frame by `mean + uniform(0..=jitter)`, `None` transmits
    /// immediately. The field is kept so code written against the old options structs
    /// compiles unchanged, but the delay is now applied through the non-blocking
    /// [`crate::policy::DelayedLink`] delay line: frames overlap in flight instead of
    /// serializing the node loop with sleeps, so wall-clock latencies come out lower
    /// than under the old implementation (and closer to the simulator's, which is the
    /// point). Prefer [`DriverOptions::link_delay`], which expresses the same regime as
    /// [`LinkDelay::MeanJitter`] and the paper's distributions as [`LinkDelay::Scaled`].
    /// When set, it takes precedence over `link_delay`.
    pub delay: Option<(Duration, Duration)>,
    /// How long a node waits without any traffic before it considers the broadcast
    /// quiesced and checks for shutdown. [`DriverOptions::default`] uses 300 ms.
    pub idle_shutdown: Duration,
    /// Base seed of the per-node RNG streams (delay jitter, behavior drop decisions);
    /// process `i` derives its streams from `seed + i`.
    pub seed: u64,
    /// Byzantine behavior assignments, `(process, behavior)`. Unlisted processes are
    /// [`Behavior::Correct`]; later entries override earlier ones. [`Behavior::Crash`]
    /// spawns the node but makes it deaf and mute, indistinguishable from a process that
    /// crashed at start-up.
    pub behaviors: Vec<(ProcessId, Behavior)>,
    /// Per-frame transmission delay applied on every node's outbound links.
    pub link_delay: LinkDelay,
    /// Instance-GC retention policy installed on every node's engine. `None` (the
    /// default) leaves whatever the engine's [`brb_core::config::Config`] seeded —
    /// usually disabled — so per-broadcast state is kept forever, the pre-GC behavior.
    pub gc: Option<brb_core::gc::GcPolicy>,
    /// Churn schedule of the deployment, when one is set: every node's transport is
    /// gated by the handle's shared link state ([`ChurnLink`] outermost, so a frame on
    /// a downed link never reaches a behavior or delay decorator — the simulator's
    /// ordering), and per-link delay overrides ride the delay line. The deployment is
    /// responsible for spawning the pacer ([`ChurnHandle::spawn_pacer`]).
    pub churn: Option<ChurnHandle>,
    /// Structured-trace configuration: when set, every node's engine and link
    /// decorators emit [`brb_trace::TraceEvent`]s into the shared sink, stamped with
    /// wall-clock microseconds since the config's epoch. `None` — the default — keeps
    /// tracing disabled (a single branch per would-be event).
    pub trace: Option<TraceConfig>,
    /// Whether the driver coalesces the same-destination frames of one engine event
    /// into [`crate::transport::Transport::send_batch`] bursts (one channel op / one
    /// syscall per destination instead of one per frame). Off by default. Byte and
    /// copy accounting is identical either way — the transport's
    /// [`crate::transport::SendReceipt`] reports exactly what the frame-at-a-time path
    /// would; with tracing enabled the driver falls back to per-frame sends so every
    /// transmitted copy still gets its own `FrameSent` event.
    pub batch_sends: bool,
    /// Number of engine shards per node (`1` — the default — keeps the classic single
    /// engine). With `W > 1` the deployment builds `W - 1` extra engines per node
    /// ([`NodeDriver::with_shard_engines`]) and the driver partitions concurrent
    /// broadcast *instances* across them by a deterministic hash of the
    /// [`brb_core::types::BroadcastId`] peeked off each inbound frame
    /// ([`DynEngine::frame_broadcast_id`]), so independent instances decode and
    /// process in parallel while every frame of one instance always reaches the same
    /// engine. Deployments clamp this to `1` when restarts are scheduled (a restart
    /// rebuilds one engine, not a pool) and for caller-built decorator engines.
    pub shard_workers: usize,
}

impl Default for DriverOptions {
    /// The defaults the two deleted options structs both used (no delay, 300 ms idle
    /// shutdown, seed 1), now stated once, plus all-correct behaviors and no link delay.
    fn default() -> Self {
        Self {
            delay: None,
            idle_shutdown: Duration::from_millis(300),
            seed: 1,
            behaviors: Vec::new(),
            link_delay: LinkDelay::None,
            gc: None,
            churn: None,
            trace: None,
            batch_sends: false,
            shard_workers: 1,
        }
    }
}

impl DriverOptions {
    /// The defaults every deployment shares: no delay, 300 ms idle shutdown, seed 1,
    /// all-correct behaviors.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy with the given behavior assignments installed.
    pub fn with_behaviors(mut self, behaviors: Vec<(ProcessId, Behavior)>) -> Self {
        self.behaviors = behaviors;
        self
    }

    /// Returns a copy with the given link delay installed.
    pub fn with_link_delay(mut self, link_delay: LinkDelay) -> Self {
        self.link_delay = link_delay;
        self
    }

    /// Returns a copy with the given instance-GC retention policy installed on every
    /// node's engine.
    pub fn with_gc(mut self, gc: brb_core::gc::GcPolicy) -> Self {
        self.gc = Some(gc);
        self
    }

    /// Returns a copy with the given churn schedule installed on every node's links.
    pub fn with_churn(mut self, churn: ChurnHandle) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Returns a copy with structured tracing enabled on every node (see
    /// [`TraceConfig`]).
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Returns a copy with same-destination frame coalescing enabled (see
    /// [`DriverOptions::batch_sends`]).
    pub fn with_batching(mut self) -> Self {
        self.batch_sends = true;
        self
    }

    /// Returns a copy with broadcast instances sharded across `workers` engines per
    /// node (see [`DriverOptions::shard_workers`]; values below 1 are treated as 1).
    pub fn with_shards(mut self, workers: usize) -> Self {
        self.shard_workers = workers.max(1);
        self
    }

    /// The tracer resolved for every node: derived from [`DriverOptions::trace`] when
    /// set, disabled otherwise.
    pub fn tracer(&self) -> Tracer {
        self.trace
            .as_ref()
            .map(TraceConfig::tracer)
            .unwrap_or_default()
    }

    /// The behavior assigned to `process` (the last matching entry wins).
    pub fn behavior_of(&self, process: ProcessId) -> Behavior {
        self.behaviors
            .iter()
            .rev()
            .find(|(p, _)| *p == process)
            .map(|(_, b)| b.clone())
            .unwrap_or_default()
    }

    /// The [`LinkPolicy`] this options set resolves to for `process`: its assigned
    /// behavior plus the deployment-wide link delay (the legacy
    /// [`DriverOptions::delay`] field, when set, wins over
    /// [`DriverOptions::link_delay`]).
    pub fn policy_of(&self, process: ProcessId) -> LinkPolicy {
        let delay = match self.delay {
            Some((mean, jitter)) => LinkDelay::MeanJitter { mean, jitter },
            None => self.link_delay.clone(),
        };
        LinkPolicy {
            behavior: self.behavior_of(process),
            delay,
        }
    }

    /// Decorates `base` with the fault/delay policy resolved for `process`
    /// (see [`LinkPolicy::decorate`]), plus the churn gate when a schedule is set.
    ///
    /// With churn the composition is, outermost first: [`ChurnLink`] (downed-link gate
    /// and loss overrides), the behavior ([`FaultyLink`]), the delay line
    /// ([`DelayedLink`], always present so the per-link delay overrides have a line to
    /// ride even under [`LinkDelay::None`]) — the exact order the simulator applies per
    /// `Send` action, so a gated frame advances no behavior counter and samples no
    /// delay.
    pub fn decorate(&self, process: ProcessId, base: Box<dyn Transport>) -> Box<dyn Transport> {
        self.decorate_observed(process, base, None)
    }

    /// [`DriverOptions::decorate`] with every decorator's drop/occupancy accounting
    /// routed into `observer` (what [`NodeDriver::new`] installs).
    pub fn decorate_observed(
        &self,
        process: ProcessId,
        base: Box<dyn Transport>,
        observer: Option<LinkObserver>,
    ) -> Box<dyn Transport> {
        let seed = self.seed.wrapping_add(process as u64);
        let Some(handle) = &self.churn else {
            return self
                .policy_of(process)
                .decorate_observed(base, seed, observer);
        };
        let policy = self.policy_of(process);
        let line = match &observer {
            Some(obs) => DelayedLink::observed(base, policy.delay.clone(), seed, obs.clone()),
            None => DelayedLink::new(base, policy.delay.clone(), seed),
        };
        let mut transport: Box<dyn Transport> = Box::new(line.churned(handle.clone(), process));
        if policy.behavior.is_byzantine() {
            // The same distinct stream LinkPolicy::decorate derives, so a behavior's
            // drop decisions do not move when churn is enabled.
            let mut faulty = FaultyLink::new(
                transport,
                policy.behavior.clone(),
                seed ^ 0x5EED_B44A_D001_CAFE,
            );
            if let Some(obs) = &observer {
                faulty = faulty.with_observer(obs.clone());
            }
            transport = Box::new(faulty);
        }
        let mut gate = ChurnLink::new(
            transport,
            handle.clone(),
            process,
            seed ^ 0xC4C4_D70B_1055_CAFE,
        );
        if let Some(obs) = observer {
            gate = gate.with_observer(obs);
        }
        Box::new(gate)
    }
}

/// Final report of one node driver.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Identifier of the process.
    pub id: ProcessId,
    /// Payloads delivered by the process, in delivery order.
    pub deliveries: Vec<Delivery>,
    /// Number of frames the process put on its links (amplified copies each count).
    pub messages_sent: usize,
    /// Total bytes the process put on its links (Table 3 accounting).
    pub bytes_sent: usize,
    /// Protocol-state bytes the engine still held at shutdown (flat under instance GC,
    /// growing with every broadcast without it).
    pub state_bytes: usize,
    /// Broadcast instances the engine retired through watermark GC (summed across
    /// restarts: retirements of discarded engines are carried over).
    pub gc_retired: u64,
    /// Number of [`Command::Restart`]s the node carried out.
    pub restarts: u64,
    /// Frames the node's link decorators discarded, broken down by cause (churn
    /// gating, loss overrides, Byzantine behavior, non-neighbor sends). Engines'
    /// GC-retired ingress drops surface only in the trace, not here — they are
    /// receive-side.
    pub drops_by_cause: DropCounts,
    /// Peak occupancy of the node's delay line (0 without a [`LinkDelay`] that queues).
    pub queue_depth_peak: u64,
    /// The node's consensus decision, when the deployment ran binary consensus over
    /// BRB (`brb-consensus`). The driver itself never sets this — it reports `None`
    /// and the consensus harness patches the field in from the engines'
    /// [`brb_consensus::DecisionHandle`]s after shutdown.
    pub decision: Option<brb_consensus::Decision>,
}

/// Aggregated report of a whole deployment run.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// Per-node reports, indexed by process identifier.
    pub nodes: Vec<NodeReport>,
}

impl DeploymentReport {
    /// Total number of messages transmitted.
    pub fn total_messages(&self) -> usize {
        self.nodes.iter().map(|n| n.messages_sent).sum()
    }

    /// Total bytes transmitted.
    pub fn total_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.bytes_sent).sum()
    }

    /// Whether every listed process delivered exactly `expected` payloads.
    pub fn all_delivered(&self, processes: &[ProcessId], expected: usize) -> bool {
        processes
            .iter()
            .all(|&p| self.nodes[p].deliveries.len() == expected)
    }
}

/// What the driver loop woke up on in one iteration.
enum Wake {
    Command(Option<Command>),
    Frame(Option<crate::link::Frame>),
    Shard(Option<Vec<WireAction>>),
    Idle,
}

/// One unit of work handed to a shard worker: the engine event plus the driver's clock
/// reading at hand-off (workers feed it to [`DynEngine::note_time`] before the event, so
/// time-based GC retention sees the same clock the inline engine does).
enum ShardJob {
    /// Initiate a broadcast under the driver-minted client sequence number.
    Broadcast {
        seq: BroadcastSeq,
        payload: Payload,
        now_ms: u64,
    },
    /// Handle one inbound frame of an instance owned by this shard.
    Frame {
        from: ProcessId,
        bytes: Bytes,
        now_ms: u64,
    },
    /// Handle a burst of frames owned by this shard (the shard-routed slice of one
    /// ingest cycle, each part tagged with its authenticated sender): one channel op
    /// and one worker wake-up for the whole group instead of one per frame, which is
    /// what keeps the pool from drowning in hand-off overhead under saturation
    /// traffic.
    Frames {
        parts: Vec<(ProcessId, Bytes)>,
        now_ms: u64,
    },
}

/// A running shard worker: its job queue and the join handle that returns the engine
/// (with its delivered log, state bytes and GC counters) at shutdown.
struct ShardWorker {
    jobs: Sender<ShardJob>,
    handle: std::thread::JoinHandle<Box<dyn DynEngine>>,
}

/// The loop of one shard worker thread: run the owned engine on each job and ship the
/// resulting actions back to the driver thread (which owns the transport, so frames of
/// every shard leave through one decorated link stack, exactly like unsharded traffic).
fn run_shard_worker(
    mut engine: Box<dyn DynEngine>,
    jobs: Receiver<ShardJob>,
    out: Sender<Vec<WireAction>>,
) -> Box<dyn DynEngine> {
    let mut buf = WireActionBuf::new();
    while let Ok(job) = jobs.recv() {
        match job {
            ShardJob::Broadcast {
                seq,
                payload,
                now_ms,
            } => {
                engine.note_time(now_ms);
                engine.broadcast_wire_seq(seq, payload, &mut buf);
            }
            ShardJob::Frame {
                from,
                bytes,
                now_ms,
            } => {
                engine.note_time(now_ms);
                engine.handle_frame(from, &bytes, &mut buf);
            }
            ShardJob::Frames { parts, now_ms } => {
                engine.note_time(now_ms);
                for (from, bytes) in &parts {
                    engine.handle_frame(*from, bytes, &mut buf);
                }
            }
        }
        // Every job gets exactly one reply (possibly empty): the driver's in-flight
        // counter pairs them up to gate shutdown.
        if out.send(buf.drain().collect()).is_err() {
            break;
        }
    }
    engine
}

/// One node of a live deployment: a boxed protocol engine, its (decorated) transport, a
/// reusable action sink, and the command/delivery channels back to the deployment.
///
/// The driver's event loop is byte-for-byte the behavior the two per-backend loops used
/// to implement: wake on a command or an inbound frame, feed the engine, dispatch the
/// resulting [`WireAction`]s (frames to the transport, deliveries to the shared
/// channel), and shut down once the shutdown command arrived and the inbound stream
/// drained — with the idle timeout bounding how long quiescence detection waits.
pub struct NodeDriver {
    engine: Box<dyn DynEngine>,
    actions: WireActionBuf,
    transport: Box<dyn Transport>,
    commands: Receiver<Command>,
    deliveries: Sender<(ProcessId, Delivery)>,
    idle_shutdown: Duration,
    /// Whether the node processes inbound traffic and broadcast commands at all
    /// (`false` only for [`Behavior::Crash`], whose outbound side the decorator already
    /// silences).
    receives: bool,
    /// Rebuilds a fresh engine on [`Command::Restart`]. `None` (the default) makes
    /// restarts no-ops — only deployments running a churn schedule with restarts
    /// install one.
    engine_factory: Option<Box<dyn FnMut() -> Box<dyn DynEngine> + Send>>,
    /// The durable compact state a restart preserves: the ids delivered by discarded
    /// engines (suppressing post-restart re-deliveries, the no-duplication-across-
    /// crashes property) ...
    memory: RestartMemory,
    /// ... and those deliveries themselves, in order, for the final report.
    durable: Vec<Delivery>,
    /// The GC policy to re-install on a rebuilt engine (the factory builds from the
    /// raw config, which usually has GC disabled).
    gc: Option<brb_core::gc::GcPolicy>,
    /// GC retirements of discarded engines, carried into the final report.
    retired_before: u64,
    /// Number of restarts carried out.
    restarts: u64,
    /// The node's always-on counter registry, shared with its link decorators.
    counters: Arc<NodeCounters>,
    /// The node's tracer (disabled unless [`DriverOptions::trace`] was set).
    tracer: Tracer,
    /// Whether dispatch coalesces same-destination frames into `send_batch` bursts
    /// (see [`DriverOptions::batch_sends`]).
    batch_sends: bool,
    /// Reusable per-destination staging of one batched dispatch: destination slots are
    /// created on first use and their `Vec` capacity is retained across dispatches, so
    /// the steady-state batched path allocates nothing per event.
    out_batches: Vec<(ProcessId, Vec<OutFrame>)>,
    /// Extra shard engines installed by the deployment
    /// ([`NodeDriver::with_shard_engines`]); `run` moves each onto its own worker
    /// thread. Empty in the classic single-engine configuration.
    shard_extras: Vec<Box<dyn DynEngine>>,
    /// Worker → driver return channel for shard action buffers. The driver keeps the
    /// sender alive so the select arm stays quiet (never disconnects) when unsharded.
    shard_out_tx: Sender<Vec<WireAction>>,
    shard_out_rx: Receiver<Vec<WireAction>>,
    /// Next client-namespace local sequence number. Only the sharded configuration
    /// mints broadcast ids here (the driver must know the id to pick the owning shard
    /// before any engine runs); unsharded drivers leave minting to the engine's own
    /// counter, exactly as before.
    next_client_seq: u32,
}

/// The shard owning `id` in a pool of `workers` engines: a deterministic multiplicative
/// hash over (source, seq), identical on every backend and every run. Shard `0` is the
/// driver's inline engine; shards `1..workers` live on worker threads.
fn shard_of(id: BroadcastId, workers: usize) -> usize {
    (((id.source as u64).wrapping_mul(0x9E37_79B9)).wrapping_add(id.seq as u64)
        % workers as u64) as usize
}

impl NodeDriver {
    /// Builds the driver for `process`: decorates `transport` with the fault/delay
    /// policy `options` resolves for this process and wires the channels.
    pub fn new(
        engine: Box<dyn DynEngine>,
        transport: Box<dyn Transport>,
        commands: Receiver<Command>,
        deliveries: Sender<(ProcessId, Delivery)>,
        options: &DriverOptions,
    ) -> Self {
        let id = engine.process_id();
        let policy = options.policy_of(id);
        let receives = policy.behavior.receives();
        let mut engine = engine;
        if let Some(gc) = options.gc {
            engine.set_gc_policy(gc);
        }
        let tracer = options.tracer();
        engine.set_tracer(tracer.clone());
        let counters = Arc::new(NodeCounters::default());
        let observer = LinkObserver::new(id, counters.clone(), tracer.clone());
        let (shard_out_tx, shard_out_rx) = unbounded();
        Self {
            engine,
            actions: WireActionBuf::new(),
            transport: options.decorate_observed(id, transport, Some(observer)),
            commands,
            deliveries,
            idle_shutdown: options.idle_shutdown,
            receives,
            engine_factory: None,
            memory: RestartMemory::new(),
            durable: Vec::new(),
            gc: options.gc,
            retired_before: 0,
            restarts: 0,
            counters,
            tracer,
            batch_sends: options.batch_sends,
            out_batches: Vec::new(),
            shard_extras: Vec::new(),
            shard_out_tx,
            shard_out_rx,
            next_client_seq: 0,
        }
    }

    /// Installs the extra engines of a sharded node ([`DriverOptions::shard_workers`]
    /// `> 1`): the deployment builds them with the *same* constructor (and process
    /// identity) as the primary engine, and `run` moves each onto its own worker
    /// thread. The driver applies the node's GC policy and tracer to every shard, as
    /// it did to the primary. Not compatible with an engine factory (restarts rebuild
    /// one engine, not a pool) — deployments clamp sharding off under restart churn.
    #[must_use]
    pub fn with_shard_engines(mut self, extras: Vec<Box<dyn DynEngine>>) -> Self {
        for mut engine in extras {
            if let Some(gc) = self.gc {
                engine.set_gc_policy(gc);
            }
            engine.set_tracer(self.tracer.clone());
            self.shard_extras.push(engine);
        }
        self
    }

    /// Installs the engine factory [`Command::Restart`] rebuilds from: a deployment
    /// running a churn schedule with [`brb_sim::churn::ChurnAction::NodeRestart`] events
    /// passes the same constructor it built the original engine with, so the fresh
    /// engine re-joins with the identical identity and topology view but none of the
    /// volatile protocol state.
    #[must_use]
    pub fn with_engine_factory(
        mut self,
        factory: impl FnMut() -> Box<dyn DynEngine> + Send + 'static,
    ) -> Self {
        self.engine_factory = Some(Box::new(factory));
        self
    }

    /// Carries out a [`Command::Restart`]: absorbs the doomed engine's delivered log
    /// into the durable state, then swaps in a freshly built engine (with the GC policy
    /// re-applied). A no-op without an engine factory.
    fn restart(&mut self) {
        if self.engine_factory.is_none() {
            return;
        }
        for delivery in self.engine.deliveries() {
            if self.memory.note_delivered(delivery.id) {
                self.durable.push(delivery.clone());
            }
        }
        self.retired_before += self.engine.gc_retired();
        let factory = self.engine_factory.as_mut().expect("checked above");
        let mut fresh = factory();
        if let Some(gc) = self.gc {
            fresh.set_gc_policy(gc);
        }
        fresh.set_tracer(self.tracer.clone());
        self.actions.clear();
        self.engine = fresh;
        self.restarts += 1;
        self.tracer
            .emit_frame(self.engine.process_id(), TraceEventKind::Restarted);
    }

    /// Runs the node to completion (shutdown command or channel disconnection) and
    /// reports what it delivered and transmitted. Deployments call this on a dedicated
    /// thread, one per process.
    pub fn run(mut self) -> NodeReport {
        let id = self.engine.process_id();
        let started = std::time::Instant::now();
        let mut messages_sent = 0usize;
        let mut bytes_sent = 0usize;
        let mut shutting_down = false;
        // Spawn the shard workers — none in the classic single-engine configuration.
        let workers: Vec<ShardWorker> = self
            .shard_extras
            .drain(..)
            .map(|engine| {
                let (jobs, job_rx) = unbounded();
                let out = self.shard_out_tx.clone();
                ShardWorker {
                    jobs,
                    handle: std::thread::spawn(move || run_shard_worker(engine, job_rx, out)),
                }
            })
            .collect();
        let shards = workers.len() + 1;
        // Jobs handed to workers whose action buffers have not come back yet; shutdown
        // waits for zero, so no engine event is ever lost to the pool.
        let mut in_flight = 0usize;
        // Backstop for the wait: a worker that died mid-job (panicked engine) can never
        // reply, so a shutdown that sees no in-flight movement for a full stall window
        // abandons the stragglers instead of hanging the deployment forever.
        let stall_window = self.idle_shutdown.max(Duration::from_secs(1));
        let mut last_progress = std::time::Instant::now();
        loop {
            let wake = crossbeam::channel::select! {
                recv(self.commands) -> cmd => Wake::Command(cmd.ok()),
                recv(self.transport.inbound()) -> frame => Wake::Frame(frame.ok()),
                recv(self.shard_out_rx) -> actions => Wake::Shard(actions.ok()),
                default(self.idle_shutdown) => Wake::Idle,
            };
            // Live backends feed wall-clock milliseconds since start-up, so
            // time-based retention windows measure real elapsed time.
            let now_ms = started.elapsed().as_millis() as u64;
            self.engine.note_time(now_ms);
            let in_flight_before = in_flight;
            match wake {
                Wake::Command(Some(Command::Broadcast(payload))) => {
                    if self.receives {
                        if shards > 1 {
                            // The driver mints the client id so it can pick the owning
                            // shard before any engine runs; shard engines never touch
                            // their own counters, so ids stay collision-free and
                            // identical to the unsharded run's.
                            let seq = brb_core::types::namespaced_seq(
                                brb_core::types::NAMESPACE_CLIENT,
                                self.next_client_seq,
                            );
                            self.next_client_seq += 1;
                            let shard = shard_of(BroadcastId { source: id, seq }, shards);
                            if shard == 0 {
                                self.engine
                                    .broadcast_wire_seq(seq, payload, &mut self.actions);
                                self.dispatch(&mut messages_sent, &mut bytes_sent);
                            } else if workers[shard - 1]
                                .jobs
                                .send(ShardJob::Broadcast {
                                    seq,
                                    payload,
                                    now_ms,
                                })
                                .is_ok()
                            {
                                in_flight += 1;
                            }
                        } else {
                            self.engine.broadcast_wire(payload, &mut self.actions);
                            self.dispatch(&mut messages_sent, &mut bytes_sent);
                        }
                    }
                }
                Wake::Command(Some(Command::Restart)) => {
                    // Restarting a sharded node is unsupported (deployments clamp
                    // sharding off when restarts are scheduled); ignore rather than
                    // rebuild only the primary of a pool.
                    if workers.is_empty() {
                        self.restart();
                    }
                }
                Wake::Command(Some(Command::Shutdown)) | Wake::Command(None) => {
                    shutting_down = true;
                }
                Wake::Frame(Some(frame)) => {
                    // Malformed frames are dropped inside the engine; the driver never
                    // interprets protocol bytes itself (batch framing is transport
                    // framing, not protocol bytes).
                    if self.receives {
                        if self.batch_sends && !self.tracer.is_enabled() {
                            // Batching mode: drain the inbound backlog into one
                            // ingest/dispatch cycle (see `ingest_drained`).
                            self.ingest_drained(frame, now_ms, &workers, shards, &mut in_flight);
                        } else if frame.batch {
                            if let Some(parts) = split_batch(&frame.bytes) {
                                self.ingest_burst(
                                    frame.from,
                                    parts,
                                    now_ms,
                                    &workers,
                                    shards,
                                    &mut in_flight,
                                );
                            }
                        } else {
                            self.ingest(
                                frame.from,
                                frame.bytes,
                                now_ms,
                                &workers,
                                shards,
                                &mut in_flight,
                            );
                        }
                        self.dispatch(&mut messages_sent, &mut bytes_sent);
                    }
                }
                Wake::Frame(None) => shutting_down = true,
                Wake::Shard(Some(actions)) => {
                    in_flight = in_flight.saturating_sub(1);
                    for action in actions {
                        self.actions.push(action);
                    }
                    self.dispatch(&mut messages_sent, &mut bytes_sent);
                }
                Wake::Shard(None) => {}
                Wake::Idle => {
                    if shutting_down && in_flight == 0 {
                        break;
                    }
                }
            }
            if in_flight != in_flight_before {
                last_progress = std::time::Instant::now();
            }
            if shutting_down && in_flight == 0 && self.transport.inbound().is_empty() {
                break;
            }
            if shutting_down && in_flight > 0 && last_progress.elapsed() >= stall_window {
                break;
            }
        }
        // Wind the shard pool down: close the job queues and take each engine back for
        // the report (in_flight reached zero — so every action buffer was dispatched —
        // unless the stall backstop abandoned a dead worker's stragglers).
        let shard_engines: Vec<Box<dyn DynEngine>> = workers
            .into_iter()
            .filter_map(|w| {
                drop(w.jobs);
                w.handle.join().ok()
            })
            .collect();
        // The report's delivery log spans restarts: the durable pre-restart
        // deliveries first (their original order), then what the current engine
        // delivered — minus re-deliveries of durable ids, which no-duplication
        // across crashes suppresses. A sharded node appends each shard engine's log in
        // shard order (instances are partitioned, so the logs are disjoint; the
        // deployment-level delivery *stream* saw them in true temporal order).
        let mut deliveries = std::mem::take(&mut self.durable);
        deliveries.extend(
            self.engine
                .deliveries()
                .iter()
                .filter(|d| !self.memory.suppresses(d.id))
                .cloned(),
        );
        let mut state_bytes = self.engine.state_bytes();
        let mut gc_retired = self.retired_before + self.engine.gc_retired();
        for engine in &shard_engines {
            deliveries.extend(
                engine
                    .deliveries()
                    .iter()
                    .filter(|d| !self.memory.suppresses(d.id))
                    .cloned(),
            );
            state_bytes += engine.state_bytes();
            gc_retired += engine.gc_retired();
        }
        NodeReport {
            id,
            deliveries,
            messages_sent,
            bytes_sent,
            state_bytes,
            gc_retired,
            restarts: self.restarts,
            drops_by_cause: self.counters.drops(),
            queue_depth_peak: self.counters.queue_depth_peak(),
            decision: None,
        }
    }

    /// Routes one inbound protocol frame: to the owning shard's worker when the node is
    /// sharded and the instance hashes off the primary, inline otherwise. Frames whose
    /// instance cannot be peeked (decorator engines, malformed bytes) stay on the
    /// primary, which preserves the classic behavior exactly.
    fn ingest(
        &mut self,
        from: ProcessId,
        bytes: Bytes,
        now_ms: u64,
        workers: &[ShardWorker],
        shards: usize,
        in_flight: &mut usize,
    ) {
        if shards > 1 {
            let shard = self
                .engine
                .frame_broadcast_id(&bytes)
                .map(|bid| shard_of(bid, shards))
                .unwrap_or(0);
            if shard != 0 {
                if workers[shard - 1]
                    .jobs
                    .send(ShardJob::Frame {
                        from,
                        bytes,
                        now_ms,
                    })
                    .is_ok()
                {
                    *in_flight += 1;
                }
                return;
            }
        }
        self.engine.handle_frame(from, &bytes, &mut self.actions);
    }

    /// Routes one decoded batch frame's parts. On a sharded node the parts are grouped
    /// by owning shard and each off-primary group ships as a single [`ShardJob::Frames`]
    /// — one channel op and one worker wake-up per shard per burst, instead of one per
    /// frame. That amortization is what makes the pool pay for itself under saturation:
    /// the hand-off cost scales with the number of shards touched, not the burst size.
    fn ingest_burst(
        &mut self,
        from: ProcessId,
        parts: Vec<Bytes>,
        now_ms: u64,
        workers: &[ShardWorker],
        shards: usize,
        in_flight: &mut usize,
    ) {
        if shards <= 1 {
            for bytes in &parts {
                self.engine.handle_frame(from, bytes, &mut self.actions);
            }
            return;
        }
        let mut per_shard: Vec<Vec<(ProcessId, Bytes)>> = vec![Vec::new(); shards];
        for bytes in parts {
            self.route_part(from, bytes, shards, &mut per_shard);
        }
        self.flush_shard_groups(per_shard, now_ms, workers, in_flight);
    }

    /// Batching-mode ingest: starting from the frame that woke the loop, greedily
    /// drain the inbound queue (bounded by a fixed budget) and feed the whole backlog
    /// into **one** ingest/dispatch cycle. This is where frame batching earns its
    /// saturation headroom: per-destination outbound bursts scale with the drained
    /// backlog (so the per-op cost amortizes exactly when the node is loaded), and on
    /// a sharded node the hand-off collapses to at most one job per shard per cycle
    /// regardless of how many frames arrived. Under light load the queue is empty and
    /// the cycle degenerates to the classic frame-at-a-time path.
    fn ingest_drained(
        &mut self,
        first: Frame,
        now_ms: u64,
        workers: &[ShardWorker],
        shards: usize,
        in_flight: &mut usize,
    ) {
        /// Frames (channel messages, not batch parts) consumed per cycle, so a
        /// saturated queue cannot starve command processing or delay deliveries
        /// unboundedly.
        const DRAIN_BUDGET: usize = 128;
        let mut per_shard: Vec<Vec<(ProcessId, Bytes)>> = vec![Vec::new(); shards];
        let mut frame = first;
        let mut drained = 0usize;
        loop {
            if frame.batch {
                if let Some(parts) = split_batch(&frame.bytes) {
                    for bytes in parts {
                        self.route_part(frame.from, bytes, shards, &mut per_shard);
                    }
                }
            } else {
                self.route_part(frame.from, frame.bytes, shards, &mut per_shard);
            }
            drained += 1;
            if drained >= DRAIN_BUDGET {
                break;
            }
            match self.transport.inbound().try_recv() {
                Ok(next) => frame = next,
                Err(_) => break,
            }
        }
        self.flush_shard_groups(per_shard, now_ms, workers, in_flight);
    }

    /// Appends one decoded frame to its owning shard's group (shard 0 for unsharded
    /// nodes and for frames whose instance cannot be peeked).
    fn route_part(
        &mut self,
        from: ProcessId,
        bytes: Bytes,
        shards: usize,
        per_shard: &mut [Vec<(ProcessId, Bytes)>],
    ) {
        let shard = if shards > 1 {
            self.engine
                .frame_broadcast_id(&bytes)
                .map(|bid| shard_of(bid, shards))
                .unwrap_or(0)
        } else {
            0
        };
        per_shard[shard].push((from, bytes));
    }

    /// Runs the primary shard's group inline and ships every other non-empty group as
    /// one [`ShardJob::Frames`], bumping the in-flight counter once per job sent.
    fn flush_shard_groups(
        &mut self,
        per_shard: Vec<Vec<(ProcessId, Bytes)>>,
        now_ms: u64,
        workers: &[ShardWorker],
        in_flight: &mut usize,
    ) {
        for (shard, group) in per_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            if shard == 0 {
                for (from, bytes) in &group {
                    self.engine.handle_frame(*from, bytes, &mut self.actions);
                }
                continue;
            }
            if workers[shard - 1]
                .jobs
                .send(ShardJob::Frames {
                    parts: group,
                    now_ms,
                })
                .is_ok()
            {
                *in_flight += 1;
            }
        }
    }

    /// Executes the actions buffered by the last engine event: pre-encoded frames go to
    /// the transport (which applies the link policy and reports how many copies it put
    /// on the wire), deliveries to the shared channel. The buffer is drained in place,
    /// so the steady-state loop reuses its action buffers instead of allocating per
    /// event.
    fn dispatch(&mut self, messages_sent: &mut usize, bytes_sent: &mut usize) {
        if self.batch_sends && !self.tracer.is_enabled() {
            self.dispatch_batched(messages_sent, bytes_sent);
            return;
        }
        for action in self.actions.drain() {
            match action {
                WireAction::Send {
                    to,
                    frame,
                    wire_size,
                } => {
                    let copies = self.transport.send(to, &frame, wire_size);
                    *messages_sent += copies;
                    *bytes_sent += wire_size * copies;
                    self.counters.record_sends(copies as u64);
                    if self.tracer.is_enabled() {
                        let id = self.engine.process_id();
                        for _ in 0..copies {
                            self.tracer.emit_frame(
                                id,
                                TraceEventKind::FrameSent {
                                    to,
                                    bytes: wire_size,
                                },
                            );
                        }
                    }
                }
                WireAction::Deliver(delivery) => {
                    // A rebuilt engine may re-deliver an instance the node already
                    // delivered before its crash; the durable log suppresses the
                    // duplicate (no-duplication holds across restarts).
                    if self.memory.suppresses(delivery.id) {
                        continue;
                    }
                    let id = self.engine.process_id();
                    self.tracer.emit(
                        id,
                        delivery.id.source,
                        delivery.id.seq,
                        TraceEventKind::Delivered,
                    );
                    let _ = self.deliveries.send((id, delivery));
                }
            }
        }
    }

    /// The batched dispatch path ([`DriverOptions::batch_sends`]): the `Send` actions
    /// of one engine event are grouped by destination (first-seen destination order,
    /// original frame order within each destination — per-link FIFO is preserved, which
    /// is all the protocols assume) and each group leaves through one
    /// [`Transport::send_batch`] call. The per-destination staging and its `Vec`
    /// capacities are retained across dispatches, so this path allocates nothing per
    /// event at steady state; accounting comes from the transport's receipt and is
    /// identical to the frame-at-a-time totals.
    fn dispatch_batched(&mut self, messages_sent: &mut usize, bytes_sent: &mut usize) {
        for action in self.actions.drain() {
            match action {
                WireAction::Send {
                    to,
                    frame,
                    wire_size,
                } => {
                    let slot = match self.out_batches.iter().position(|(d, _)| *d == to) {
                        Some(i) => &mut self.out_batches[i].1,
                        None => {
                            self.out_batches.push((to, Vec::new()));
                            &mut self.out_batches.last_mut().expect("just pushed").1
                        }
                    };
                    slot.push(OutFrame::new(frame, wire_size));
                }
                WireAction::Deliver(delivery) => {
                    if self.memory.suppresses(delivery.id) {
                        continue;
                    }
                    let id = self.engine.process_id();
                    self.tracer.emit(
                        id,
                        delivery.id.source,
                        delivery.id.seq,
                        TraceEventKind::Delivered,
                    );
                    let _ = self.deliveries.send((id, delivery));
                }
            }
        }
        for i in 0..self.out_batches.len() {
            let (to, frames) = &mut self.out_batches[i];
            if frames.is_empty() {
                continue;
            }
            let receipt = self.transport.send_batch(*to, frames);
            frames.clear();
            *messages_sent += receipt.copies;
            *bytes_sent += receipt.bytes;
            self.counters.record_sends(receipt.copies as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::build_links;
    use crate::transport::ChannelTransport;
    use brb_core::config::Config;
    use brb_core::stack::StackSpec;
    use brb_graph::generate;
    use crossbeam::channel::unbounded;

    type MiniDeployment = (
        Vec<Sender<Command>>,
        Receiver<(ProcessId, Delivery)>,
        Vec<std::thread::JoinHandle<NodeReport>>,
    );

    /// Spawns one driver per process of `graph` over channel links and returns the
    /// command senders, the delivery receiver and the join handles — a miniature
    /// deployment, built from nothing but this crate's public API.
    fn spawn_drivers(
        graph: &brb_graph::Graph,
        config: Config,
        options: &DriverOptions,
    ) -> MiniDeployment {
        let n = graph.node_count();
        let (mailboxes, senders) = build_links(n, &graph.edges());
        let (delivery_tx, delivery_rx) = unbounded();
        let mut commands = Vec::new();
        let mut handles = Vec::new();
        for (id, (mailbox, links)) in mailboxes.into_iter().zip(senders).enumerate() {
            let (cmd_tx, cmd_rx) = unbounded();
            commands.push(cmd_tx);
            let driver = NodeDriver::new(
                StackSpec::Bd.build(&config, graph, id),
                Box::new(ChannelTransport::new(mailbox, links)),
                cmd_rx,
                delivery_tx.clone(),
                options,
            );
            handles.push(std::thread::spawn(move || driver.run()));
        }
        (commands, delivery_rx, handles)
    }

    fn shutdown(
        commands: &[Sender<Command>],
        handles: Vec<std::thread::JoinHandle<NodeReport>>,
    ) -> Vec<NodeReport> {
        for tx in commands {
            let _ = tx.send(Command::Shutdown);
        }
        let mut reports: Vec<NodeReport> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        reports.sort_by_key(|r| r.id);
        reports
    }

    #[test]
    fn drivers_complete_a_broadcast_over_channel_links() {
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let options = DriverOptions {
            idle_shutdown: Duration::from_millis(100),
            ..DriverOptions::default()
        };
        let (commands, deliveries, handles) = spawn_drivers(&graph, config, &options);
        commands[0]
            .send(Command::Broadcast(Payload::from("driver hello")))
            .unwrap();
        for _ in 0..10 {
            deliveries.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let reports = shutdown(&commands, handles);
        assert!(reports.iter().all(|r| r.deliveries.len() == 1));
        assert!(reports.iter().map(|r| r.messages_sent).sum::<usize>() > 0);
    }

    #[test]
    fn crash_behavior_makes_a_node_deaf_and_mute() {
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let options = DriverOptions {
            idle_shutdown: Duration::from_millis(100),
            ..DriverOptions::default()
        }
        .with_behaviors(vec![(5, Behavior::Crash)]);
        let (commands, deliveries, handles) = spawn_drivers(&graph, config, &options);
        commands[0]
            .send(Command::Broadcast(Payload::from("despite the crash")))
            .unwrap();
        for _ in 0..9 {
            deliveries.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let reports = shutdown(&commands, handles);
        assert_eq!(
            reports[5].deliveries.len(),
            0,
            "crashed node delivers nothing"
        );
        assert_eq!(reports[5].messages_sent, 0, "crashed node sends nothing");
        for r in reports.iter().filter(|r| r.id != 5) {
            assert_eq!(r.deliveries.len(), 1, "process {} must deliver", r.id);
        }
    }

    #[test]
    fn batched_dispatch_delivers_and_accounts_like_the_classic_path() {
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let options = DriverOptions {
            idle_shutdown: Duration::from_millis(100),
            ..DriverOptions::default()
        }
        .with_batching();
        let (commands, deliveries, handles) = spawn_drivers(&graph, config, &options);
        commands[0]
            .send(Command::Broadcast(Payload::from("coalesced hello")))
            .unwrap();
        for _ in 0..10 {
            deliveries.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let reports = shutdown(&commands, handles);
        assert!(reports.iter().all(|r| r.deliveries.len() == 1));
        // Accounting flows from the transport receipts: a BD broadcast on the Figure 1
        // graph moves a known-positive number of frames and bytes.
        assert!(reports.iter().map(|r| r.messages_sent).sum::<usize>() > 0);
        assert!(reports.iter().map(|r| r.bytes_sent).sum::<usize>() > 0);
    }

    #[test]
    fn sharded_drivers_deliver_every_instance_exactly_once() {
        // Three concurrent broadcasts from different sources, instances partitioned
        // across 3 engines per node: every process must deliver all three exactly once
        // (frames of one instance always reach its owning shard).
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let options = DriverOptions {
            idle_shutdown: Duration::from_millis(100),
            ..DriverOptions::default()
        }
        .with_batching();
        let n = graph.node_count();
        let (mailboxes, senders) = build_links(n, &graph.edges());
        let (delivery_tx, delivery_rx) = unbounded();
        let mut commands = Vec::new();
        let mut handles = Vec::new();
        for (id, (mailbox, links)) in mailboxes.into_iter().zip(senders).enumerate() {
            let (cmd_tx, cmd_rx) = unbounded();
            commands.push(cmd_tx);
            let extras = (1..3)
                .map(|_| StackSpec::Bd.build(&config, &graph, id))
                .collect();
            let driver = NodeDriver::new(
                StackSpec::Bd.build(&config, &graph, id),
                Box::new(ChannelTransport::new(mailbox, links)),
                cmd_rx,
                delivery_tx.clone(),
                &options,
            )
            .with_shard_engines(extras);
            handles.push(std::thread::spawn(move || driver.run()));
        }
        for source in [0usize, 3, 7] {
            commands[source]
                .send(Command::Broadcast(Payload::from(
                    format!("from {source}").as_str(),
                )))
                .unwrap();
        }
        for _ in 0..30 {
            delivery_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        let reports = shutdown(&commands, handles);
        for r in &reports {
            assert_eq!(r.deliveries.len(), 3, "process {} delivery count", r.id);
            let mut ids: Vec<_> = r.deliveries.iter().map(|d| d.id).collect();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), 3, "process {} no duplicates", r.id);
        }
    }

    #[test]
    fn shard_hash_is_deterministic_and_spreads_instances() {
        let mut hits = vec![0usize; 4];
        for source in 0..8 {
            for seq in 0..32 {
                let id = BroadcastId::new(source, seq);
                let shard = shard_of(id, 4);
                assert_eq!(shard, shard_of(id, 4), "same id, same shard");
                hits[shard] += 1;
            }
        }
        assert!(
            hits.iter().all(|&h| h > 0),
            "all shards take work: {hits:?}"
        );
    }

    #[test]
    fn behavior_of_resolves_the_last_assignment() {
        let options = DriverOptions::default()
            .with_behaviors(vec![(2, Behavior::Crash), (2, Behavior::Replayer)]);
        assert_eq!(options.behavior_of(2), Behavior::Replayer);
        assert_eq!(options.behavior_of(0), Behavior::Correct);
    }

    #[test]
    fn legacy_delay_field_wins_over_link_delay() {
        let options = DriverOptions {
            delay: Some((Duration::from_millis(1), Duration::ZERO)),
            ..DriverOptions::default()
        }
        .with_link_delay(LinkDelay::Scaled {
            model: brb_sim::DelayModel::synchronous(),
            scale: 1.0,
        });
        assert_eq!(
            options.policy_of(0).delay,
            LinkDelay::MeanJitter {
                mean: Duration::from_millis(1),
                jitter: Duration::ZERO
            }
        );
    }

    #[test]
    fn report_accessors() {
        let report = DeploymentReport {
            nodes: vec![
                NodeReport {
                    id: 0,
                    deliveries: vec![],
                    messages_sent: 2,
                    bytes_sent: 10,
                    state_bytes: 0,
                    gc_retired: 0,
                    restarts: 0,
                    drops_by_cause: DropCounts::new(),
                    queue_depth_peak: 0,
                    decision: None,
                },
                NodeReport {
                    id: 1,
                    deliveries: vec![],
                    messages_sent: 3,
                    bytes_sent: 20,
                    state_bytes: 0,
                    gc_retired: 0,
                    restarts: 0,
                    drops_by_cause: DropCounts::new(),
                    queue_depth_peak: 0,
                    decision: None,
                },
            ],
        };
        assert_eq!(report.total_messages(), 5);
        assert_eq!(report.total_bytes(), 30);
        assert!(!report.all_delivered(&[0, 1], 1));
        assert!(report.all_delivered(&[0, 1], 0));
    }
}
