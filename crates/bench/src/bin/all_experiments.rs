//! Runs every experiment harness in sequence (Table 1, Figs. 4–10, memory) and prints all
//! results — the one-stop reproduction of the paper's evaluation section.
//!
//! Usage: `cargo run --release -p brb-bench --bin all_experiments [-- --quick] [-- --async]`

use brb_bench::{async_from_args, figures, table1, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let asynchronous = async_from_args(&args);

    println!("==============================================================");
    table1::run_table1(scale, asynchronous);
    println!("==============================================================");
    figures::run_fig4(scale, asynchronous);
    println!("==============================================================");
    figures::run_fig5(scale, asynchronous);
    println!("==============================================================");
    figures::run_fig6(scale, asynchronous);
    println!("==============================================================");
    figures::run_fig7_to_10(scale, asynchronous);
    println!("==============================================================");
    figures::run_memory(scale);
}
