//! Umbrella crate re-exporting the PBRB reproduction crates.
//!
//! See the individual crates for details:
//! [`brb_core`] (protocols), [`brb_graph`] (topologies), [`brb_consensus`] (binary
//! Byzantine consensus over BRB), [`brb_sim`] (discrete-event simulator),
//! [`brb_transport`] (the shared live-deployment node driver and its fault/delay link
//! decorators), [`brb_runtime`] (threaded deployment), [`brb_stats`] (statistics) and
//! [`brb_workload`] (multi-broadcast traffic generation).
#![forbid(unsafe_code)]

pub use brb_consensus as consensus;
pub use brb_core as core;
pub use brb_graph as graph;
pub use brb_runtime as runtime;
pub use brb_sim as sim;
pub use brb_stats as stats;
pub use brb_transport as transport;
pub use brb_workload as workload;
