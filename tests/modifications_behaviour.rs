//! Integration tests of the MBD modifications' observable behaviour on whole-system runs:
//! every individual modification still provides BRB, and the headline bandwidth/latency
//! trends of the paper hold qualitatively on small topologies.

use brb_core::config::Config;
use brb_core::stack::StackSpec;
use brb_core::types::{BroadcastId, Payload};
use brb_core::BdProcess;
use brb_graph::generate;
use brb_sim::{run_experiment_on_graph, DelayModel, ExperimentParams, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn graph_20_7() -> brb_graph::Graph {
    let mut rng = StdRng::seed_from_u64(77);
    generate::random_regular_connected(20, 7, 7, &mut rng).unwrap()
}

fn run(
    config: Config,
    graph: &brb_graph::Graph,
    payload_size: usize,
    delay: DelayModel,
) -> brb_sim::ExperimentResult {
    let params = ExperimentParams {
        n: graph.node_count(),
        connectivity: 7,
        f: 3,
        crashed: 0,
        payload_size,
        config,
        stack: StackSpec::Bd,
        delay,
        seed: 13,
        workload: None,
        behaviors: Vec::new(),
        churn: None,
        consensus: None,
    };
    run_experiment_on_graph(&params, graph)
}

#[test]
fn every_single_modification_preserves_brb_on_a_20_node_graph() {
    let graph = graph_20_7();
    let (n, f) = (20, 3);
    for i in 2..=12u8 {
        let config = Config::bdopt_mbd1(n, f).with_mbd(&[i]);
        let result = run(config, &graph, 1024, DelayModel::synchronous());
        assert!(result.complete(), "MBD.{i} broke delivery");
    }
}

#[test]
fn mbd1_byte_reduction_matches_paper_magnitude() {
    // Table 1 reports MBD.1 reducing network consumption by 97.6–98% with 1 KiB payloads.
    // On a 20-node, 7-connected graph the reduction is of the same order (the exact value
    // depends on N and k).
    let graph = graph_20_7();
    let base = run(
        Config::bdopt(20, 3),
        &graph,
        1024,
        DelayModel::synchronous(),
    );
    let opt = run(
        Config::bdopt_mbd1(20, 3),
        &graph,
        1024,
        DelayModel::synchronous(),
    );
    assert!(base.complete() && opt.complete());
    let reduction = 1.0 - opt.bytes as f64 / base.bytes as f64;
    assert!(
        reduction > 0.80,
        "MBD.1 should remove most of the payload bytes, got {:.1}% reduction",
        reduction * 100.0
    );
}

#[test]
fn mbd1_reduction_is_smaller_for_small_payloads() {
    // With 16 B payloads Table 1 reports a (much) smaller impact of MBD.1 than with 1 KiB.
    let graph = graph_20_7();
    let base16 = run(Config::bdopt(20, 3), &graph, 16, DelayModel::synchronous());
    let opt16 = run(
        Config::bdopt_mbd1(20, 3),
        &graph,
        16,
        DelayModel::synchronous(),
    );
    let base1k = run(
        Config::bdopt(20, 3),
        &graph,
        1024,
        DelayModel::synchronous(),
    );
    let opt1k = run(
        Config::bdopt_mbd1(20, 3),
        &graph,
        1024,
        DelayModel::synchronous(),
    );
    let red16 = 1.0 - opt16.bytes as f64 / base16.bytes as f64;
    let red1k = 1.0 - opt1k.bytes as f64 / base1k.bytes as f64;
    assert!(
        red1k > red16,
        "large payloads benefit more from MBD.1: 16 B -> {red16:.2}, 1 KiB -> {red1k:.2}"
    );
}

#[test]
fn bandwidth_preset_beats_mbd1_alone_on_bytes() {
    let graph = graph_20_7();
    let base = run(
        Config::bdopt_mbd1(20, 3),
        &graph,
        1024,
        DelayModel::synchronous(),
    );
    let bdw = run(
        Config::bandwidth_preset(20, 3),
        &graph,
        1024,
        DelayModel::synchronous(),
    );
    assert!(
        bdw.bytes < base.bytes,
        "bdw preset: {} vs {}",
        bdw.bytes,
        base.bytes
    );
}

#[test]
fn mbd11_increases_latency_but_decreases_bytes() {
    // Sec. 6.6 / Fig. 4: MBD.11 drastically decreases the number of messages but tends to
    // increase latency because the designated Echo/Ready creators may be far apart.
    let graph = graph_20_7();
    let base = run(
        Config::bdopt_mbd1(20, 3),
        &graph,
        1024,
        DelayModel::synchronous(),
    );
    let with11 = run(
        Config::bdopt_mbd1(20, 3).with_mbd(&[11]),
        &graph,
        1024,
        DelayModel::synchronous(),
    );
    assert!(with11.bytes < base.bytes);
    assert!(
        with11.latency_ms.unwrap() >= base.latency_ms.unwrap(),
        "MBD.11 should not reduce latency: {:?} vs {:?}",
        with11.latency_ms,
        base.latency_ms
    );
}

#[test]
fn asynchronous_networks_still_deliver_with_all_modifications() {
    let graph = graph_20_7();
    let config = Config::bdopt(20, 3).with_mbd(&(1..=12).collect::<Vec<_>>());
    let result = run(config, &graph, 1024, DelayModel::asynchronous());
    assert!(result.complete());
}

#[test]
fn latency_scales_with_hop_count_on_a_ring_like_topology() {
    // On a sparse 3-connected graph latency is a multiple of the 50 ms hop delay and
    // bounded by (diameter + 2 phases) hops.
    let graph = generate::figure1_example();
    let config = Config::bdopt_mbd1(10, 1);
    let processes: Vec<BdProcess> = (0..10)
        .map(|i| BdProcess::new(i, config, graph.neighbors_vec(i)))
        .collect();
    let mut sim = Simulation::new(processes, DelayModel::synchronous(), 4);
    sim.broadcast(0, Payload::filled(0, 16));
    sim.run_to_quiescence();
    let latency = sim
        .metrics()
        .latency(BroadcastId::new(0, 0), &sim.correct_processes())
        .unwrap();
    assert_eq!(
        latency.as_micros() % 50_000,
        0,
        "latency is a multiple of the hop delay"
    );
    assert!(
        latency.as_millis_f64() >= 150.0,
        "at least Send+Echo+Ready hops"
    );
    assert!(
        latency.as_millis_f64() <= 600.0,
        "bounded by a few diameters"
    );
}
