//! The phase-stepped binary consensus state machine.
//!
//! One [`ConsensusNode`] holds the pure protocol logic — no I/O, no BRB: it consumes
//! delivered [`RoundMsg`]s and harness [`ControlOp`]s, and returns the round-messages
//! to broadcast next. [`crate::ConsensusEngine`] owns the mapping onto BRB instances.
//!
//! The round structure is the safe binary consensus of Mostéfaoui–Moumen–Raynal (the
//! core of DBFT), phase-stepped so that the harness closes each phase only at global
//! BRB quiescence:
//!
//! 1. **BV phase** — every process BV-broadcasts `EST(r, est)`. Monotone in-round
//!    rules: a value seen from `f + 1` distinct senders is echoed (so it originated
//!    at a correct process), and a value seen from `2f + 1` distinct senders enters
//!    `bin_values` (so every correct process eventually has it).
//! 2. **AUX phase** (on [`ControlOp::CloseBv`]) — broadcast a single `AUX(r, w)` with
//!    `w = est` if `est ∈ bin_values`, else the smallest member of `bin_values`.
//! 3. **Decide** (on [`ControlOp::CloseRound`]) — over the *validated* `AUX` votes
//!    (vote value must be in the receiver's own `bin_values`, which defeats a
//!    consensus-level value-flipper) from at least `n − f` distinct senders: if all
//!    vote `b`, adopt `est = b` and **decide** `b` when the common coin of the round
//!    equals `b`; if both values appear, adopt `est = coin(r)`. Then enter round
//!    `r + 1` and BV-broadcast the new estimate. Decided processes keep
//!    participating so the others can finish.
//!
//! Because every input is a BRB delivery and phases close only at global quiescence,
//! all correct processes evaluate each close over *identical* delivery sets
//! (BRB-Totality): their `bin_values`, validated vote multisets and therefore their
//! decisions are lockstep-identical — the same decision value in the same round on
//! every backend, which is what `tests/consensus_cross_backend.rs` pins.

use std::collections::{BTreeMap, BTreeSet};

use brb_core::types::ProcessId;

use crate::codec::{ControlOp, RoundMsg};
use crate::{common_coin, Decision};

/// Per-round bookkeeping (kept per round until the node is dropped; rounds are few).
#[derive(Debug, Default)]
struct RoundState {
    /// Distinct senders seen for `EST(r, v)`, per value `v`.
    est_senders: [BTreeSet<ProcessId>; 2],
    /// Slots already broadcast by this node (EST 0, EST 1, AUX) — guards against
    /// double-minting the same BRB instance id.
    sent: [bool; 3],
    /// Values with `2f + 1` distinct `EST` senders (the BV-broadcast output set).
    bin_values: [bool; 2],
    /// First `AUX` vote seen per sender (BRB-Agreement gives at most one payload per
    /// instance, so a later different vote can only be a replay and is ignored).
    aux: BTreeMap<ProcessId, u8>,
}

/// Pure state machine for one process's binary consensus instance.
#[derive(Debug)]
pub struct ConsensusNode {
    n: usize,
    f: usize,
    /// The value this process proposes in round 0.
    proposal: u8,
    /// Consensus-level Byzantine value-flipper: every outgoing round-message carries
    /// the complement of what the honest rules dictate (consistently in payload and
    /// instance slot, so the BRB layer below remains honest and delivers everywhere).
    flip: bool,
    coin_seed: u64,
    max_rounds: u32,
    round: u32,
    est: u8,
    started: bool,
    decided: Option<Decision>,
    rounds: BTreeMap<u32, RoundState>,
}

impl ConsensusNode {
    /// Creates a node proposing `proposal`, flipping outgoing values if `flip`.
    pub fn new(
        n: usize,
        f: usize,
        proposal: u8,
        flip: bool,
        coin_seed: u64,
        max_rounds: u32,
    ) -> Self {
        Self {
            n,
            f,
            proposal: proposal & 1,
            flip,
            coin_seed,
            max_rounds,
            round: 0,
            est: proposal & 1,
            started: false,
            decided: None,
            rounds: BTreeMap::new(),
        }
    }

    /// The decision reached so far, if any.
    pub fn decided(&self) -> Option<Decision> {
        self.decided
    }

    /// The round this node is currently in.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// The current estimate.
    pub fn est(&self) -> u8 {
        self.est
    }

    /// Rough number of bytes of consensus state held (adds to the engine's proxy).
    pub fn state_bytes(&self) -> usize {
        self.rounds
            .values()
            .map(|r| {
                64 + r.aux.len() * 16 + r.est_senders.iter().map(|s| s.len() * 8).sum::<usize>()
            })
            .sum::<usize>()
            + std::mem::size_of::<Self>()
    }

    /// Applies a harness control operation, returning the round-messages to broadcast.
    pub fn on_control(&mut self, op: ControlOp) -> Vec<RoundMsg> {
        match op {
            ControlOp::Propose => {
                if self.started {
                    return Vec::new();
                }
                self.started = true;
                self.est = self.proposal;
                self.emit_est(0, self.proposal)
            }
            ControlOp::CloseBv(round) => {
                if round != self.round || !self.started {
                    return Vec::new();
                }
                let state = self.rounds.entry(round).or_default();
                if state.sent[2] {
                    return Vec::new();
                }
                let est = self.est as usize;
                let vote = if state.bin_values[est] {
                    self.est
                } else if state.bin_values[0] {
                    0
                } else if state.bin_values[1] {
                    1
                } else {
                    // Unreachable at a correctly-timed close (quiescence guarantees a
                    // non-empty bin_values); fall back to the estimate defensively.
                    self.est
                };
                state.sent[2] = true;
                vec![self.outgoing(RoundMsg::Aux { round, value: vote })]
            }
            ControlOp::CloseRound(round) => {
                if round != self.round || !self.started {
                    return Vec::new();
                }
                let state = self.rounds.entry(round).or_default();
                let mut values = BTreeSet::new();
                let mut validated = 0usize;
                for (&_sender, &v) in &state.aux {
                    if state.bin_values[v as usize] {
                        validated += 1;
                        values.insert(v);
                    }
                }
                if validated < self.n - self.f {
                    // Close arrived before the AUX fixpoint; a correctly-timed close
                    // (issued at quiescence) always sees >= n - f validated votes.
                    return Vec::new();
                }
                let coin = common_coin(self.coin_seed, round);
                if values.len() == 1 {
                    let b = *values.iter().next().expect("non-empty");
                    self.est = b;
                    if b == coin && self.decided.is_none() {
                        self.decided = Some(Decision { value: b, round });
                    }
                } else {
                    self.est = coin;
                }
                self.round = round + 1;
                if self.round >= self.max_rounds {
                    return Vec::new();
                }
                self.emit_est(self.round, self.est)
            }
        }
    }

    /// Accounts one BRB delivery, returning the round-messages to broadcast (echoes).
    pub fn on_delivery(&mut self, sender: ProcessId, msg: RoundMsg) -> Vec<RoundMsg> {
        match msg {
            RoundMsg::Est { round, value } => {
                let f = self.f;
                let state = self.rounds.entry(round).or_default();
                state.est_senders[value as usize].insert(sender);
                let senders = state.est_senders[value as usize].len();
                // `> 2f` / `> f` are the paper's `>= 2f + 1` / `>= f + 1` thresholds.
                if senders > 2 * f {
                    state.bin_values[value as usize] = true;
                }
                if senders > f && !state.sent[value as usize] {
                    // f + 1 distinct senders means at least one correct process
                    // estimates `value`: echo it so every correct process converges.
                    return self.emit_est(round, value);
                }
                Vec::new()
            }
            RoundMsg::Aux { round, value } => {
                let state = self.rounds.entry(round).or_default();
                state.aux.entry(sender).or_insert(value);
                Vec::new()
            }
        }
    }

    /// Emits `EST(round, value)` once, marking the slot sent under the *honest* value
    /// (a flipper swaps the wire value, so its two honest slots map onto the two wire
    /// slots bijectively and no instance id is ever minted twice).
    fn emit_est(&mut self, round: u32, value: u8) -> Vec<RoundMsg> {
        let state = self.rounds.entry(round).or_default();
        if state.sent[value as usize] {
            return Vec::new();
        }
        state.sent[value as usize] = true;
        vec![self.outgoing(RoundMsg::Est { round, value })]
    }

    /// Applies the value-flipper to an outgoing message.
    fn outgoing(&self, msg: RoundMsg) -> RoundMsg {
        if !self.flip {
            return msg;
        }
        match msg {
            RoundMsg::Est { round, value } => RoundMsg::Est {
                round,
                value: 1 - value,
            },
            RoundMsg::Aux { round, value } => RoundMsg::Aux {
                round,
                value: 1 - value,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(round: u32, value: u8) -> RoundMsg {
        RoundMsg::Est { round, value }
    }

    #[test]
    fn echoes_on_f_plus_one_and_fills_bin_values_on_two_f_plus_one() {
        // n = 7, f = 2: echo at 3 distinct senders, bin_values at 5.
        let mut node = ConsensusNode::new(7, 2, 0, false, 0, 32);
        assert_eq!(node.on_control(ControlOp::Propose), vec![est(0, 0)]);
        assert!(node.on_delivery(1, est(0, 1)).is_empty());
        assert!(node.on_delivery(2, est(0, 1)).is_empty());
        // Third distinct sender of EST(0, 1) triggers the echo.
        assert_eq!(node.on_delivery(3, est(0, 1)), vec![est(0, 1)]);
        // Echo is emitted once, even if more senders arrive.
        assert!(node.on_delivery(4, est(0, 1)).is_empty());
        assert!(node.on_delivery(5, est(0, 1)).is_empty());
        // Five distinct senders: CloseBv now votes for 1 (est 0 never made it).
        assert_eq!(
            node.on_control(ControlOp::CloseBv(0)),
            vec![RoundMsg::Aux { round: 0, value: 1 }]
        );
    }

    #[test]
    fn unanimous_validated_votes_decide_when_the_coin_agrees() {
        let n = 4;
        let f = 1;
        let seed = 9;
        let mut node = ConsensusNode::new(n, f, 1, false, seed, 32);
        node.on_control(ControlOp::Propose);
        let mut round = 0;
        while node.decided().is_none() {
            for s in 0..n {
                node.on_delivery(s, est(round, 1));
            }
            node.on_control(ControlOp::CloseBv(round));
            for s in 0..n {
                node.on_delivery(s, RoundMsg::Aux { round, value: 1 });
            }
            node.on_control(ControlOp::CloseRound(round));
            assert_eq!(
                node.est(),
                1,
                "validity: est never leaves the unanimous value"
            );
            round += 1;
            assert!(round < 32, "coin must eventually agree");
        }
        let decision = node.decided().expect("decided");
        assert_eq!(decision.value, 1);
        assert_eq!(common_coin(seed, decision.round), 1);
    }

    #[test]
    fn flipper_votes_are_invalidated_by_the_bin_values_check() {
        // Receiver with bin_values = {1} only: a flipped AUX(0) must not count.
        let n = 4;
        let f = 1;
        let mut node = ConsensusNode::new(n, f, 1, false, 0, 32);
        node.on_control(ControlOp::Propose);
        for s in 0..n {
            node.on_delivery(s, est(0, 1));
        }
        node.on_control(ControlOp::CloseBv(0));
        // Three honest votes for 1, one flipped vote for 0 (0 is not in bin_values).
        for s in 0..3 {
            node.on_delivery(s, RoundMsg::Aux { round: 0, value: 1 });
        }
        node.on_delivery(3, RoundMsg::Aux { round: 0, value: 0 });
        node.on_control(ControlOp::CloseRound(0));
        // The flipped vote was discarded: the validated set is {1} from 3 = n - f
        // senders, so est stays 1 and the round advances.
        assert_eq!(node.est(), 1);
        assert_eq!(node.round(), 1);
    }

    #[test]
    fn flipper_outgoing_values_are_complemented_in_payload_and_slot() {
        let mut node = ConsensusNode::new(4, 1, 0, true, 0, 32);
        let out = node.on_control(ControlOp::Propose);
        assert_eq!(out, vec![est(0, 1)], "flipper proposes the complement");
        // Honest echo of value 1 leaves the flipper's wire as value 0: the two honest
        // slots map onto the two wire slots without collision.
        node.on_delivery(1, est(0, 1));
        let out = node.on_delivery(2, est(0, 1));
        assert_eq!(
            out,
            vec![est(0, 0)],
            "echo of 1 leaves the flipper flipped to 0"
        );
    }

    #[test]
    fn split_validated_votes_adopt_the_coin() {
        let n = 4;
        let f = 1;
        let seed = 3;
        let mut node = ConsensusNode::new(n, f, 0, false, seed, 32);
        node.on_control(ControlOp::Propose);
        for s in 0..n {
            node.on_delivery(s, est(0, s as u8 & 1));
            node.on_delivery((s + 1) % n, est(0, s as u8 & 1));
            node.on_delivery((s + 2) % n, est(0, s as u8 & 1));
        }
        node.on_control(ControlOp::CloseBv(0));
        for s in 0..n {
            node.on_delivery(
                s,
                RoundMsg::Aux {
                    round: 0,
                    value: s as u8 & 1,
                },
            );
        }
        node.on_control(ControlOp::CloseRound(0));
        assert_eq!(
            node.est(),
            common_coin(seed, 0),
            "both values seen: adopt the coin"
        );
        assert!(node.decided().is_none());
    }
}
