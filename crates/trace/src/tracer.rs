//! The cheap, cloneable handle engines and hosts emit through.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::event::{Backend, NodeId, TraceEvent, TraceEventKind};
use crate::sink::TraceSink;

/// Event timestamp source. Virtual in the simulator (the scheduler advances the
/// shared counter before dispatching), wall clock in the live backends (shared
/// epoch per deployment so node tracks align).
#[derive(Clone, Debug)]
pub enum Clock {
    /// Shared virtual-microsecond counter, owned by the simulator.
    Virtual(Arc<AtomicU64>),
    /// Wall clock measured from a deployment-wide epoch.
    Wall(Instant),
}

impl Clock {
    /// A fresh virtual clock starting at zero.
    pub fn virtual_clock() -> (Clock, Arc<AtomicU64>) {
        let counter = Arc::new(AtomicU64::new(0));
        (Clock::Virtual(counter.clone()), counter)
    }

    /// A wall clock whose zero is `now`.
    pub fn wall_from_now() -> Clock {
        Clock::Wall(Instant::now())
    }

    /// Current timestamp in microseconds.
    pub fn now_us(&self) -> u64 {
        match self {
            Clock::Virtual(counter) => counter.load(Ordering::Relaxed),
            Clock::Wall(epoch) => u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
        }
    }
}

struct Shared {
    sink: Arc<dyn TraceSink>,
    clock: Clock,
    backend: Backend,
}

/// Handle through which events are emitted. Cloning is an `Option<Arc>` copy;
/// a disabled tracer makes [`Tracer::emit`] a single branch, so engines can
/// hold one unconditionally without perturbing the untraced hot path.
#[derive(Clone, Default)]
pub struct Tracer {
    shared: Option<Arc<Shared>>,
}

impl Tracer {
    /// A tracer that drops everything (the default for every engine).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// A live tracer stamping events with `backend` and `clock` timestamps.
    pub fn new(backend: Backend, clock: Clock, sink: Arc<dyn TraceSink>) -> Self {
        Self {
            shared: Some(Arc::new(Shared {
                sink,
                clock,
                backend,
            })),
        }
    }

    /// Whether a sink is attached.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The backend tag, when enabled.
    pub fn backend(&self) -> Option<Backend> {
        self.shared.as_ref().map(|s| s.backend)
    }

    /// Emit one event for the instance `(source, seq)` observed at `node`.
    /// No-op (one branch) when disabled.
    #[inline]
    pub fn emit(&self, node: NodeId, source: NodeId, seq: u32, kind: TraceEventKind) {
        if let Some(shared) = &self.shared {
            shared.sink.record(TraceEvent {
                backend: shared.backend,
                node,
                source,
                seq,
                time_us: shared.clock.now_us(),
                kind,
            });
        }
    }

    /// Emit an event not tied to a broadcast instance (frame/queue events at
    /// layers that cannot see ids): stamps it `(node, 0)`.
    #[inline]
    pub fn emit_frame(&self, node: NodeId, kind: TraceEventKind) {
        self.emit(node, node, 0, kind);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.shared {
            Some(shared) => f
                .debug_struct("Tracer")
                .field("backend", &shared.backend)
                .finish_non_exhaustive(),
            None => f.write_str("Tracer(disabled)"),
        }
    }
}
