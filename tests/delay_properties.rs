//! Property-based tests of the link-delay models (`brb_sim::delay::DelayModel`).
//!
//! The discrete-event engine assumes three things from every delay model, whatever its
//! parameters:
//!
//! * sampled delays are **non-negative** (virtual time never flows backwards) and respect
//!   the model's configured lower/upper bounds;
//! * **fixed-seed streams are reproducible** — two equally seeded RNGs draw the exact same
//!   delay sequence, the bedrock of the determinism guarantees of the sweep engine;
//! * the reported `mean_micros` is consistent with the model's parameters.

use brb_sim::delay::DelayModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy over all three delay-model families with bounded parameters.
fn delay_model_strategy() -> impl Strategy<Value = DelayModel> {
    prop_oneof![
        (0u64..=10_000_000).prop_map(|micros| DelayModel::Constant { micros }),
        (1u64..=1_000_000, 0u64..=1_000_000, 0u64..=100_000).prop_map(
            |(mean_micros, std_dev_micros, min_micros)| DelayModel::Normal {
                mean_micros,
                std_dev_micros,
                min_micros,
            }
        ),
        (0u64..=1_000_000, 0u64..=1_000_000).prop_map(|(min_micros, max_micros)| {
            DelayModel::Uniform {
                min_micros,
                max_micros,
            }
        }),
    ]
}

proptest! {
    // Fully pinned runner configuration: the case count, the base RNG seed and the
    // failure-persistence file are all committed, so this suite generates the same 64
    // inputs on every machine (see tests/README.md).
    #![proptest_config(ProptestConfig::with_cases(64)
        .with_rng_seed(0xB0B0_0005_DE1A_0005)
        .with_failure_persistence(FileFailurePersistence::SourceParallel("proptest-regressions")))]

    /// Every sampled delay lies within the bounds the model's parameters promise.
    #[test]
    fn sampled_delays_respect_configured_bounds((model, seed) in (delay_model_strategy(), any::<u64>())) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let delay = model.sample(&mut rng).as_micros();
            match model {
                DelayModel::Constant { micros } => prop_assert_eq!(delay, micros),
                DelayModel::Normal { min_micros, .. } => {
                    prop_assert!(delay >= min_micros, "normal delay {} under floor {}", delay, min_micros);
                }
                DelayModel::Uniform { min_micros, max_micros } => {
                    let (lo, hi) = (min_micros.min(max_micros), min_micros.max(max_micros));
                    prop_assert!((lo..=hi).contains(&delay), "uniform delay {} outside [{}, {}]", delay, lo, hi);
                }
            }
        }
    }

    /// Equal seeds draw equal delay streams; the stream survives interleaved model reuse.
    #[test]
    fn fixed_seed_streams_are_reproducible((model, seed) in (delay_model_strategy(), any::<u64>())) {
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let stream_a: Vec<u64> = (0..32).map(|_| model.sample(&mut a).as_micros()).collect();
        let stream_b: Vec<u64> = (0..32).map(|_| model.sample(&mut b).as_micros()).collect();
        prop_assert_eq!(stream_a, stream_b);
    }

    /// `mean_micros` is consistent with the parameters for every family.
    #[test]
    fn reported_mean_matches_parameters(model in delay_model_strategy()) {
        let mean = model.mean_micros();
        match model {
            DelayModel::Constant { micros } => prop_assert_eq!(mean, micros),
            DelayModel::Normal { mean_micros, .. } => prop_assert_eq!(mean, mean_micros),
            DelayModel::Uniform { min_micros, max_micros } => {
                prop_assert_eq!(mean, (min_micros + max_micros) / 2);
            }
        }
    }

    /// The synchronous/asynchronous presets keep the paper's 50 ms average and the
    /// asynchronous floor of 1 ms, for any seed.
    #[test]
    fn paper_presets_keep_their_contract(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert_eq!(DelayModel::synchronous().sample(&mut rng).as_micros(), 50_000);
        let asynchronous = DelayModel::asynchronous();
        for _ in 0..16 {
            prop_assert!(asynchronous.sample(&mut rng).as_micros() >= 1_000);
        }
        prop_assert_eq!(asynchronous.mean_micros(), 50_000);
    }
}
