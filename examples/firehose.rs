//! One workload spec, three backends: the `brb-workload` traffic engine end to end.
//!
//! Expands a Poisson/Zipf [`WorkloadSpec`] into its deterministic injection schedule and
//! drives the *same* schedule through the discrete-event simulator, the channel runtime
//! and the TCP deployment, printing per-backend delivery totals plus the simulator's
//! throughput and latency percentiles (the deployments run unpaced, so their wall-clock
//! numbers are not comparable and only the delivery sets are checked).
//!
//! Run with: `cargo run --release --example firehose`

use std::time::Duration;

use brb_core::config::Config;
use brb_core::stack::{DynStack, StackSpec};
use brb_graph::generate;
use brb_net::run_tcp_workload;
use brb_runtime::deployment::run_threaded_workload;
use brb_sim::workload::{run_workload, workload_stats};
use brb_sim::{DelayModel, Simulation};
use brb_workload::{SourceSelection, WorkloadSpec};

fn main() -> std::io::Result<()> {
    let n = 10;
    let seed = 7;
    let stack = StackSpec::Bd;
    let graph = generate::figure1_example();
    let config = Config::bdopt_mbd1(n, 1);
    // 32 broadcasts, Poisson arrivals with a 5 ms mean gap (dozens in flight at once),
    // Zipf-skewed sources: a few hot processes carry most of the traffic.
    let spec = WorkloadSpec::poisson(5_000, 32)
        .with_sources(SourceSelection::Zipf { exponent: 1.2 })
        .with_payload_bytes(256);
    let expected = spec.schedule(n, seed).len();
    println!("firehose: {expected} broadcasts, stack={stack}, N={n} (Figure 1 topology)");
    println!();

    // 1. Discrete-event simulator: virtual time, full metrics.
    let processes: Vec<DynStack> = (0..n)
        .map(|i| stack.build_protocol(&config, &graph, i))
        .collect();
    let mut sim = Simulation::new(processes, DelayModel::synchronous(), seed);
    let schedule = spec.schedule(n, seed);
    run_workload(&mut sim, &schedule, spec.mode);
    let correct = sim.correct_processes();
    let stats = workload_stats(sim.metrics(), &correct);
    assert!(stats.all_completed(), "sim must complete the workload");
    println!(
        "sim      : {}/{} broadcasts completed, {:.1} bc/s, p50 {:.0} ms, p90 {:.0} ms, p99 {:.0} ms",
        stats.completed,
        stats.injected,
        stats.throughput_per_sec(),
        stats.p50_ms(),
        stats.p90_ms(),
        stats.p99_ms(),
    );

    // 2. Channel runtime: real threads, same schedule via the generator driver.
    let (threaded, run) = run_threaded_workload(
        &graph,
        config,
        stack,
        &spec,
        seed,
        &[],
        Duration::from_secs(60),
    );
    assert!(run.all_completed(), "runtime must complete: {run:?}");
    println!(
        "runtime  : {}/{} broadcasts completed, {} deliveries, {} messages",
        run.completed,
        run.effective,
        run.deliveries_seen,
        threaded.total_messages()
    );

    // 3. TCP sockets over loopback: same schedule again.
    let (tcp, run) = run_tcp_workload(
        &graph,
        config,
        stack,
        &spec,
        seed,
        &[],
        Duration::from_secs(60),
    )?;
    assert!(run.all_completed(), "tcp must complete: {run:?}");
    println!(
        "tcp      : {}/{} broadcasts completed, {} deliveries, {} bytes on the wire",
        run.completed,
        run.effective,
        run.deliveries_seen,
        tcp.total_bytes()
    );

    // The three backends delivered the same broadcasts everywhere.
    for p in 0..n {
        assert_eq!(threaded.nodes[p].deliveries.len(), expected);
        assert_eq!(tcp.nodes[p].deliveries.len(), expected);
    }
    println!();
    println!("all three backends delivered all {expected} broadcasts at every process");
    Ok(())
}
