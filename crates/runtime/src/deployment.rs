//! Thread-per-process deployment driving any [`StackSpec`]-selected protocol engine.
//!
//! Node threads hold a boxed [`DynEngine`] and move **encoded wire frames** between the
//! crossbeam links: the deployment never decodes a frame itself, so the same loop runs
//! the Bracha–Dolev combination, the Bracha-over-RC stacks, or any reliable-communication
//! substrate of `brb-core`.

use std::thread::JoinHandle;
use std::time::Duration;

use brb_core::config::Config;
use brb_core::stack::{DynEngine, StackSpec, WireAction, WireActionBuf};
use brb_core::types::{Delivery, Payload, ProcessId};
use brb_graph::Graph;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::link::{build_links, AuthenticatedSender, Mailbox};

/// Options of a threaded deployment.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Optional artificial per-message transmission delay. `None` transmits immediately
    /// (the usual setting for tests); `Some((mean, jitter))` sleeps for
    /// `mean ± uniform(jitter)` before handing the message to the link, emulating the
    /// paper's 50 ms / 50 ± 50 ms regimes at wall-clock scale.
    pub delay: Option<(Duration, Duration)>,
    /// How long a node waits without any traffic before it considers the broadcast
    /// quiesced and shuts down.
    pub idle_shutdown: Duration,
    /// Seed for the per-node delay jitter.
    pub seed: u64,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        Self {
            delay: None,
            idle_shutdown: Duration::from_millis(300),
            seed: 1,
        }
    }
}

/// Commands sent from the deployment driver to a node thread.
enum Command {
    Broadcast(Payload),
    Shutdown,
}

/// Final report of one node thread.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// Identifier of the process.
    pub id: ProcessId,
    /// Payloads delivered by the process, in delivery order.
    pub deliveries: Vec<Delivery>,
    /// Number of messages the process put on its links.
    pub messages_sent: usize,
    /// Total bytes the process put on its links (Table 3 accounting).
    pub bytes_sent: usize,
}

/// Aggregated report of a whole deployment run.
#[derive(Debug, Clone)]
pub struct DeploymentReport {
    /// Per-node reports, indexed by process identifier.
    pub nodes: Vec<NodeReport>,
}

impl DeploymentReport {
    /// Total number of messages transmitted.
    pub fn total_messages(&self) -> usize {
        self.nodes.iter().map(|n| n.messages_sent).sum()
    }

    /// Total bytes transmitted.
    pub fn total_bytes(&self) -> usize {
        self.nodes.iter().map(|n| n.bytes_sent).sum()
    }

    /// Whether every listed process delivered exactly `expected` payloads.
    pub fn all_delivered(&self, processes: &[ProcessId], expected: usize) -> bool {
        processes
            .iter()
            .all(|&p| self.nodes[p].deliveries.len() == expected)
    }
}

/// A running thread-per-process deployment.
pub struct Deployment {
    handles: Vec<JoinHandle<NodeReport>>,
    commands: Vec<Sender<Command>>,
    deliveries: Receiver<(ProcessId, Delivery)>,
    n: usize,
}

impl Deployment {
    /// Spawns one thread per process of `graph`, each running the `stack` engine built
    /// from the given configuration. `crashed` processes are not spawned at all (their
    /// links are dead, which is indistinguishable from a silent Byzantine process for the
    /// others).
    pub fn start(
        graph: &Graph,
        config: Config,
        stack: StackSpec,
        options: RuntimeOptions,
        crashed: &[ProcessId],
    ) -> Self {
        let n = graph.node_count();
        // Topology-aware stacks (routed Dolev) share one copy of the graph.
        let shared_graph = std::sync::Arc::new(graph.clone());
        let (mailboxes, senders) = build_links(n, &graph.edges());
        let (delivery_tx, delivery_rx) = unbounded();
        let mut commands = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        let mut mailboxes: Vec<Option<Mailbox>> = mailboxes.into_iter().map(Some).collect();
        let mut senders: Vec<Option<Vec<AuthenticatedSender>>> =
            senders.into_iter().map(Some).collect();
        for id in 0..n {
            let (cmd_tx, cmd_rx) = unbounded();
            commands.push(cmd_tx);
            if crashed.contains(&id) {
                continue;
            }
            let mailbox = mailboxes[id].take().expect("mailbox taken once");
            let links = senders[id].take().expect("links taken once");
            let engine = stack.build_shared(&config, &shared_graph, id);
            let node = Node {
                engine,
                actions: WireActionBuf::new(),
                mailbox,
                links,
                commands: cmd_rx,
                deliveries: delivery_tx.clone(),
                options: options.clone(),
            };
            handles.push(std::thread::spawn(move || node.run()));
        }
        Self {
            handles,
            commands,
            deliveries: delivery_rx,
            n,
        }
    }

    /// Number of processes in the deployment (including crashed ones).
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// Asks `source` to broadcast `payload`.
    pub fn broadcast(&self, source: ProcessId, payload: Payload) {
        let _ = self.commands[source].send(Command::Broadcast(payload));
    }

    /// Waits until at least `expected` deliveries have been observed in total, or until
    /// `timeout` elapses. Returns the number of deliveries observed.
    pub fn await_deliveries(&self, expected: usize, timeout: Duration) -> usize {
        let deadline = std::time::Instant::now() + timeout;
        let mut seen = 0usize;
        while seen < expected {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.deliveries.recv_timeout(remaining) {
                Ok(_) => seen += 1,
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        seen
    }

    /// Replays a workload schedule against the running deployment through the shared
    /// generator driver (see [`crate::workload::drive_workload`]): a generator thread
    /// fires the injections (honoring the closed-loop window), this thread tracks
    /// per-broadcast completion over the delivery stream.
    pub fn run_workload(
        &self,
        schedule: &[brb_workload::Injection],
        mode: brb_workload::LoopMode,
        pacing: crate::workload::Pacing,
        correct: &[ProcessId],
        timeout: Duration,
    ) -> crate::workload::WorkloadRun {
        crate::workload::drive_workload(
            |source, payload| self.broadcast(source, payload),
            &self.deliveries,
            schedule,
            mode,
            pacing,
            correct,
            timeout,
        )
    }

    /// Shuts every node down and collects the per-node reports.
    pub fn shutdown(self) -> DeploymentReport {
        for tx in &self.commands {
            let _ = tx.send(Command::Shutdown);
        }
        let mut nodes: Vec<NodeReport> = (0..self.n)
            .map(|id| NodeReport {
                id,
                deliveries: Vec::new(),
                messages_sent: 0,
                bytes_sent: 0,
            })
            .collect();
        for handle in self.handles {
            if let Ok(report) = handle.join() {
                let id = report.id;
                nodes[id] = report;
            }
        }
        DeploymentReport { nodes }
    }
}

/// One node thread: the boxed protocol engine plus its links and its reusable action
/// sink.
struct Node {
    engine: Box<dyn DynEngine>,
    actions: WireActionBuf,
    mailbox: Mailbox,
    links: Vec<AuthenticatedSender>,
    commands: Receiver<Command>,
    deliveries: Sender<(ProcessId, Delivery)>,
    options: RuntimeOptions,
}

impl Node {
    fn run(mut self) -> NodeReport {
        let id = self.engine.process_id();
        let mut messages_sent = 0usize;
        let mut bytes_sent = 0usize;
        let mut rng = StdRng::seed_from_u64(self.options.seed.wrapping_add(id as u64));
        let mut shutting_down = false;
        loop {
            crossbeam::channel::select! {
                recv(self.commands) -> cmd => match cmd {
                    Ok(Command::Broadcast(payload)) => {
                        self.engine.broadcast_wire(payload, &mut self.actions);
                        self.dispatch(&mut messages_sent, &mut bytes_sent, &mut rng);
                    }
                    Ok(Command::Shutdown) | Err(_) => {
                        shutting_down = true;
                    }
                },
                recv(self.mailbox.receiver()) -> frame => match frame {
                    Ok(frame) => {
                        self.engine.handle_frame(frame.from, &frame.bytes, &mut self.actions);
                        self.dispatch(&mut messages_sent, &mut bytes_sent, &mut rng);
                    }
                    Err(_) => shutting_down = true,
                },
                default(self.options.idle_shutdown) => {
                    if shutting_down {
                        break;
                    }
                }
            }
            if shutting_down && self.mailbox.receiver().is_empty() {
                break;
            }
        }
        NodeReport {
            id,
            deliveries: self.engine.deliveries().to_vec(),
            messages_sent,
            bytes_sent,
        }
    }

    /// Executes the actions buffered by the last engine event: pre-encoded frames go to
    /// the links, deliveries to the shared channel. The buffer is drained in place, so
    /// the steady-state loop reuses its action buffers instead of allocating per event.
    fn dispatch(&mut self, messages_sent: &mut usize, bytes_sent: &mut usize, rng: &mut StdRng) {
        for action in self.actions.drain() {
            match action {
                WireAction::Send {
                    to,
                    frame,
                    wire_size,
                } => {
                    if let Some((mean, jitter)) = self.options.delay {
                        // Coarse wall-clock delay emulation; precise delay distributions
                        // are the simulator's job (`brb-sim`), the runtime demonstrates
                        // liveness under real concurrency.
                        let jitter_micros = if jitter.as_micros() > 0 {
                            rng.gen_range(0..=jitter.as_micros() as u64)
                        } else {
                            0
                        };
                        std::thread::sleep(mean + Duration::from_micros(jitter_micros));
                    }
                    if let Some(link) = self.links.iter().find(|l| l.peer() == to) {
                        *messages_sent += 1;
                        *bytes_sent += wire_size;
                        let _ = link.send(frame);
                    }
                }
                WireAction::Deliver(delivery) => {
                    let _ = self.deliveries.send((self.engine.process_id(), delivery));
                }
            }
        }
    }
}

/// Convenience wrapper: runs one broadcast of the given stack on `graph` and returns the
/// deployment report once every correct process delivered (or the timeout expired).
pub fn run_threaded_broadcast(
    graph: &Graph,
    config: Config,
    stack: StackSpec,
    payload: Payload,
    source: ProcessId,
    crashed: &[ProcessId],
    timeout: Duration,
) -> DeploymentReport {
    let deployment = Deployment::start(graph, config, stack, RuntimeOptions::default(), crashed);
    deployment.broadcast(source, payload);
    let expected = graph.node_count() - crashed.len();
    deployment.await_deliveries(expected, timeout);
    deployment.shutdown()
}

/// Convenience wrapper: expands `spec` into its seeded schedule, firehoses the threaded
/// deployment with it (unpaced: only the injection order and the loop window matter at
/// wall-clock scale), and returns the deployment report together with what the driver
/// observed.
pub fn run_threaded_workload(
    graph: &Graph,
    config: Config,
    stack: StackSpec,
    spec: &brb_workload::WorkloadSpec,
    seed: u64,
    crashed: &[ProcessId],
    timeout: Duration,
) -> (DeploymentReport, crate::workload::WorkloadRun) {
    let n = graph.node_count();
    let deployment = Deployment::start(graph, config, stack, RuntimeOptions::default(), crashed);
    let schedule = spec.schedule(n, seed);
    let correct: Vec<ProcessId> = (0..n).filter(|p| !crashed.contains(p)).collect();
    let run = deployment.run_workload(
        &schedule,
        spec.mode,
        crate::workload::Pacing::Unpaced,
        &correct,
        timeout,
    );
    (deployment.shutdown(), run)
}

/// Shared collector used by examples that want to observe deliveries as they happen.
#[derive(Debug, Default)]
pub struct DeliveryLog {
    entries: Mutex<Vec<(ProcessId, Delivery)>>,
}

impl DeliveryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivery.
    pub fn record(&self, process: ProcessId, delivery: Delivery) {
        self.entries.lock().push((process, delivery));
    }

    /// Snapshot of the log.
    pub fn snapshot(&self) -> Vec<(ProcessId, Delivery)> {
        self.entries.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_graph::generate;

    #[test]
    fn threaded_broadcast_delivers_everywhere() {
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let report = run_threaded_broadcast(
            &graph,
            config,
            StackSpec::Bd,
            Payload::from("threaded hello"),
            0,
            &[],
            Duration::from_secs(10),
        );
        let everyone: Vec<ProcessId> = (0..10).collect();
        assert!(
            report.all_delivered(&everyone, 1),
            "every process must deliver"
        );
        assert!(report.total_messages() > 0);
        assert!(report.total_bytes() > 0);
        for node in &report.nodes {
            assert_eq!(node.deliveries[0].payload, Payload::from("threaded hello"));
        }
    }

    #[test]
    fn threaded_broadcast_with_crashed_process() {
        let graph = generate::circulant(13, 2); // 4-regular, supports f = 1
        let config = Config::latency_preset(13, 1);
        let crashed = [7usize];
        let report = run_threaded_broadcast(
            &graph,
            config,
            StackSpec::Bd,
            Payload::filled(5, 128),
            2,
            &crashed,
            Duration::from_secs(10),
        );
        let correct: Vec<ProcessId> = (0..13).filter(|p| !crashed.contains(p)).collect();
        assert!(report.all_delivered(&correct, 1));
        assert!(report.nodes[7].deliveries.is_empty());
    }

    #[test]
    fn threaded_broadcast_runs_non_bd_stacks() {
        // The routed-Dolev-based BRB stack has never run under real concurrency before
        // the stack API: one broadcast must deliver at every node.
        let graph = generate::figure1_example();
        let config = Config::plain(10, 1);
        let report = run_threaded_broadcast(
            &graph,
            config,
            StackSpec::BrachaRoutedDolev,
            Payload::from("routed over threads"),
            0,
            &[],
            Duration::from_secs(10),
        );
        let everyone: Vec<ProcessId> = (0..10).collect();
        assert!(report.all_delivered(&everyone, 1));
        assert!(report.total_bytes() > 0);
    }

    #[test]
    fn threaded_workload_firehoses_every_source() {
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let spec = brb_workload::WorkloadSpec::constant_rate(1_000, 20).with_payload_bytes(48);
        let (report, run) = run_threaded_workload(&graph, config, StackSpec::Bd, &spec, 7, &[], {
            Duration::from_secs(30)
        });
        assert_eq!(run.injected, 20);
        assert_eq!(run.effective, 20);
        assert!(run.all_completed(), "{run:?}");
        let everyone: Vec<ProcessId> = (0..10).collect();
        // Every process delivers all 20 broadcasts.
        assert!(report.all_delivered(&everyone, 20));
    }

    #[test]
    fn threaded_closed_loop_workload_with_a_crashed_source_completes() {
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        // Window 3, one crashed process among the round-robin sources: its injections
        // are no-ops and must not clog the window.
        let spec = brb_workload::WorkloadSpec::constant_rate(0, 10).closed_loop(3);
        let crashed = [6usize];
        let (report, run) = run_threaded_workload(
            &graph,
            config,
            StackSpec::Bd,
            &spec,
            3,
            &crashed,
            Duration::from_secs(30),
        );
        assert_eq!(run.injected, 10);
        assert_eq!(run.effective, 9, "source 6's injection cannot complete");
        assert!(run.all_completed(), "{run:?}");
        let correct: Vec<ProcessId> = (0..10).filter(|p| !crashed.contains(p)).collect();
        // Nine effective broadcasts, each delivered by every correct process.
        assert!(report.all_delivered(&correct, 9));
        assert!(report.nodes[6].deliveries.is_empty());
    }

    #[test]
    fn delivery_log_collects_entries() {
        let log = DeliveryLog::new();
        assert!(log.snapshot().is_empty());
        log.record(
            3,
            Delivery {
                id: brb_core::types::BroadcastId::new(0, 0),
                payload: Payload::from("x"),
            },
        );
        assert_eq!(log.snapshot().len(), 1);
    }

    #[test]
    fn report_accessors() {
        let report = DeploymentReport {
            nodes: vec![
                NodeReport {
                    id: 0,
                    deliveries: vec![],
                    messages_sent: 2,
                    bytes_sent: 10,
                },
                NodeReport {
                    id: 1,
                    deliveries: vec![],
                    messages_sent: 3,
                    bytes_sent: 20,
                },
            ],
        };
        assert_eq!(report.total_messages(), 5);
        assert_eq!(report.total_bytes(), 30);
        assert!(!report.all_delivered(&[0, 1], 1));
        assert!(report.all_delivered(&[0, 1], 0));
    }
}
