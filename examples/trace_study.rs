//! Cross-backend structured-tracing study: one seeded adversarial scenario, three
//! backends, identical causal event sequences.
//!
//! The `brb-trace` layer stamps every protocol phase transition with
//! `(backend, node, BroadcastId, seq, time)`. Timestamps differ across backends by
//! construction — the simulator runs on a virtual clock, the live backends on wall
//! clock — but the *order-normalized causal sequence* (injection, ready-quorum
//! crossings, deliveries, sorted by instance and node) is a pure function of the
//! protocol, so it must be byte-identical on the simulator, the channel runtime and
//! the TCP deployment. This example runs the same Bracha–Dolev broadcast under two
//! deterministic adversaries (a targeted-silence node and a replayer) on all three
//! backends and asserts exactly that, then writes the simulator's full event stream
//! as JSONL and as Chrome trace-event JSON (load the latter in Perfetto:
//! one track per node, one span per broadcast instance).
//!
//! Usage: `cargo run --release --example trace_study [out-dir]` (default `target`).

use std::sync::Arc;
use std::time::Duration;

use brb_core::config::Config;
use brb_core::stack::StackSpec;
use brb_core::types::{Payload, ProcessId};
use brb_net::TcpDeployment;
use brb_runtime::Deployment;
use brb_sim::experiment::{experiment_graph, ExperimentParams};
use brb_sim::{run_experiment_traced, Behavior, DelayModel};
use brb_trace::{
    causal_sequence, chrome_trace_json, latency_breakdown, render_causal_sequence, to_jsonl,
    validate_chrome_trace, validate_jsonl, Backend, NodeId, TraceEvent, VecSink,
};
use brb_transport::{DriverOptions, TraceConfig};

/// System size of the study.
const N: usize = 8;
/// Connectivity of the generated random regular topology.
const K: usize = 4;
/// Fault budget.
const F: usize = 1;
/// Topology seed shared by all three backends.
const GRAPH_SEED: u64 = 4_242;
/// Payload of the single broadcast.
const PAYLOAD: usize = 64;

/// The deterministic adversaries: process 3 suppresses every frame towards 1 and 5,
/// process 5 replays every frame it forwards. Neither changes *which* causal events
/// occur — BRB still delivers everywhere — only how much redundant traffic flows.
fn behaviors() -> Vec<(ProcessId, Behavior)> {
    vec![
        (3, Behavior::SilentTowards(vec![1, 5])),
        (5, Behavior::Replayer),
    ]
}

type CausalSeq = Vec<(NodeId, u32, &'static str, NodeId)>;

fn sim_events() -> Vec<TraceEvent> {
    let graph = experiment_graph(N, K, GRAPH_SEED);
    let mut params = ExperimentParams::new(N, K, F, Config::bdopt_mbd1(N, F))
        .with_stack(StackSpec::Bd)
        .with_behaviors(behaviors());
    params.payload_size = PAYLOAD;
    params.delay = DelayModel::synchronous();
    params.seed = 7;
    let traced = run_experiment_traced(&params, &graph);
    assert!(
        traced.record.result.complete(),
        "the simulated broadcast must complete"
    );
    traced.events
}

fn runtime_events() -> Vec<TraceEvent> {
    let graph = experiment_graph(N, K, GRAPH_SEED);
    let sink = Arc::new(VecSink::new());
    let options = DriverOptions::default()
        .with_behaviors(behaviors())
        .with_trace(TraceConfig::new(Backend::Runtime, sink.clone()));
    let deployment = Deployment::start(
        &graph,
        Config::bdopt_mbd1(N, F),
        StackSpec::Bd,
        options,
        &[],
    );
    deployment.broadcast(0, Payload::filled(0xAB, PAYLOAD));
    deployment.await_deliveries(N, Duration::from_secs(30));
    deployment.shutdown();
    sink.take()
}

fn tcp_events() -> Vec<TraceEvent> {
    let graph = experiment_graph(N, K, GRAPH_SEED);
    let sink = Arc::new(VecSink::new());
    let options = DriverOptions::default()
        .with_behaviors(behaviors())
        .with_trace(TraceConfig::new(Backend::Tcp, sink.clone()));
    let deployment = TcpDeployment::start(
        &graph,
        Config::bdopt_mbd1(N, F),
        StackSpec::Bd,
        options,
        &[],
    )
    .expect("TCP deployment starts on loopback");
    deployment.broadcast(0, Payload::filled(0xAB, PAYLOAD));
    deployment.await_deliveries(N, Duration::from_secs(30));
    deployment.shutdown();
    sink.take()
}

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target".to_string());
    std::fs::create_dir_all(&out_dir).expect("output directory");

    println!("# trace_study — N={N}, k={K}, f={F}, stack=bd, adversaries=silent+replayer");

    let sim = sim_events();
    let runtime = runtime_events();
    let tcp = tcp_events();
    println!(
        "events: sim={}, runtime={}, tcp={}",
        sim.len(),
        runtime.len(),
        tcp.len()
    );

    let sim_seq: CausalSeq = causal_sequence(&sim);
    let runtime_seq: CausalSeq = causal_sequence(&runtime);
    let tcp_seq: CausalSeq = causal_sequence(&tcp);
    assert!(!sim_seq.is_empty(), "the causal sequence must be non-empty");
    assert_eq!(
        sim_seq, runtime_seq,
        "sim and channel-runtime causal sequences must be identical"
    );
    assert_eq!(
        sim_seq, tcp_seq,
        "sim and TCP causal sequences must be identical"
    );
    println!(
        "OK: identical order-normalized causal sequence on all three backends \
         ({} causal events):",
        sim_seq.len()
    );
    print!("{}", render_causal_sequence(&sim_seq));

    // The causal latency decomposition of the simulated run (virtual microseconds).
    for b in latency_breakdown(&sim) {
        println!(
            "breakdown: bc({}, {}): injection={}us first_hop={:?}us threshold={:?}us \
             delivery={:?}us deliveries={}",
            b.source, b.seq, b.injection_us, b.first_hop_us, b.threshold_us, b.delivery_us,
            b.deliveries
        );
    }

    // Exporters: JSONL (one event per line) and Chrome trace-event JSON. Open the
    // latter at https://ui.perfetto.dev — one track per node, spans per instance.
    let jsonl = to_jsonl(&sim);
    let events = validate_jsonl(&jsonl).expect("emitted JSONL validates against the schema");
    let chrome = chrome_trace_json(&sim);
    let entries = validate_chrome_trace(&chrome).expect("emitted Chrome trace JSON is well-formed");
    let jsonl_path = format!("{out_dir}/trace_study.jsonl");
    let chrome_path = format!("{out_dir}/trace_study_chrome.json");
    std::fs::write(&jsonl_path, &jsonl).expect("JSONL path writable");
    std::fs::write(&chrome_path, &chrome).expect("Chrome trace path writable");
    println!("OK: {events} JSONL events -> {jsonl_path}");
    println!("OK: {entries} Chrome trace entries -> {chrome_path}");
}
