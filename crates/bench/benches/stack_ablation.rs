//! Ablation benchmark across protocol stacks: the same broadcast, on the same topology and
//! fault assumption, executed by
//!
//! * the plain Bracha–Dolev combination (no MD/MBD optimisations),
//! * BDopt (MD.1–5) and BDopt + MBD.1 (the paper's baseline and headline configuration),
//! * Bracha over routed (known-topology) Dolev, and
//! * Bracha over CPA (locally bounded fault model, on a topology where its condition holds).
//!
//! Wall-clock time here measures the *computational* cost of a full simulated broadcast
//! (message handling, path bookkeeping, quorum counting), complementing the harnesses that
//! report simulated latency and bandwidth.

use brb_core::bracha_rc::BrachaOverRc;
use brb_core::config::Config;
use brb_core::cpa::CpaProcess;
use brb_core::dolev_routed::RoutedDolev;
use brb_core::types::Payload;
use brb_core::BdProcess;
use brb_graph::{generate, Graph};
use brb_sim::{DelayModel, Simulation};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

// Kept deliberately small: the plain (unoptimised) Bracha–Dolev combination is part of the
// comparison, and its message count grows with the number of simple paths in the topology,
// which explodes beyond this size (that explosion is precisely the paper's motivation).
const N: usize = 12;
const K: usize = 4;
const F: usize = 1;
const PAYLOAD: usize = 256;

fn topology() -> Graph {
    let mut rng = StdRng::seed_from_u64(7);
    generate::random_regular_connected(N, K, 2 * F + 1, &mut rng).expect("topology exists")
}

fn run_bd(graph: &Graph, config: Config) -> usize {
    let processes: Vec<BdProcess> = (0..N)
        .map(|i| BdProcess::new(i, config, graph.neighbors_vec(i)))
        .collect();
    let mut sim = Simulation::new(processes, DelayModel::synchronous(), 1);
    sim.broadcast(0, Payload::filled(1, PAYLOAD));
    sim.run_to_quiescence();
    sim.metrics().messages_sent
}

fn bench_bd_configurations(c: &mut Criterion) {
    let graph = topology();
    let mut group = c.benchmark_group("stack_ablation_bd");
    for (label, config) in [
        ("plain_bracha_dolev", Config::plain(N, F)),
        ("bdopt_md1_5", Config::bdopt(N, F)),
        ("bdopt_mbd1", Config::bdopt_mbd1(N, F)),
        ("lat_bdw_preset", Config::latency_bandwidth_preset(N, F)),
    ] {
        group.bench_function(label, |b| b.iter(|| black_box(run_bd(&graph, config))));
    }
    group.finish();
}

fn bench_routed_stack(c: &mut Criterion) {
    let graph = topology();
    c.bench_function("stack_ablation_bracha_routed_dolev", |b| {
        b.iter(|| {
            let processes: Vec<BrachaOverRc<RoutedDolev>> = (0..N)
                .map(|i| BrachaOverRc::new(N, F, RoutedDolev::new(i, F, graph.clone())))
                .collect();
            let mut sim = Simulation::new(processes, DelayModel::synchronous(), 1);
            sim.broadcast(0, Payload::filled(1, PAYLOAD));
            sim.run_to_quiescence();
            black_box(sim.metrics().messages_sent)
        })
    });
}

fn bench_cpa_stack(c: &mut Criterion) {
    // CPA needs its local condition; run it on a complete graph of the same size, which is
    // its natural best case, as a lower-bound comparison point.
    let graph = generate::complete(N);
    c.bench_function("stack_ablation_bracha_cpa_complete", |b| {
        b.iter(|| {
            let processes: Vec<BrachaOverRc<CpaProcess>> = (0..N)
                .map(|i| BrachaOverRc::new(N, F, CpaProcess::new(i, F, graph.neighbors_vec(i))))
                .collect();
            let mut sim = Simulation::new(processes, DelayModel::synchronous(), 1);
            sim.broadcast(0, Payload::filled(1, PAYLOAD));
            sim.run_to_quiescence();
            black_box(sim.metrics().messages_sent)
        })
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_bd_configurations, bench_routed_stack, bench_cpa_stack
}
criterion_main!(benches);
