//! Byzantine process behaviours injected by the simulator.
//!
//! The paper's model allows up to `f` processes to behave arbitrarily: drop, modify or
//! inject messages (Sec. 3). The simulator models a useful subset of those behaviours at
//! the node level — silence, message loss, duplication, amplification, and *targeted*
//! silence towards chosen victims; fully adversarial message forging (equivocation, fake
//! paths) is exercised in the integration and property tests by crafting wire messages
//! directly.

use rand::Rng;
use serde::{Deserialize, Serialize};

use brb_core::types::ProcessId;

/// Behaviour of a process inside a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Behavior {
    /// Follows the protocol faithfully.
    #[default]
    Correct,
    /// Crashed / silent: receives nothing, sends nothing. This is the weakest Byzantine
    /// behaviour but already stresses the `f+1` disjoint-path and `2f+1` quorum margins.
    Crash,
    /// Processes messages correctly but drops each outbound message with the given
    /// probability (a message-dropping adversary on its outgoing links).
    Lossy(f64),
    /// Processes messages correctly but sends every outbound message twice (a replaying
    /// adversary; correct protocols must be idempotent to duplicates).
    Replayer,
    /// Mutes itself after sending the given number of messages (a process that crashes
    /// mid-broadcast, leaving partially propagated state behind).
    FailsAfter(usize),
    /// Behaves correctly except that it silently drops every message addressed to the
    /// listed victims — a *targeted* partitioning adversary that tries to starve specific
    /// processes of the `f+1` disjoint paths or `2f+1` READYs they need.
    SilentTowards(Vec<ProcessId>),
    /// Sends the given number of copies of every outbound message (an amplification
    /// adversary trying to exhaust its neighbors' buffers and inflate their path stores).
    Flooder(usize),
}

impl Behavior {
    /// Whether the process accepts inbound messages.
    pub fn receives(&self) -> bool {
        !matches!(self, Behavior::Crash)
    }

    /// Whether this behaviour deviates from the protocol.
    pub fn is_byzantine(&self) -> bool {
        !matches!(self, Behavior::Correct)
    }

    /// Decides the fate of one outbound message addressed to `to`, given how many messages
    /// the process has already sent. Returns how many copies to transmit.
    pub fn outbound_copies<R: Rng + ?Sized>(
        &self,
        to: ProcessId,
        already_sent: usize,
        rng: &mut R,
    ) -> usize {
        match self {
            Behavior::Correct => 1,
            Behavior::Crash => 0,
            Behavior::Lossy(p) => {
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    0
                } else {
                    1
                }
            }
            Behavior::Replayer => 2,
            Behavior::FailsAfter(limit) => {
                if already_sent < *limit {
                    1
                } else {
                    0
                }
            }
            Behavior::SilentTowards(victims) => {
                if victims.contains(&to) {
                    0
                } else {
                    1
                }
            }
            Behavior::Flooder(copies) => *copies,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn correct_behavior_passes_everything() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Behavior::Correct.receives());
        assert!(!Behavior::Correct.is_byzantine());
        assert_eq!(Behavior::Correct.outbound_copies(0, 100, &mut rng), 1);
    }

    #[test]
    fn crash_blocks_everything() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(!Behavior::Crash.receives());
        assert!(Behavior::Crash.is_byzantine());
        assert_eq!(Behavior::Crash.outbound_copies(0, 0, &mut rng), 0);
    }

    #[test]
    fn lossy_drops_roughly_the_requested_fraction() {
        let mut rng = StdRng::seed_from_u64(7);
        let behavior = Behavior::Lossy(0.5);
        let sent: usize = (0..1000)
            .map(|i| behavior.outbound_copies(0, i, &mut rng))
            .sum();
        assert!((300..700).contains(&sent), "sent {sent} of 1000");
    }

    #[test]
    fn lossy_with_out_of_range_probability_is_clamped() {
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(Behavior::Lossy(2.0).outbound_copies(0, 0, &mut rng), 0);
        assert_eq!(Behavior::Lossy(-1.0).outbound_copies(0, 0, &mut rng), 1);
    }

    #[test]
    fn replayer_duplicates() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Behavior::Replayer.outbound_copies(0, 3, &mut rng), 2);
    }

    #[test]
    fn fails_after_limit() {
        let mut rng = StdRng::seed_from_u64(0);
        let b = Behavior::FailsAfter(2);
        assert_eq!(b.outbound_copies(0, 0, &mut rng), 1);
        assert_eq!(b.outbound_copies(0, 1, &mut rng), 1);
        assert_eq!(b.outbound_copies(0, 2, &mut rng), 0);
        assert_eq!(b.outbound_copies(0, 9, &mut rng), 0);
    }

    #[test]
    fn silent_towards_drops_only_the_victims() {
        let mut rng = StdRng::seed_from_u64(0);
        let b = Behavior::SilentTowards(vec![3, 5]);
        assert!(b.is_byzantine());
        assert!(b.receives());
        assert_eq!(b.outbound_copies(3, 0, &mut rng), 0);
        assert_eq!(b.outbound_copies(5, 10, &mut rng), 0);
        assert_eq!(b.outbound_copies(4, 0, &mut rng), 1);
    }

    #[test]
    fn flooder_amplifies() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Behavior::Flooder(5).outbound_copies(1, 0, &mut rng), 5);
        assert_eq!(Behavior::Flooder(0).outbound_copies(1, 0, &mut rng), 0);
    }

    #[test]
    fn default_is_correct() {
        assert_eq!(Behavior::default(), Behavior::Correct);
    }
}
