//! Routed versus flooding reliable communication under a Bracha layer.
//!
//! The paper's protocols deliberately assume an *unknown* topology and therefore flood
//! (Dolev's flooding variant, made practical by MD.1–5 and MBD.1–12). When the topology is
//! known, Dolev's other variant routes every content along 2f+1 precomputed node-disjoint
//! paths instead. This example runs the same broadcast through three stacks on the same
//! random regular graph and compares simulated latency, network consumption and message
//! counts:
//!
//! * plain Bracha–Dolev (no optimisations) — the state of the art before Bonomi et al.;
//! * BDopt + MBD.1 — the paper's headline configuration;
//! * Bracha over routed Dolev — the known-topology alternative implemented in this
//!   repository as an extension.
//!
//! Run with: `cargo run --release --example routed_vs_flooding`

use brb_core::bracha_rc::BrachaOverRc;
use brb_core::config::Config;
use brb_core::dolev_routed::RoutedDolev;
use brb_core::types::{BroadcastId, Payload};
use brb_core::BdProcess;
use brb_graph::generate;
use brb_sim::{DelayModel, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Small enough that the *unoptimised* flooding combination still terminates in
    // seconds; its growth with the number of simple paths is exactly the practicality
    // problem the paper addresses.
    let (n, k, f) = (12, 4, 1);
    let payload_size = 1024;
    let mut rng = StdRng::seed_from_u64(11);
    let graph = generate::random_regular_connected(n, k, 2 * f + 1, &mut rng)
        .expect("a k-connected regular graph exists for these parameters");
    println!("Topology: random {k}-regular graph, N = {n}, f = {f}, payload {payload_size} B\n");

    let id = BroadcastId::new(0, 0);
    let mut rows = Vec::new();

    for (label, config) in [
        ("flooding, plain Bracha-Dolev", Config::plain(n, f)),
        ("flooding, BDopt + MBD.1     ", Config::bdopt_mbd1(n, f)),
    ] {
        let processes: Vec<BdProcess> = (0..n)
            .map(|i| BdProcess::new(i, config, graph.neighbors_vec(i)))
            .collect();
        let mut sim = Simulation::new(processes, DelayModel::synchronous(), 3);
        sim.broadcast(0, Payload::filled(1, payload_size));
        sim.run_to_quiescence();
        let correct = sim.correct_processes();
        rows.push((
            label,
            sim.metrics()
                .latency(id, &correct)
                .map(|t| t.as_millis_f64()),
            sim.metrics().kilobytes_sent(),
            sim.metrics().messages_sent,
        ));
    }

    let routed: Vec<BrachaOverRc<RoutedDolev>> = (0..n)
        .map(|i| BrachaOverRc::new(n, f, RoutedDolev::new(i, f, graph.clone())))
        .collect();
    let mut sim = Simulation::new(routed, DelayModel::synchronous(), 3);
    sim.broadcast(0, Payload::filled(1, payload_size));
    sim.run_to_quiescence();
    let correct = sim.correct_processes();
    rows.push((
        "routed Dolev under Bracha   ",
        sim.metrics()
            .latency(id, &correct)
            .map(|t| t.as_millis_f64()),
        sim.metrics().kilobytes_sent(),
        sim.metrics().messages_sent,
    ));

    println!(
        "{:<30} {:>12} {:>14} {:>10}",
        "stack", "latency (ms)", "network (kB)", "messages"
    );
    for (label, latency, kilobytes, messages) in rows {
        println!(
            "{label:<30} {:>12.1} {kilobytes:>14.1} {messages:>10}",
            latency.unwrap_or(f64::NAN),
        );
    }
    println!(
        "\nThe unoptimised flooding stack pays for topology ignorance with message volume. \
         Topology knowledge alone (routed Dolev) removes that explosion without any of the \
         MD/MBD machinery, but it still carries the payload in every route copy; the \
         paper's MBD.1 payload elision is what wins on bytes. The two approaches are \
         complementary: MBD.1-style local IDs could be applied to the routed variant as \
         well."
    );
}
