//! Link delay models.
//!
//! The paper's evaluation (Sec. 7.1) studies two network regimes with the same average
//! message delay: **synchronous** links delaying every message by 50 ms, and
//! **asynchronous** links delaying every message by 50 ± 50 ms drawn from a normal
//! distribution (which frequently reorders messages in flight).

use rand::Rng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Per-message transmission delay model of an authenticated link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Every message takes exactly the given delay (in microseconds).
    Constant {
        /// Delay in microseconds.
        micros: u64,
    },
    /// Delays are drawn from a normal distribution (in microseconds), truncated below at
    /// `min_micros` so that delays remain positive and causality is preserved.
    Normal {
        /// Mean delay in microseconds.
        mean_micros: u64,
        /// Standard deviation in microseconds.
        std_dev_micros: u64,
        /// Minimum delay in microseconds (truncation point).
        min_micros: u64,
    },
    /// Delays are drawn uniformly from `[min_micros, max_micros]`.
    Uniform {
        /// Minimum delay in microseconds.
        min_micros: u64,
        /// Maximum delay in microseconds.
        max_micros: u64,
    },
}

impl DelayModel {
    /// The paper's synchronous setting: every message is delayed by 50 ms.
    pub fn synchronous() -> Self {
        DelayModel::Constant { micros: 50_000 }
    }

    /// The paper's asynchronous setting: 50 ± 50 ms per message, normally distributed,
    /// truncated at 1 ms.
    pub fn asynchronous() -> Self {
        DelayModel::Normal {
            mean_micros: 50_000,
            std_dev_micros: 50_000,
            min_micros: 1_000,
        }
    }

    /// Samples one message delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimTime {
        match *self {
            DelayModel::Constant { micros } => SimTime::from_micros(micros),
            DelayModel::Normal {
                mean_micros,
                std_dev_micros,
                min_micros,
            } => {
                let normal = Normal::new(mean_micros as f64, std_dev_micros as f64)
                    .expect("standard deviation is non-negative");
                let sampled = normal.sample(rng).max(min_micros as f64);
                SimTime::from_micros(sampled.round() as u64)
            }
            DelayModel::Uniform {
                min_micros,
                max_micros,
            } => {
                let (lo, hi) = (min_micros.min(max_micros), min_micros.max(max_micros));
                SimTime::from_micros(rng.gen_range(lo..=hi))
            }
        }
    }

    /// Mean delay of the model, in microseconds.
    pub fn mean_micros(&self) -> u64 {
        match *self {
            DelayModel::Constant { micros } => micros,
            DelayModel::Normal { mean_micros, .. } => mean_micros,
            DelayModel::Uniform {
                min_micros,
                max_micros,
            } => (min_micros + max_micros) / 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn synchronous_delay_is_always_50ms() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = DelayModel::synchronous();
        for _ in 0..10 {
            assert_eq!(model.sample(&mut rng).as_micros(), 50_000);
        }
        assert_eq!(model.mean_micros(), 50_000);
    }

    #[test]
    fn asynchronous_delays_vary_and_stay_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = DelayModel::asynchronous();
        let samples: Vec<u64> = (0..200)
            .map(|_| model.sample(&mut rng).as_micros())
            .collect();
        assert!(samples.iter().all(|&d| d >= 1_000));
        let distinct: std::collections::BTreeSet<_> = samples.iter().collect();
        assert!(distinct.len() > 50, "normal delays should vary");
        let mean = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        assert!(
            (mean - 50_000.0).abs() < 20_000.0,
            "mean should be near 50 ms, got {mean}"
        );
    }

    #[test]
    fn uniform_delays_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = DelayModel::Uniform {
            min_micros: 10,
            max_micros: 20,
        };
        for _ in 0..100 {
            let d = model.sample(&mut rng).as_micros();
            assert!((10..=20).contains(&d));
        }
        assert_eq!(model.mean_micros(), 15);
    }

    #[test]
    fn uniform_with_swapped_bounds_does_not_panic() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = DelayModel::Uniform {
            min_micros: 30,
            max_micros: 10,
        };
        let d = model.sample(&mut rng).as_micros();
        assert!((10..=30).contains(&d));
    }
}
