//! Dolev's reliable communication protocol (Algorithm 2 of the paper) with Bonomi et al.'s
//! practical modifications MD.1–5.
//!
//! Dolev's protocol provides **reliable communication** (reliable broadcast with honest
//! dealer) on any network whose vertex connectivity is at least `2f+1`, in the global
//! fault model, with authenticated reliable links and an *unknown* topology. Messages are
//! flooded together with the list of process labels they traversed; a process delivers a
//! content once it has received it through at least `f+1` node-disjoint paths (or directly
//! from the source with MD.1).
//!
//! This standalone implementation is used as a baseline and as a building block for tests;
//! the Bracha–Dolev combination in [`crate::bd`] embeds its own Dolev instances to benefit
//! from the cross-layer modifications MBD.1–12.

use std::collections::{BTreeSet, HashMap};

use serde::{Deserialize, Serialize};

use crate::config::MdFlags;
use crate::disjoint::DisjointPathTracker;
use crate::gc::{GcPolicy, GcState};
use crate::pathset::PathSet;
use crate::protocol::{ActionBuf, Protocol};
use crate::types::{Action, BroadcastId, Content, Delivery, Payload, ProcessId};
use crate::wire::{FIELD_BID, FIELD_MTYPE, FIELD_PATH_LEN, FIELD_PAYLOAD_SIZE, FIELD_PROCESS_ID};

/// A message of Dolev's protocol: a content and the path of process labels it traversed
/// (excluding the current sender, which the receiver learns from the authenticated link).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DolevMessage {
    /// The broadcast content (source, sequence number and payload).
    pub content: Content,
    /// Labels of the processes traversed so far.
    pub path: Vec<ProcessId>,
}

impl DolevMessage {
    /// Wire size following Table 3: `mtype + s + bid + payloadSize + payload + pathLen +
    /// 4 * |path|`.
    pub fn wire_size(&self) -> usize {
        FIELD_MTYPE
            + FIELD_PROCESS_ID
            + FIELD_BID
            + FIELD_PAYLOAD_SIZE
            + self.content.payload.len()
            + FIELD_PATH_LEN
            + FIELD_PROCESS_ID * self.path.len()
    }
}

/// Per-content dissemination state.
#[derive(Debug, Clone)]
struct InstanceState {
    tracker: DisjointPathTracker,
    delivered: bool,
    /// Whether the empty path has been forwarded after delivery (MD.2 / MD.5).
    relayed_empty: bool,
    /// Neighbors that sent us an empty path, i.e. that already delivered (MD.3 / MD.4).
    neighbors_delivered: BTreeSet<ProcessId>,
}

impl InstanceState {
    fn new() -> Self {
        Self {
            tracker: DisjointPathTracker::new(),
            delivered: false,
            relayed_empty: false,
            neighbors_delivered: BTreeSet::new(),
        }
    }
}

/// One process running Dolev's reliable-communication protocol on an unknown topology.
#[derive(Debug, Clone)]
pub struct DolevProcess {
    id: ProcessId,
    f: usize,
    neighbors: Vec<ProcessId>,
    md: MdFlags,
    instances: HashMap<Content, InstanceState>,
    deliveries: Vec<Delivery>,
    next_seq: u32,
    gc: GcState,
    tracer: brb_trace::Tracer,
}

impl DolevProcess {
    /// Creates a Dolev process given its direct neighborhood.
    pub fn new(id: ProcessId, f: usize, neighbors: Vec<ProcessId>, md: MdFlags) -> Self {
        Self {
            id,
            f,
            neighbors,
            md,
            instances: HashMap::new(),
            deliveries: Vec::new(),
            next_seq: 0,
            gc: GcState::new(GcPolicy::DISABLED),
            tracer: brb_trace::Tracer::disabled(),
        }
    }

    /// Prunes the state of every instance whose retention window elapsed.
    fn run_gc(&mut self) {
        for id in self.gc.due() {
            self.instances.retain(|content, _| content.id != id);
            self.tracer
                .emit(self.id, id.source, id.seq, brb_trace::TraceEventKind::Retired);
        }
    }

    /// Number of node-disjoint paths required for delivery (`f + 1`).
    pub fn delivery_threshold(&self) -> usize {
        self.f + 1
    }

    /// The neighbors of this process.
    pub fn neighbors(&self) -> &[ProcessId] {
        &self.neighbors
    }

    /// Number of paths currently stored across all contents (memory proxy, Sec. 7.3).
    pub fn stored_paths(&self) -> usize {
        self.instances
            .values()
            .map(|i| i.tracker.path_count())
            .sum()
    }

    fn deliver(
        content: &Content,
        state: &mut InstanceState,
        deliveries: &mut Vec<Delivery>,
        actions: &mut Vec<Action<DolevMessage>>,
    ) {
        if state.delivered {
            return;
        }
        state.delivered = true;
        let delivery = Delivery {
            id: content.id,
            payload: content.payload.clone(),
        };
        deliveries.push(delivery.clone());
        actions.push(Action::Deliver(delivery));
    }

    /// Shared body of [`Protocol::broadcast`] / [`Protocol::broadcast_into`].
    fn broadcast_inner(&mut self, payload: Payload, actions: &mut Vec<Action<DolevMessage>>) {
        let id = BroadcastId::new(self.id, self.next_seq);
        self.next_seq += 1;
        self.tracer
            .emit(self.id, id.source, id.seq, brb_trace::TraceEventKind::Injected);
        let content = Content::new(id, payload);
        for &q in &self.neighbors {
            actions.push(Action::send(
                q,
                DolevMessage {
                    content: content.clone(),
                    path: Vec::new(),
                },
            ));
        }
        // The source delivers its own message immediately (Algorithm 2, lines 12–13).
        let state = self
            .instances
            .entry(content.clone())
            .or_insert_with(InstanceState::new);
        Self::deliver(&content, state, &mut self.deliveries, actions);
        state.relayed_empty = true;
        self.gc.on_delivered(id);
    }

    /// Shared body of [`Protocol::handle_message`] / [`Protocol::handle_message_into`].
    fn handle_message_inner(
        &mut self,
        from: ProcessId,
        message: DolevMessage,
        actions: &mut Vec<Action<DolevMessage>>,
    ) {
        let content = message.content.clone();
        let source = content.id.source;
        // Frames of a retired instance are dropped before they can recreate state.
        if self.gc.is_retired(content.id) {
            self.tracer.emit(
                self.id,
                content.id.source,
                content.id.seq,
                brb_trace::TraceEventKind::FrameDropped {
                    to: self.id,
                    cause: brb_trace::DropCause::GcRetired,
                },
            );
            return;
        }
        let state = self
            .instances
            .entry(content.clone())
            .or_insert_with(InstanceState::new);

        // An empty path received from a process other than the source signals that this
        // neighbor has delivered the content (it applied MD.2).
        if message.path.is_empty() && from != source {
            state.neighbors_delivered.insert(from);
        }

        // MD.4: ignore paths that contain the label of a neighbor known to have delivered.
        if self.md.md4
            && message
                .path
                .iter()
                .any(|p| state.neighbors_delivered.contains(p))
        {
            return;
        }

        // Intermediate nodes of the claimed route: traversed labels plus the relaying
        // neighbor, minus the source and ourselves.
        let mut intermediate = PathSet::from_iter_ids(message.path.iter().copied());
        intermediate.insert(from);
        intermediate.remove(source);
        intermediate.remove(self.id);
        let direct = from == source;

        let was_delivered = state.delivered;
        if !was_delivered {
            if direct {
                state.tracker.record_direct();
            } else {
                state.tracker.add_path(intermediate.clone(), from);
            }
            self.tracer.emit(
                self.id,
                content.id.source,
                content.id.seq,
                brb_trace::TraceEventKind::PathAccumulated {
                    paths: state.tracker.path_count(),
                },
            );
            let threshold_met = state.tracker.reaches(self.f + 1);
            let md1_delivery = self.md.md1 && direct;
            if threshold_met {
                self.tracer.emit(
                    self.id,
                    content.id.source,
                    content.id.seq,
                    brb_trace::TraceEventKind::DisjointReached {
                        disjoint: self.f + 1,
                    },
                );
            }
            if threshold_met || md1_delivery {
                Self::deliver(&content, state, &mut self.deliveries, actions);
                if self.md.md2 {
                    state.tracker.clear_paths();
                }
            }
        }

        // Relay logic.
        let newly_delivered = state.delivered && !was_delivered;
        if newly_delivered {
            self.gc.on_delivered(content.id);
        }
        if state.delivered {
            if self.md.md2 && !state.relayed_empty {
                // MD.2: forward the content with an empty path to all neighbors (skipping
                // the ones that already delivered when MD.3 is enabled).
                state.relayed_empty = true;
                for &q in &self.neighbors {
                    if q == from && !newly_delivered {
                        continue;
                    }
                    if self.md.md3 && state.neighbors_delivered.contains(&q) {
                        continue;
                    }
                    actions.push(Action::send(
                        q,
                        DolevMessage {
                            content: content.clone(),
                            path: Vec::new(),
                        },
                    ));
                }
                return;
            }
            if self.md.md5 && state.relayed_empty {
                // MD.5: stop relaying once delivered and the empty path has been forwarded.
                return;
            }
            if self.md.md2 && state.relayed_empty {
                // Already announced delivery with an empty path; nothing more to add even
                // without MD.5 (the empty path subsumes any further path we could relay).
                return;
            }
        }

        // Plain Dolev relay: forward the message with the extended path to every neighbor
        // not already on the path.
        let mut extended = message.path.clone();
        extended.push(from);
        for &q in &self.neighbors {
            if q == from || q == source || extended.contains(&q) {
                continue;
            }
            if self.md.md3 && state.neighbors_delivered.contains(&q) {
                continue;
            }
            actions.push(Action::send(
                q,
                DolevMessage {
                    content: content.clone(),
                    path: extended.clone(),
                },
            ));
        }
    }
}

impl Protocol for DolevProcess {
    type Message = DolevMessage;

    fn process_id(&self) -> ProcessId {
        self.id
    }

    fn next_seq(&self) -> u32 {
        self.next_seq
    }

    fn set_next_seq(&mut self, seq: u32) {
        self.next_seq = seq;
    }

    fn broadcast(&mut self, payload: Payload) -> Vec<Action<DolevMessage>> {
        self.gc.on_event();
        let mut actions = Vec::new();
        self.broadcast_inner(payload, &mut actions);
        self.run_gc();
        actions
    }

    fn handle_message(
        &mut self,
        from: ProcessId,
        message: DolevMessage,
    ) -> Vec<Action<DolevMessage>> {
        self.gc.on_event();
        let mut actions = Vec::new();
        self.handle_message_inner(from, message, &mut actions);
        self.run_gc();
        actions
    }

    fn broadcast_into(&mut self, payload: Payload, out: &mut ActionBuf<DolevMessage>) {
        self.gc.on_event();
        self.broadcast_inner(payload, out.as_mut_vec());
        self.run_gc();
    }

    fn handle_message_into(
        &mut self,
        from: ProcessId,
        message: DolevMessage,
        out: &mut ActionBuf<DolevMessage>,
    ) {
        self.gc.on_event();
        self.handle_message_inner(from, message, out.as_mut_vec());
        self.run_gc();
    }

    fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    fn message_size(message: &DolevMessage) -> usize {
        message.wire_size()
    }

    fn state_bytes(&self) -> usize {
        self.instances
            .values()
            .map(|i| i.tracker.approx_memory_bytes() + 8 * i.neighbors_delivered.len())
            .sum()
    }

    fn stored_paths(&self) -> usize {
        DolevProcess::stored_paths(self)
    }

    fn set_gc_policy(&mut self, policy: GcPolicy) {
        self.gc.set_policy(policy);
    }

    fn note_time(&mut self, now_ms: u64) {
        self.gc.note_time(now_ms);
    }

    fn gc_retired(&self) -> u64 {
        self.gc.retired_count()
    }

    fn set_tracer(&mut self, tracer: brb_trace::Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_graph::{generate, Graph};

    /// Synchronously floods all messages between processes built on `graph`, starting from
    /// a broadcast by `source`, with no Byzantine processes.
    fn run_broadcast(graph: &Graph, f: usize, md: MdFlags, source: ProcessId) -> Vec<DolevProcess> {
        let n = graph.node_count();
        let mut processes: Vec<DolevProcess> = (0..n)
            .map(|i| DolevProcess::new(i, f, graph.neighbors_vec(i), md))
            .collect();
        let mut queue: Vec<(ProcessId, Action<DolevMessage>)> = processes[source]
            .broadcast(Payload::from("payload"))
            .into_iter()
            .map(|a| (source, a))
            .collect();
        let mut steps = 0usize;
        while let Some((sender, action)) = queue.pop() {
            steps += 1;
            assert!(
                steps < 2_000_000,
                "message explosion: protocol did not quiesce"
            );
            if let Action::Send { to, message } = action {
                for a in processes[to].handle_message(sender, message) {
                    queue.push((to, a));
                }
            }
        }
        processes
    }

    fn everyone_delivered(processes: &[DolevProcess]) -> bool {
        processes.iter().all(|p| p.deliveries().len() == 1)
    }

    #[test]
    fn plain_dolev_delivers_on_a_ring_with_f0() {
        let g = generate::ring(5);
        let processes = run_broadcast(&g, 0, MdFlags::none(), 0);
        assert!(everyone_delivered(&processes));
    }

    #[test]
    fn plain_dolev_delivers_on_3_connected_graph_with_f1() {
        let g = generate::figure1_example();
        let processes = run_broadcast(&g, 1, MdFlags::none(), 0);
        assert!(everyone_delivered(&processes));
    }

    #[test]
    fn optimized_dolev_delivers_on_3_connected_graph_with_f1() {
        let g = generate::figure1_example();
        let processes = run_broadcast(&g, 1, MdFlags::all(), 3);
        assert!(everyone_delivered(&processes));
    }

    #[test]
    fn optimized_dolev_sends_fewer_messages_than_plain() {
        let g = generate::circulant(12, 2); // 4-regular, 4-connected
        let count = |md: MdFlags| {
            let n = g.node_count();
            let mut processes: Vec<DolevProcess> = (0..n)
                .map(|i| DolevProcess::new(i, 1, g.neighbors_vec(i), md))
                .collect();
            let mut queue: Vec<(ProcessId, Action<DolevMessage>)> = processes[0]
                .broadcast(Payload::from("m"))
                .into_iter()
                .map(|a| (0, a))
                .collect();
            let mut messages = 0usize;
            while let Some((sender, action)) = queue.pop() {
                if let Action::Send { to, message } = action {
                    messages += 1;
                    for a in processes[to].handle_message(sender, message) {
                        queue.push((to, a));
                    }
                }
            }
            messages
        };
        let plain = count(MdFlags::none());
        let optimized = count(MdFlags::all());
        assert!(
            optimized < plain,
            "MD.1-5 should reduce messages: optimized = {optimized}, plain = {plain}"
        );
    }

    #[test]
    fn direct_reception_with_md1_delivers_immediately() {
        let mut p = DolevProcess::new(1, 2, vec![0, 2], MdFlags::all());
        let content = Content::new(BroadcastId::new(0, 0), Payload::from("m"));
        let actions = p.handle_message(
            0,
            DolevMessage {
                content: content.clone(),
                path: vec![],
            },
        );
        assert!(actions.iter().any(|a| a.as_delivery().is_some()));
        assert_eq!(p.deliveries().len(), 1);
    }

    #[test]
    fn direct_reception_without_md1_does_not_suffice_when_f_positive() {
        let mut p = DolevProcess::new(1, 1, vec![0, 2, 3], MdFlags::none());
        let content = Content::new(BroadcastId::new(0, 0), Payload::from("m"));
        let actions = p.handle_message(
            0,
            DolevMessage {
                content: content.clone(),
                path: vec![],
            },
        );
        assert!(actions.iter().all(|a| a.as_delivery().is_none()));
        // A second, disjoint path completes the f+1 = 2 requirement.
        let actions = p.handle_message(
            2,
            DolevMessage {
                content,
                path: vec![0],
            },
        );
        assert!(actions.iter().any(|a| a.as_delivery().is_some()));
    }

    #[test]
    fn forged_paths_from_f_byzantine_neighbors_cannot_cause_spurious_delivery() {
        // f = 2: delivery needs 3 disjoint paths. Byzantine neighbors 5 and 6 forge many
        // paths, but all their paths go through themselves (the authenticated link appends
        // their label), so at most 2 disjoint paths can ever be formed.
        let mut p = DolevProcess::new(0, 2, vec![5, 6], MdFlags::none());
        let content = Content::new(BroadcastId::new(9, 0), Payload::from("forged"));
        for fake in 0..20 {
            for byz in [5usize, 6] {
                p.handle_message(
                    byz,
                    DolevMessage {
                        content: content.clone(),
                        path: vec![9, 10 + fake],
                    },
                );
            }
        }
        assert!(p.deliveries().is_empty());
    }

    #[test]
    fn md3_avoids_sending_to_delivered_neighbors() {
        let mut p = DolevProcess::new(1, 1, vec![0, 2, 3], MdFlags::all());
        let content = Content::new(BroadcastId::new(0, 0), Payload::from("m"));
        // Neighbor 2 tells us it delivered (empty path, not the source).
        p.handle_message(
            2,
            DolevMessage {
                content: content.clone(),
                path: vec![],
            },
        );
        // Now a relayed path arrives from 3; the relays must avoid neighbor 2.
        let actions = p.handle_message(
            3,
            DolevMessage {
                content: content.clone(),
                path: vec![5],
            },
        );
        for a in &actions {
            if let Action::Send { to, .. } = a {
                assert_ne!(*to, 2, "MD.3 must skip neighbors that delivered");
            }
        }
    }

    #[test]
    fn md4_ignores_paths_containing_delivered_neighbors() {
        let mut p = DolevProcess::new(1, 1, vec![0, 2, 3], MdFlags::all());
        let content = Content::new(BroadcastId::new(0, 0), Payload::from("m"));
        p.handle_message(
            2,
            DolevMessage {
                content: content.clone(),
                path: vec![],
            },
        );
        let actions = p.handle_message(
            3,
            DolevMessage {
                content,
                path: vec![2, 7],
            },
        );
        assert!(
            actions.is_empty(),
            "paths through a delivered neighbor are dropped"
        );
    }

    #[test]
    fn gc_retires_delivered_instances_and_drops_replayed_paths() {
        let mut p = DolevProcess::new(1, 1, vec![0, 2, 3], MdFlags::all());
        <DolevProcess as Protocol>::set_gc_policy(&mut p, GcPolicy::after_events(2));
        let content = Content::new(BroadcastId::new(0, 0), Payload::from("m"));
        // MD.1 direct reception delivers immediately and opens the retention window.
        p.handle_message(
            0,
            DolevMessage {
                content: content.clone(),
                path: vec![],
            },
        );
        assert_eq!(p.deliveries().len(), 1);
        // Unrelated traffic elapses the 2-event window and retires the instance.
        let other = Content::new(BroadcastId::new(2, 5), Payload::from("pad"));
        for _ in 0..2 {
            p.handle_message(
                3,
                DolevMessage {
                    content: other.clone(),
                    path: vec![2],
                },
            );
        }
        assert_eq!(<DolevProcess as Protocol>::gc_retired(&p), 1);
        let baseline = <DolevProcess as Protocol>::state_bytes(&p);
        // Replayed frames for the retired instance are dropped without any effect.
        for from in [0usize, 2, 3] {
            let actions = p.handle_message(
                from,
                DolevMessage {
                    content: content.clone(),
                    path: vec![],
                },
            );
            assert!(actions.is_empty(), "retired frames must be no-ops");
        }
        assert_eq!(p.deliveries().len(), 1, "no duplicate delivery");
        assert_eq!(
            <DolevProcess as Protocol>::state_bytes(&p),
            baseline,
            "replays must not resurrect retired state"
        );
    }

    #[test]
    fn md5_stops_relaying_after_delivery() {
        let g = generate::figure1_example();
        // Run an optimized broadcast, then poke a delivered process with a fresh path and
        // check it stays silent.
        let mut processes = run_broadcast(&g, 1, MdFlags::all(), 0);
        let content = Content::new(
            BroadcastId::new(0, 0),
            processes[0].deliveries()[0].payload.clone(),
        );
        let actions = processes[5].handle_message(
            6,
            DolevMessage {
                content,
                path: vec![0, 7],
            },
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn source_delivers_its_own_broadcast_once() {
        let mut p = DolevProcess::new(4, 1, vec![0, 1], MdFlags::all());
        let a1 = p.broadcast(Payload::from("a"));
        assert_eq!(a1.iter().filter(|a| a.as_delivery().is_some()).count(), 1);
        let a2 = p.broadcast(Payload::from("b"));
        assert_eq!(a2.iter().filter(|a| a.as_delivery().is_some()).count(), 1);
        assert_eq!(p.deliveries().len(), 2);
        assert_eq!(p.deliveries()[0].id, BroadcastId::new(4, 0));
        assert_eq!(p.deliveries()[1].id, BroadcastId::new(4, 1));
    }

    #[test]
    fn wire_size_matches_table3() {
        let m = DolevMessage {
            content: Content::new(BroadcastId::new(0, 0), Payload::filled(0, 16)),
            path: vec![1, 2, 3],
        };
        // 1 + 4 + 4 + 4 + 16 + 2 + 12 = 43.
        assert_eq!(m.wire_size(), 43);
        assert_eq!(DolevProcess::message_size(&m), 43);
    }

    #[test]
    fn state_bytes_and_stored_paths_grow() {
        let mut p = DolevProcess::new(0, 5, vec![1, 2, 3, 4, 5, 6, 7], MdFlags::none());
        assert_eq!(p.stored_paths(), 0);
        let content = Content::new(BroadcastId::new(9, 0), Payload::from("m"));
        for via in 1..6 {
            p.handle_message(
                via,
                DolevMessage {
                    content: content.clone(),
                    path: vec![9, 20 + via],
                },
            );
        }
        assert!(p.stored_paths() >= 5);
        assert!(p.state_bytes() > 0);
    }
}
