//! Deterministic discrete-event network simulator for the PBRB protocols.
//!
//! The paper's evaluation deploys a C++ implementation in Docker containers with
//! netem-controlled delays; this crate plays the equivalent role for the Rust
//! reproduction. It provides:
//!
//! * [`sim::Simulation`] — an event-driven simulator that runs any
//!   [`brb_core::protocol::Protocol`] implementation on a virtual clock, with per-message
//!   link delays and full byte accounting;
//! * [`delay::DelayModel`] — the paper's synchronous (50 ms) and asynchronous (50 ± 50 ms
//!   normal) link regimes;
//! * [`behavior::Behavior`] — node-level Byzantine behaviours (crash, message dropping,
//!   replay, mid-broadcast failure, targeted silence, flooding);
//! * [`churn::ChurnSpec`] — seeded, serializable churn timelines (link flaps,
//!   partition/heal, node restart with state loss, per-link asymmetric delay and loss
//!   overrides) compiled to ordered event lists shared with the live backends;
//! * [`metrics::RunMetrics`] — latency, network consumption and memory proxies;
//! * [`invariants`] — checkers for the four BRB properties over finished executions, used
//!   by the integration and property tests of every protocol stack;
//! * [`experiment`] — the high-level runner the benchmark harnesses use to regenerate the
//!   paper's tables and figures point by point;
//! * [`sweep`] — the parallel sweep engine: shards a `Vec<ExperimentSpec>` across worker
//!   threads with deterministic, worker-count-independent results.
//!
//! # Example: one experiment
//!
//! ```
//! use brb_core::config::Config;
//! use brb_sim::experiment::{run_experiment, ExperimentParams};
//!
//! let mut params = ExperimentParams::new(16, 5, 2, Config::bdopt_mbd1(16, 2));
//! params.crashed = 1;
//! params.seed = 42;
//! let result = run_experiment(&params);
//! assert!(result.complete());
//! println!("latency = {:?} ms, bytes = {}", result.latency_ms, result.bytes);
//! ```
//!
//! # Example: any stack in the simulator
//!
//! [`experiment::ExperimentParams::stack`] selects the protocol stack; the default is
//! the paper's Bracha–Dolev combination, and every other [`brb_core::stack::StackSpec`]
//! runs through the boxed engine + wire codec path of `brb_core::stack`:
//!
//! ```
//! use brb_core::{config::Config, stack::StackSpec};
//! use brb_sim::experiment::{run_experiment, ExperimentParams};
//!
//! let params = ExperimentParams::new(16, 5, 2, Config::bdopt_mbd1(16, 2))
//!     .with_stack(StackSpec::BrachaRoutedDolev);
//! assert!(run_experiment(&params).complete());
//! ```
//!
//! # Example: a parallel sweep
//!
//! A sweep is a list of labelled [`sweep::ExperimentSpec`]s. Specs sharing the same
//! `(n, connectivity, graph_seed)` run on the same generated topology, and the outcome
//! vector is bit-identical whatever the worker count:
//!
//! ```
//! use brb_core::config::Config;
//! use brb_sim::experiment::ExperimentParams;
//! use brb_sim::sweep::{run_sweep, summarize, ExperimentSpec};
//!
//! let specs: Vec<ExperimentSpec> = (0..4u64)
//!     .map(|run| {
//!         let mut params = ExperimentParams::new(12, 5, 2, Config::bdopt_mbd1(12, 2));
//!         params.seed = 100 + run;
//!         ExperimentSpec::new(format!("demo/run={run}"), 9_000 + run, params)
//!     })
//!     .collect();
//! let serial = run_sweep(&specs, 1);
//! let parallel = run_sweep(&specs, 2);
//! assert_eq!(serial, parallel, "outcomes never depend on the worker count");
//! let summary = summarize(&parallel);
//! assert_eq!(summary.completed, 4);
//! assert!(summary.latency_ms.mean() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod churn;
pub mod consensus;
pub mod delay;
pub mod experiment;
pub mod invariants;
pub mod metrics;
pub mod sim;
pub mod sweep;
pub mod time;
pub mod workload;

pub use behavior::Behavior;
pub use churn::{ChurnAction, ChurnClause, ChurnEvent, ChurnSpec, LinkState, RestartMemory};
pub use consensus::{
    build_consensus_sim, honest_decisions, honest_processes, run_consensus, run_consensus_recorded,
    ConsensusStats,
};
pub use delay::DelayModel;
pub use experiment::{
    run_experiment, run_experiment_on_graph, run_experiment_recorded, run_experiment_traced,
    ExperimentParams, ExperimentRecord, ExperimentResult, TracedRecord,
};
pub use invariants::{check_brb, check_brb_processes, BroadcastRecord, Violation};
pub use metrics::RunMetrics;
pub use sim::Simulation;
pub use sweep::{run_sweep, summarize, ExperimentSpec, SweepOutcome, SweepSummary};
pub use time::SimTime;
pub use workload::{run_workload, workload_stats};
