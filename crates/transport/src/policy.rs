//! Composable link decorators: the simulator's scenario vocabulary on live transports.
//!
//! The discrete-event simulator (`brb-sim`) has always been able to run the paper's
//! evaluation scenarios — Byzantine [`Behavior`]s on chosen processes (Sec. 3's drop /
//! duplicate / amplify adversaries) and the Sec. 7.1 delay regimes ([`DelayModel`]) —
//! but the live backends could only run all-correct nodes under a crude `mean ± jitter`
//! sleep. This module closes that gap with two [`Transport`] decorators:
//!
//! * [`FaultyLink`] applies a [`Behavior`] at the frame level: for every outbound frame
//!   it asks [`Behavior::outbound_copies`] — the *same* decision procedure the simulator
//!   uses — how many copies to put on the wire (0 drops, 2 replays, `n` floods);
//! * [`DelayedLink`] applies a per-frame transmission delay through a background *delay
//!   line*: either the legacy `mean ± uniform(jitter)` regime of the old node loops, or
//!   a [`DelayModel`] sampled per copy and scaled to wall-clock time —
//!   `Scaled { model, scale }` with `scale = 1.0` replays the paper's 50 ms / 50 ± 50 ms
//!   regimes in real time, without blocking the sending node (delays act on the links in
//!   parallel, as in the simulator).
//!
//! Decorators wrap any [`Transport`], so every future live-backend scenario is a
//! one-line wrap instead of a forked node loop. [`crate::DriverOptions::decorate`]
//! composes them in the canonical order (behavior outermost, so dropped frames incur no
//! delay and amplified copies are delayed independently, matching the simulator).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use brb_core::types::ProcessId;
use brb_sim::{Behavior, DelayModel};
use brb_trace::{DropCause, NodeCounters, TraceEventKind, Tracer};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::churn::ChurnHandle;
use crate::link::Frame;
use crate::transport::{OutFrame, SendReceipt, Transport};

/// Observability handles threaded through one node's link decorators: the always-on
/// counter registry (drop accounting by cause, delay-line occupancy peaks) plus the
/// node's structured tracer (disabled unless the deployment attached a sink).
///
/// Cheap to clone — an [`Arc`] and a [`Tracer`] handle — so every decorator in a
/// node's stack shares the same registry.
#[derive(Debug, Clone)]
pub struct LinkObserver {
    node: ProcessId,
    counters: Arc<NodeCounters>,
    tracer: Tracer,
}

impl LinkObserver {
    /// Binds the observer for `node` to a shared counter registry and tracer.
    pub fn new(node: ProcessId, counters: Arc<NodeCounters>, tracer: Tracer) -> Self {
        Self {
            node,
            counters,
            tracer,
        }
    }

    /// A free-standing observer for `node`: fresh counters, tracing disabled (what a
    /// decorator built outside a [`crate::NodeDriver`] gets).
    pub fn detached(node: ProcessId) -> Self {
        Self::new(node, Arc::new(NodeCounters::default()), Tracer::disabled())
    }

    /// The shared counter registry.
    pub fn counters(&self) -> &Arc<NodeCounters> {
        &self.counters
    }

    /// Records one dropped frame: bumps the per-cause counter and emits a
    /// [`TraceEventKind::FrameDropped`] when tracing is attached.
    pub fn frame_dropped(&self, to: ProcessId, cause: DropCause) {
        self.counters.record_drop(cause);
        self.tracer
            .emit_frame(self.node, TraceEventKind::FrameDropped { to, cause });
    }

    /// Records the delay line's current occupancy (peak-tracked; also emitted as a
    /// [`TraceEventKind::QueueDepth`] event when tracing is attached).
    pub fn queue_depth(&self, depth: usize) {
        self.counters.note_queue_depth(depth as u64);
        self.tracer
            .emit_frame(self.node, TraceEventKind::QueueDepth { depth });
    }
}

/// Per-frame transmission delay applied by a [`DelayedLink`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum LinkDelay {
    /// Transmit immediately (the usual setting for tests).
    #[default]
    None,
    /// The legacy regime of the old per-backend node loops: sleep for
    /// `mean + uniform(0..=jitter)` before each outbound frame.
    MeanJitter {
        /// Mean transmission delay.
        mean: Duration,
        /// Upper bound of the uniform jitter added to the mean.
        jitter: Duration,
    },
    /// Sample a [`DelayModel`] per transmitted copy and sleep for the sampled virtual
    /// duration multiplied by `scale` — `1.0` replays the paper's regimes in real time,
    /// smaller factors compress them so CI-sized runs stay fast while keeping the
    /// *shape* of the delay distribution.
    Scaled {
        /// The simulator delay model to sample.
        model: DelayModel,
        /// Wall-clock scale factor applied to each sampled delay.
        scale: f64,
    },
}

impl LinkDelay {
    /// Whether this delay ever sleeps.
    pub fn is_none(&self) -> bool {
        matches!(self, LinkDelay::None)
    }
}

/// The frame-level fault and delay policy of one process's links: which [`Behavior`] its
/// outbound frames are subjected to and which [`LinkDelay`] paces them.
///
/// This is the unit [`crate::DriverOptions`] resolves per process and
/// [`LinkPolicy::decorate`] turns into a decorated [`Transport`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinkPolicy {
    /// Byzantine behavior applied at the frame level ([`Behavior::Correct`] is a no-op
    /// and adds no decorator).
    pub behavior: Behavior,
    /// Transmission delay applied per frame ([`LinkDelay::None`] adds no decorator).
    pub delay: LinkDelay,
}

impl LinkPolicy {
    /// Wraps `base` in the decorators this policy calls for, innermost first: the delay
    /// line (each transmitted copy samples its own delay), then the behavior (dropped
    /// frames never enter the line), mirroring the simulator's per-copy delay sampling.
    ///
    /// `seed` derives the decorators' RNG streams; give each process a distinct seed
    /// (the driver uses `options.seed + process id`) so jitter and drop decisions are
    /// uncorrelated across processes but reproducible per deployment.
    pub fn decorate(&self, base: Box<dyn Transport>, seed: u64) -> Box<dyn Transport> {
        self.decorate_observed(base, seed, None)
    }

    /// [`LinkPolicy::decorate`] with the decorators' drop/occupancy accounting routed
    /// into `observer` (what [`crate::NodeDriver`] installs, so a `NodeReport` can
    /// break drops down by cause).
    pub fn decorate_observed(
        &self,
        base: Box<dyn Transport>,
        seed: u64,
        observer: Option<LinkObserver>,
    ) -> Box<dyn Transport> {
        let mut transport = base;
        if !self.delay.is_none() {
            transport = Box::new(match &observer {
                Some(obs) => {
                    DelayedLink::observed(transport, self.delay.clone(), seed, obs.clone())
                }
                None => DelayedLink::new(transport, self.delay.clone(), seed),
            });
        }
        if self.behavior.is_byzantine() {
            // A distinct stream from the jitter RNG, so enabling a delay model does not
            // shift which frames a Lossy behavior drops.
            let mut faulty = FaultyLink::new(
                transport,
                self.behavior.clone(),
                seed ^ 0x5EED_B44A_D001_CAFE,
            );
            if let Some(obs) = &observer {
                faulty = faulty.with_observer(obs.clone());
            }
            transport = Box::new(faulty);
        }
        transport
    }
}

/// Frame-level [`Behavior`] injection: decides per outbound frame how many copies reach
/// the inner transport, with the same [`Behavior::outbound_copies`] procedure the
/// simulator applies per message.
pub struct FaultyLink<T> {
    inner: T,
    behavior: Behavior,
    /// Outbound frames this process has attempted so far (the `already_sent` counter of
    /// [`Behavior::outbound_copies`], driving [`Behavior::FailsAfter`]).
    attempted: usize,
    rng: StdRng,
    /// Drop accounting ([`DropCause::Behavior`]); `None` leaves drops unobserved.
    observer: Option<LinkObserver>,
}

impl<T: Transport> FaultyLink<T> {
    /// Wraps `inner` with the given behavior; `seed` fixes the drop/copy decisions.
    pub fn new(inner: T, behavior: Behavior, seed: u64) -> Self {
        Self {
            inner,
            behavior,
            attempted: 0,
            rng: StdRng::seed_from_u64(seed),
            observer: None,
        }
    }

    /// Routes this link's behaviour-caused drops into `observer`'s counter registry.
    #[must_use]
    pub fn with_observer(mut self, observer: LinkObserver) -> Self {
        self.observer = Some(observer);
        self
    }
}

impl<T: Transport> Transport for FaultyLink<T> {
    fn inbound(&self) -> &Receiver<Frame> {
        self.inner.inbound()
    }

    fn peers(&self) -> Vec<ProcessId> {
        self.inner.peers()
    }

    fn send(&mut self, to: ProcessId, frame: &Bytes, wire_size: usize) -> usize {
        let copies = self
            .behavior
            .outbound_copies(to, self.attempted, &mut self.rng);
        self.attempted += 1;
        if copies == 0 {
            if let Some(observer) = &self.observer {
                observer.frame_dropped(to, DropCause::Behavior);
            }
            return 0;
        }
        let mut transmitted = 0;
        for _ in 0..copies {
            transmitted += self.inner.send(to, frame, wire_size);
        }
        transmitted
    }

    fn send_batch(&mut self, to: ProcessId, frames: &[OutFrame]) -> SendReceipt {
        // Per-frame semantics inside the batch: each frame draws its own behavior
        // decision in burst order (same RNG stream and `attempted` progression as the
        // frame-at-a-time path), dropped frames leave the burst, amplified frames
        // contribute extra copies — and the surviving copies go down as one batch.
        let mut surviving: Vec<OutFrame> = Vec::with_capacity(frames.len());
        for f in frames {
            let copies = self
                .behavior
                .outbound_copies(to, self.attempted, &mut self.rng);
            self.attempted += 1;
            if copies == 0 {
                if let Some(observer) = &self.observer {
                    observer.frame_dropped(to, DropCause::Behavior);
                }
                continue;
            }
            for _ in 0..copies {
                surviving.push(f.clone());
            }
        }
        if surviving.is_empty() {
            return SendReceipt::default();
        }
        self.inner.send_batch(to, &surviving)
    }
}

/// Per-frame transmission delay: a *delay line*. Each outbound frame is stamped with a
/// deadline sampled from the [`LinkDelay`] and handed to a background forwarder thread
/// that owns the inner transport and transmits the frame once its deadline passes.
///
/// Delaying this way keeps the node's event loop free — like the simulator, where a
/// message in flight does not stop its sender from processing the next event — so a
/// wall-clock [`LinkDelay::Scaled`] regime measures *network* delay, not an artificial
/// serialization of the node's outbound frames. The forwarder holds queued frames in a
/// deadline-ordered priority queue and transmits each one when *its own* deadline
/// passes, so with jittered models a frame sampled short overtakes an earlier frame
/// sampled long — the reordering the paper's asynchronous regime is about, and exactly
/// what the simulator's event queue does. Frames sharing a deadline keep their enqueue
/// order. Frames still queued when the node shuts down are transmitted at their
/// deadlines before the forwarder exits, unless the whole deployment is being torn down.
pub struct DelayedLink {
    /// Clone of the inner transport's inbound stream (the inner transport itself moves
    /// into the forwarder thread).
    inbound: Receiver<Frame>,
    /// Snapshot of the inner transport's peer set, so `send` can report the copy count
    /// exactly (the forwarder's own return value arrives too late to count).
    peers: Vec<ProcessId>,
    line: Sender<Queued>,
    delay: LinkDelay,
    rng: StdRng,
    /// Monotone enqueue counter: the stable tie-break for frames due at the same
    /// instant, so equal-deadline frames transmit in send order.
    next_seq: u64,
    /// When the deployment runs a churn schedule: the shared handle and this link's
    /// sending process, consulted per frame for the per-directed-link delay override
    /// (added on top of the sampled delay, exactly like the simulator adds the override
    /// to each copy's sampled delay).
    churn: Option<(ChurnHandle, ProcessId)>,
    /// Drop accounting for non-neighbor sends ([`DropCause::NonNeighbor`]); the
    /// forwarder thread holds its own clone for the occupancy peaks.
    observer: Option<LinkObserver>,
}

/// One frame in flight on the delay line, ordered by `(due, seq)`.
#[derive(Debug)]
struct Queued {
    due: Instant,
    seq: u64,
    to: ProcessId,
    frame: Bytes,
    wire_size: usize,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl Eq for Queued {}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.seq).cmp(&(other.due, other.seq))
    }
}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl DelayedLink {
    /// Wraps `inner` with the given delay; `seed` fixes the jitter stream (the old node
    /// loops seeded it with `options.seed + process id`, and so does the driver).
    pub fn new<T: Transport + 'static>(inner: T, delay: LinkDelay, seed: u64) -> Self {
        Self::build(inner, delay, seed, None)
    }

    /// Like [`DelayedLink::new`], but with non-neighbor drops and delay-line occupancy
    /// routed into `observer`'s counter registry.
    pub fn observed<T: Transport + 'static>(
        inner: T,
        delay: LinkDelay,
        seed: u64,
        observer: LinkObserver,
    ) -> Self {
        Self::build(inner, delay, seed, Some(observer))
    }

    fn build<T: Transport + 'static>(
        mut inner: T,
        delay: LinkDelay,
        seed: u64,
        observer: Option<LinkObserver>,
    ) -> Self {
        let inbound = inner.inbound().clone();
        let peers = inner.peers();
        let (line, queue) = unbounded::<Queued>();
        let line_observer = observer.clone();
        std::thread::spawn(move || {
            // Earliest deadline first, enqueue order on ties; the forwarder sleeps only
            // until the *earliest* pending deadline, so a short-sampled frame never
            // waits behind a long-sampled one that entered the line before it.
            let mut pending: BinaryHeap<Reverse<Queued>> = BinaryHeap::new();
            // Peak occupancy of the line (Sec. satellite accounting): measured on every
            // enqueue, where the heap is at its largest.
            let note_depth = |pending: &BinaryHeap<Reverse<Queued>>| {
                if let Some(observer) = &line_observer {
                    observer.queue_depth(pending.len());
                }
            };
            loop {
                match pending.peek() {
                    Some(Reverse(next)) => {
                        let now = Instant::now();
                        if next.due <= now {
                            let Reverse(item) = pending.pop().expect("peeked item exists");
                            inner.send(item.to, &item.frame, item.wire_size);
                            continue;
                        }
                        match queue.recv_timeout(next.due - now) {
                            Ok(item) => {
                                pending.push(Reverse(item));
                                note_depth(&pending);
                            }
                            Err(RecvTimeoutError::Timeout) => {}
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    }
                    None => match queue.recv() {
                        Ok(item) => {
                            pending.push(Reverse(item));
                            note_depth(&pending);
                        }
                        Err(_) => break,
                    },
                }
            }
            // The node dropped its handle: flush what is still in flight, each frame at
            // its own deadline.
            while let Some(Reverse(item)) = pending.pop() {
                let now = Instant::now();
                if item.due > now {
                    std::thread::sleep(item.due - now);
                }
                inner.send(item.to, &item.frame, item.wire_size);
            }
        });
        Self {
            inbound,
            peers,
            line,
            delay,
            rng: StdRng::seed_from_u64(seed),
            next_seq: 0,
            churn: None,
            observer,
        }
    }

    /// Like [`DelayedLink::new`], but each outbound frame additionally incurs the
    /// churn schedule's per-directed-link delay override for `id -> to` (scaled to
    /// wall-clock time by the handle), on top of its sampled delay. With
    /// [`LinkDelay::None`] the line carries *only* the overrides — the form a churned
    /// deployment uses when no background delay model is configured.
    pub fn with_churn<T: Transport + 'static>(
        inner: T,
        delay: LinkDelay,
        seed: u64,
        handle: ChurnHandle,
        id: ProcessId,
    ) -> Self {
        Self::new(inner, delay, seed).churned(handle, id)
    }

    /// Adds the churn schedule's per-directed-link delay overrides to an already built
    /// line (composes with [`DelayedLink::observed`]).
    #[must_use]
    pub fn churned(mut self, handle: ChurnHandle, id: ProcessId) -> Self {
        self.churn = Some((handle, id));
        self
    }

    /// Samples one transmission delay.
    fn sample(&mut self) -> Duration {
        match &self.delay {
            LinkDelay::None => Duration::ZERO,
            LinkDelay::MeanJitter { mean, jitter } => {
                let jitter_micros = if jitter.as_micros() > 0 {
                    self.rng.gen_range(0..=jitter.as_micros() as u64)
                } else {
                    0
                };
                *mean + Duration::from_micros(jitter_micros)
            }
            LinkDelay::Scaled { model, scale } => {
                let sampled = model.sample(&mut self.rng);
                Duration::from_micros(sampled.as_micros()).mul_f64(*scale)
            }
        }
    }
}

impl Transport for DelayedLink {
    fn inbound(&self) -> &Receiver<Frame> {
        &self.inbound
    }

    fn peers(&self) -> Vec<ProcessId> {
        self.peers.clone()
    }

    fn send(&mut self, to: ProcessId, frame: &Bytes, wire_size: usize) -> usize {
        // Frames to non-neighbors are dropped (and not counted) here rather than in the
        // forwarder, whose return value would arrive too late for the accounting — so a
        // delayed transport reports the same copy counts as an undelayed one.
        if !self.peers.contains(&to) {
            if let Some(observer) = &self.observer {
                observer.frame_dropped(to, DropCause::NonNeighbor);
            }
            return 0;
        }
        let extra = match &self.churn {
            Some((handle, id)) => handle.extra_delay(*id, to),
            None => Duration::ZERO,
        };
        let item = Queued {
            due: Instant::now() + self.sample() + extra,
            seq: self.next_seq,
            to,
            frame: frame.clone(),
            wire_size,
        };
        self.next_seq += 1;
        if self.line.send(item).is_ok() {
            1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::build_links;
    use crate::transport::ChannelTransport;

    fn pair() -> (ChannelTransport, ChannelTransport) {
        let (mut mailboxes, mut senders) = build_links(2, &[(0, 1)]);
        let t1 = ChannelTransport::new(mailboxes.pop().unwrap(), senders.pop().unwrap());
        let t0 = ChannelTransport::new(mailboxes.pop().unwrap(), senders.pop().unwrap());
        (t0, t1)
    }

    #[test]
    fn faulty_link_batch_matches_frame_at_a_time_accounting() {
        // Same behavior, same seed: a burst through send_batch must draw the exact
        // per-frame decisions the frame-at-a-time path draws, so receipts and the
        // surviving message sequences are identical.
        let frames: Vec<OutFrame> = (0..16)
            .map(|i| OutFrame::new(Bytes::from(vec![i as u8; 4]), 50 + i as usize))
            .collect();
        for behavior in [
            Behavior::Lossy(0.5),
            Behavior::Replayer,
            Behavior::FailsAfter(7),
            Behavior::Crash,
            Behavior::SilentTowards(vec![1]),
        ] {
            let (t0, t1) = pair();
            let mut reference = FaultyLink::new(t0, behavior.clone(), 99);
            let mut per_frame = SendReceipt::default();
            for f in &frames {
                per_frame.record(reference.send(1, &f.frame, f.wire_size), f.wire_size);
            }
            let mut survived_ref: Vec<Bytes> = Vec::new();
            while let Ok(frame) = t1.inbound().try_recv() {
                survived_ref.push(frame.bytes);
            }

            let (t0, t1) = pair();
            let mut batched = FaultyLink::new(t0, behavior.clone(), 99);
            let receipt = batched.send_batch(1, &frames);
            let mut survived: Vec<Bytes> = Vec::new();
            while let Ok(frame) = t1.inbound().try_recv() {
                if frame.batch {
                    survived
                        .extend(brb_core::wire::split_batch(&frame.bytes).expect("valid batch"));
                } else {
                    survived.push(frame.bytes);
                }
            }
            assert_eq!(receipt, per_frame, "{behavior:?} receipt identity");
            assert_eq!(survived, survived_ref, "{behavior:?} surviving frames");
        }
    }

    #[test]
    fn faulty_link_with_crash_sends_nothing() {
        let (t0, t1) = pair();
        let mut faulty = FaultyLink::new(t0, Behavior::Crash, 1);
        assert_eq!(faulty.send(1, &Bytes::from_static(b"x"), 1), 0);
        assert!(t1.inbound().is_empty());
    }

    #[test]
    fn faulty_link_with_replayer_duplicates_frames() {
        let (t0, t1) = pair();
        let mut faulty = FaultyLink::new(t0, Behavior::Replayer, 1);
        assert_eq!(faulty.send(1, &Bytes::from_static(b"x"), 1), 2);
        assert_eq!(t1.inbound().len(), 2);
    }

    #[test]
    fn faulty_link_fails_after_the_configured_count() {
        let (t0, t1) = pair();
        let mut faulty = FaultyLink::new(t0, Behavior::FailsAfter(2), 1);
        assert_eq!(faulty.send(1, &Bytes::from_static(b"a"), 1), 1);
        assert_eq!(faulty.send(1, &Bytes::from_static(b"b"), 1), 1);
        assert_eq!(faulty.send(1, &Bytes::from_static(b"c"), 1), 0);
        assert_eq!(t1.inbound().len(), 2);
    }

    #[test]
    fn silent_towards_drops_only_the_victims() {
        let (mut mailboxes, mut senders) = build_links(3, &[(0, 1), (0, 2)]);
        let mailbox2 = mailboxes.pop().unwrap();
        let mailbox1 = mailboxes.pop().unwrap();
        let t0 = ChannelTransport::new(mailboxes.pop().unwrap(), senders.swap_remove(0));
        let mut faulty = FaultyLink::new(t0, Behavior::SilentTowards(vec![1]), 1);
        assert_eq!(faulty.send(1, &Bytes::from_static(b"x"), 1), 0);
        assert_eq!(faulty.send(2, &Bytes::from_static(b"y"), 1), 1);
        assert!(mailbox1.receiver().is_empty());
        assert_eq!(mailbox2.receiver().len(), 1);
    }

    #[test]
    fn lossy_link_drops_roughly_the_requested_fraction() {
        let (t0, t1) = pair();
        let mut faulty = FaultyLink::new(t0, Behavior::Lossy(0.5), 7);
        let sent: usize = (0..1000)
            .map(|_| faulty.send(1, &Bytes::from_static(b"x"), 1))
            .sum();
        assert!((300..700).contains(&sent), "sent {sent} of 1000");
        assert_eq!(t1.inbound().len(), sent);
    }

    #[test]
    fn scaled_delay_model_delays_frames_without_blocking_the_sender() {
        let (t0, t1) = pair();
        // 100 ms constant virtual delay at scale 0.2 => 20 ms wall-clock per frame.
        let delay = LinkDelay::Scaled {
            model: DelayModel::Constant { micros: 100_000 },
            scale: 0.2,
        };
        let mut delayed = DelayedLink::new(t0, delay, 3);
        let start = Instant::now();
        for _ in 0..3 {
            assert_eq!(delayed.send(1, &Bytes::from_static(b"x"), 1), 1);
        }
        assert!(
            start.elapsed() < Duration::from_millis(20),
            "the delay line must not block the sender"
        );
        for _ in 0..3 {
            t1.inbound().recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert!(
            start.elapsed() >= Duration::from_millis(20),
            "frames arrive no earlier than their sampled delay"
        );
    }

    #[test]
    fn delay_line_does_not_count_frames_to_non_neighbors() {
        let (t0, t1) = pair();
        let delay = LinkDelay::Scaled {
            model: DelayModel::Constant { micros: 100 },
            scale: 1.0,
        };
        let mut delayed = DelayedLink::new(t0, delay, 3);
        assert_eq!(delayed.peers(), vec![1]);
        // Same accounting as the undelayed transport: a non-neighbor send is 0 copies.
        assert_eq!(delayed.send(9, &Bytes::from_static(b"nobody"), 6), 0);
        assert_eq!(delayed.send(1, &Bytes::from_static(b"neighbor"), 8), 1);
        assert_eq!(
            t1.inbound()
                .recv_timeout(Duration::from_secs(5))
                .unwrap()
                .from,
            0
        );
        assert!(t1.inbound().is_empty());
    }

    #[test]
    fn delay_line_reorders_by_deadline_not_enqueue_order() {
        let (t0, t1) = pair();
        let delayed = DelayedLink::new(t0, LinkDelay::None, 1);
        // Feed the line directly with explicit deadlines: a frame enqueued *first* with
        // a long delay must be overtaken by a later frame with a short delay.
        let now = Instant::now();
        delayed
            .line
            .send(Queued {
                due: now + Duration::from_millis(150),
                seq: 0,
                to: 1,
                frame: Bytes::from_static(b"slow"),
                wire_size: 4,
            })
            .unwrap();
        delayed
            .line
            .send(Queued {
                due: now + Duration::from_millis(20),
                seq: 1,
                to: 1,
                frame: Bytes::from_static(b"fast"),
                wire_size: 4,
            })
            .unwrap();
        let first = t1.inbound().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            first.bytes.as_ref(),
            b"fast",
            "the short-deadline frame overtakes the earlier long one"
        );
        let second = t1.inbound().recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(second.bytes.as_ref(), b"slow");
    }

    #[test]
    fn queued_frames_order_by_deadline_then_enqueue_seq() {
        let base = Instant::now();
        let item = |due: Instant, seq: u64| Queued {
            due,
            seq,
            to: 1,
            frame: Bytes::from_static(b"x"),
            wire_size: 1,
        };
        let early = base + Duration::from_millis(10);
        let late = base + Duration::from_millis(50);
        assert!(item(early, 9) < item(late, 0), "the deadline dominates");
        assert!(
            item(early, 0) < item(early, 1),
            "equal deadlines fall back to enqueue order"
        );
    }

    #[test]
    fn policy_composition_drops_before_delaying() {
        let (t0, _t1) = pair();
        let policy = LinkPolicy {
            behavior: Behavior::Crash,
            delay: LinkDelay::Scaled {
                model: DelayModel::Constant { micros: 500_000 },
                scale: 1.0,
            },
        };
        let mut decorated = policy.decorate(Box::new(t0), 9);
        // A dropped frame must not pay the 500 ms delay: the behavior sits outside.
        let start = std::time::Instant::now();
        assert_eq!(decorated.send(1, &Bytes::from_static(b"x"), 1), 0);
        assert!(start.elapsed() < Duration::from_millis(100));
    }

    #[test]
    fn correct_policy_adds_no_decorators_but_still_routes() {
        let (t0, t1) = pair();
        let mut decorated = LinkPolicy::default().decorate(Box::new(t0), 4);
        assert_eq!(decorated.send(1, &Bytes::from_static(b"plain"), 5), 1);
        assert_eq!(t1.inbound().recv().unwrap().from, 0);
    }
}
