//! Additional topology families beyond the paper's random regular graphs.
//!
//! The paper's evaluation (Sec. 7.1) only uses random regular graphs, but a reusable
//! library for Byzantine reliable broadcast on partially connected networks needs a richer
//! set of topologies, for three reasons:
//!
//! * **Worst-case connectivity**: Harary graphs `H_{k,n}` are the `k`-vertex-connected
//!   graphs with the minimum possible number of edges, so they stress Dolev's disjoint-path
//!   verification far more than a random regular graph of the same connectivity.
//! * **Structured deployments**: grids, tori and (generalized) wheels model sensor fields
//!   and hub-and-spoke overlays, the kinds of deployments the paper's introduction
//!   motivates (e.g. temperature monitoring).
//! * **Robustness tests**: small-world (Watts–Strogatz) and preferential-attachment
//!   (Barabási–Albert) graphs exercise the protocols on irregular degree distributions
//!   where quorum-based phases and path exploration behave differently.
//!
//! All generators produce simple undirected [`Graph`]s and are deterministic for a fixed
//! seed where randomness is involved.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::generate::GenerateError;
use crate::graph::{Graph, ProcessId};

/// Path graph `P_n`: nodes `0 — 1 — ... — n-1`. Vertex connectivity 1 for `n >= 2`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 1..n {
        g.add_edge(u - 1, u);
    }
    g
}

/// Star graph `S_n`: node 0 is connected to every other node. Vertex connectivity 1.
///
/// The star is the canonical topology on which reliable communication with `f >= 1`
/// Byzantine processes is impossible (removing the hub disconnects the graph), which makes
/// it useful for negative tests.
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 1..n {
        g.add_edge(0, u);
    }
    g
}

/// Wheel graph `W_n`: a hub (node 0) connected to every node of a cycle over nodes
/// `1..n`. Vertex connectivity 3 for `n >= 5`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "a wheel needs at least 4 nodes");
    let mut g = star(n);
    for i in 1..n {
        let next = if i + 1 < n { i + 1 } else { 1 };
        g.add_edge(i, next);
    }
    g
}

/// Generalized wheel `W(m, r)`: `m` hub nodes forming a clique, each connected to every
/// node of a rim cycle of length `r`.
///
/// Generalized wheels are the classic family of *minimally* `(m+2)`-vertex-connected
/// graphs used in the reliable-communication literature: the vertex connectivity is exactly
/// `m + 2` (for `r >= 4`), so a generalized wheel with `m = 2f - 1` hubs is a tight
/// `(2f+1)`-connected topology for Dolev's protocol.
///
/// Nodes `0..m` are the hubs; nodes `m..m+r` are the rim.
///
/// # Panics
///
/// Panics if `m == 0` or `r < 3`.
pub fn generalized_wheel(m: usize, r: usize) -> Graph {
    assert!(m >= 1, "a generalized wheel needs at least one hub");
    assert!(r >= 3, "the rim must be a cycle of length at least 3");
    let n = m + r;
    let mut g = Graph::new(n);
    // Hub clique.
    for u in 0..m {
        for v in (u + 1)..m {
            g.add_edge(u, v);
        }
    }
    // Rim cycle.
    for i in 0..r {
        g.add_edge(m + i, m + ((i + 1) % r));
    }
    // Spokes.
    for u in 0..m {
        for i in 0..r {
            g.add_edge(u, m + i);
        }
    }
    g
}

/// Two-dimensional grid of `rows x cols` nodes; with `wrap = true` the grid becomes a
/// torus (every node has degree 4, vertex connectivity 4 for large enough dimensions).
///
/// Node `(r, c)` has identifier `r * cols + c`.
pub fn grid(rows: usize, cols: usize, wrap: bool) -> Graph {
    let n = rows * cols;
    let mut g = Graph::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            } else if wrap && cols > 2 {
                g.add_edge(id(r, c), id(r, 0));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            } else if wrap && rows > 2 {
                g.add_edge(id(r, c), id(0, c));
            }
        }
    }
    g
}

/// Planar grid: a `rows x cols` grid with one diagonal per face, alternating in
/// orientation like a checkerboard — still planar (each diagonal lies inside its own
/// face) but strictly better connected than the plain grid, whose connectivity 2 is
/// below the `f + 1` threshold any single-fault scenario needs.
///
/// Node `(r, c)` has identifier `r * cols + c`, like [`grid`]. The face at `(r, c)` gets
/// the diagonal `(r, c) — (r+1, c+1)` when `r + c` is even and `(r, c+1) — (r+1, c)`
/// when odd. Planar graphs are the sparsest family in "On Byzantine Broadcast in Planar
/// Graphs" (see PAPERS.md); this is the deterministic member used by the churn golden
/// scenarios.
///
/// # Panics
///
/// Panics if either dimension is smaller than 2 (no face to triangulate).
pub fn planar_grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 2 && cols >= 2, "a planar grid needs a face");
    let mut g = grid(rows, cols, false);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows - 1 {
        for c in 0..cols - 1 {
            if (r + c).is_multiple_of(2) {
                g.add_edge(id(r, c), id(r + 1, c + 1));
            } else {
                g.add_edge(id(r, c + 1), id(r + 1, c));
            }
        }
    }
    g
}

/// Geometric random graph `G(n, radius)`: `n` points drawn uniformly in the unit square
/// (a pure function of `(n, radius, seed)`), with an edge between every pair at
/// Euclidean distance at most `radius`.
///
/// The standard model of ad-hoc wireless / sensor deployments — the "loosely connected
/// networks" regime of PAPERS.md, where connectivity is local and partitions are a
/// radius away. Connectivity is *not* guaranteed; callers needing a floor verify with
/// [`crate::connectivity::is_k_connected`] and re-seed, exactly as with
/// [`watts_strogatz`].
pub fn geometric_random_graph(n: usize, radius: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    // Fixed draw order (x then y per node) makes the embedding part of the function.
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut g = Graph::new(n);
    let r2 = radius * radius;
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = points[u].0 - points[v].0;
            let dy = points[u].1 - points[v].1;
            if dx * dx + dy * dy <= r2 {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// Bounded-degree expander: the union of `d/2` independent seeded Hamiltonian cycles
/// over `n` nodes (a pure function of `(n, d, seed)`).
///
/// Unions of random Hamiltonian cycles are expanders with high probability while keeping
/// every degree at most `d` — the bounded-degree regime of "Simulating Authenticated
/// Broadcast in Networks of Bounded Degree" (PAPERS.md), where broadcast must work
/// without the dense quorums of complete graphs. Coinciding cycle edges are merged (the
/// graph is simple), so degrees can fall slightly below `d`.
///
/// # Errors
///
/// Returns [`GenerateError::InfeasibleRegular`] if `d` is odd, zero, or `>= n`.
pub fn bounded_degree_expander(n: usize, d: usize, seed: u64) -> Result<Graph, GenerateError> {
    if d == 0 || !d.is_multiple_of(2) || d >= n {
        return Err(GenerateError::InfeasibleRegular { n, degree: d });
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    let mut order: Vec<ProcessId> = (0..n).collect();
    for _ in 0..d / 2 {
        order.shuffle(&mut rng);
        for i in 0..n {
            g.add_edge(order[i], order[(i + 1) % n]);
        }
    }
    Ok(g)
}

/// Harary graph `H_{k,n}`: the `k`-vertex-connected graph over `n` nodes with the minimum
/// possible number of edges (`⌈k·n/2⌉`).
///
/// Harary graphs are the worst case for protocols whose cost decreases with spare
/// connectivity: they give exactly the `2f+1` disjoint paths Dolev's protocol needs and
/// not one more.
///
/// # Errors
///
/// Returns [`GenerateError::InfeasibleConnectivity`] if `k >= n` or `k == 0`.
pub fn harary(k: usize, n: usize) -> Result<Graph, GenerateError> {
    if k == 0 || k >= n {
        return Err(GenerateError::InfeasibleConnectivity { n, connectivity: k });
    }
    let mut g = Graph::new(n);
    let half = k / 2;
    // Circulant core with offsets 1..=⌊k/2⌋.
    for u in 0..n {
        for off in 1..=half {
            g.add_edge(u, (u + off) % n);
        }
    }
    if k % 2 == 1 {
        if n.is_multiple_of(2) {
            // Odd k, even n: add diameters i — i + n/2.
            for u in 0..n / 2 {
                g.add_edge(u, u + n / 2);
            }
        } else {
            // Odd k, odd n: add near-diameters i — i + (n+1)/2 for 0 <= i <= (n-1)/2.
            for u in 0..=(n - 1) / 2 {
                g.add_edge(u, (u + n.div_ceil(2)) % n);
            }
        }
    }
    Ok(g)
}

/// Watts–Strogatz small-world graph: a ring lattice where every node is connected to its
/// `k/2` nearest neighbors on each side, with each edge rewired to a uniformly random
/// target with probability `beta`.
///
/// `beta = 0` gives the circulant lattice, `beta = 1` approaches a random graph. Rewiring
/// never introduces self-loops or duplicate edges and never disconnects a node entirely,
/// but the result is not guaranteed to stay `k`-connected — callers that need a
/// connectivity floor should verify it with [`crate::connectivity::is_k_connected`].
///
/// # Errors
///
/// Returns [`GenerateError::InfeasibleRegular`] if `k` is odd, `k >= n`, or `k == 0`.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    beta: f64,
    rng: &mut R,
) -> Result<Graph, GenerateError> {
    if k == 0 || !k.is_multiple_of(2) || k >= n {
        return Err(GenerateError::InfeasibleRegular { n, degree: k });
    }
    let mut g = Graph::new(n);
    for u in 0..n {
        for off in 1..=k / 2 {
            g.add_edge(u, (u + off) % n);
        }
    }
    // Rewire each lattice edge (u, u + off) with probability beta.
    for u in 0..n {
        for off in 1..=k / 2 {
            let v = (u + off) % n;
            if !g.has_edge(u, v) {
                continue; // already rewired away
            }
            if rng.gen::<f64>() >= beta {
                continue;
            }
            // Pick a new target that is neither u nor already adjacent to u.
            let candidates: Vec<ProcessId> = (0..n)
                .filter(|&w| w != u && w != v && !g.has_edge(u, w))
                .collect();
            if let Some(&w) = candidates.get(rng.gen_range(0..candidates.len().max(1))) {
                g.remove_edge(u, v);
                g.add_edge(u, w);
            }
        }
    }
    Ok(g)
}

/// Barabási–Albert preferential-attachment graph: starts from a clique of `m + 1` nodes and
/// attaches each subsequent node to `m` distinct existing nodes chosen with probability
/// proportional to their degree.
///
/// The resulting degree distribution is heavy-tailed (a few hubs, many low-degree nodes),
/// the opposite regime from the paper's regular graphs; it is used in robustness tests and
/// ablation benchmarks.
///
/// # Errors
///
/// Returns [`GenerateError::InfeasibleConnectivity`] if `m == 0` or `n < m + 1`.
pub fn barabasi_albert<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    rng: &mut R,
) -> Result<Graph, GenerateError> {
    if m == 0 || n < m + 1 {
        return Err(GenerateError::InfeasibleConnectivity { n, connectivity: m });
    }
    let mut g = Graph::new(n);
    // Seed clique over the first m + 1 nodes.
    for u in 0..=m {
        for v in (u + 1)..=m {
            g.add_edge(u, v);
        }
    }
    // Repeated-nodes list: each node appears once per incident edge end, so sampling
    // uniformly from it implements preferential attachment.
    let mut ends: Vec<ProcessId> = Vec::new();
    for (u, v) in g.edges() {
        ends.push(u);
        ends.push(v);
    }
    for new in (m + 1)..n {
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0usize;
        while targets.len() < m && guard < 10_000 {
            let t = ends[rng.gen_range(0..ends.len())];
            targets.insert(t);
            guard += 1;
        }
        // Extremely defensive fallback: fill deterministically if sampling stalled.
        let mut fill = 0;
        while targets.len() < m {
            if fill != new {
                targets.insert(fill);
            }
            fill += 1;
        }
        for &t in &targets {
            g.add_edge(new, t);
            ends.push(new);
            ends.push(t);
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{is_k_connected, vertex_connectivity};
    use crate::traversal::is_connected;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_and_star_have_connectivity_one() {
        assert_eq!(vertex_connectivity(&path(6)), 1);
        assert_eq!(vertex_connectivity(&star(6)), 1);
        assert_eq!(path(6).edge_count(), 5);
        assert_eq!(star(6).edge_count(), 5);
    }

    #[test]
    fn wheel_is_three_connected() {
        let g = wheel(8);
        assert_eq!(vertex_connectivity(&g), 3);
        assert_eq!(g.degree(0), 7);
        assert_eq!(g.degree(1), 3);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn wheel_too_small_panics() {
        let _ = wheel(3);
    }

    #[test]
    fn generalized_wheel_connectivity_is_hubs_plus_two() {
        for m in 1..=3 {
            let g = generalized_wheel(m, 6);
            assert_eq!(
                vertex_connectivity(&g),
                m + 2,
                "W({m}, 6) should be {}-connected",
                m + 2
            );
        }
    }

    #[test]
    fn generalized_wheel_suits_dolev_for_f() {
        // A generalized wheel with 2f-1 hubs is exactly (2f+1)-connected.
        let f = 2;
        let g = generalized_wheel(2 * f - 1, 8);
        assert_eq!(vertex_connectivity(&g), 2 * f + 1);
    }

    #[test]
    fn grid_without_wrap_has_connectivity_two() {
        let g = grid(4, 5, false);
        assert_eq!(g.node_count(), 20);
        assert_eq!(vertex_connectivity(&g), 2);
    }

    #[test]
    fn torus_has_connectivity_four() {
        let g = grid(4, 5, true);
        assert_eq!(vertex_connectivity(&g), 4);
        assert!(g.nodes().all(|u| g.degree(u) == 4));
    }

    #[test]
    fn small_grid_with_wrap_does_not_duplicate_edges() {
        // 2 columns with wrap would duplicate edges; the generator must not.
        let g = grid(2, 2, true);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn planar_grid_pins_counts_and_connectivity() {
        // rows*(cols-1) + cols*(rows-1) grid edges plus one diagonal per face.
        let g = planar_grid(4, 5);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 31 + 12);
        // With an even row count the bottom-left corner keeps degree 2.
        assert_eq!(vertex_connectivity(&g), 2);
        // The 5x5 planar grid (the churn golden-scenario topology) is 3-connected:
        // every corner picks up a diagonal.
        let g = planar_grid(5, 5);
        assert_eq!(g.node_count(), 25);
        assert_eq!(g.edge_count(), 40 + 16);
        assert!(is_k_connected(&g, 3));
        assert_eq!(vertex_connectivity(&g), 3);
    }

    #[test]
    #[should_panic(expected = "needs a face")]
    fn planar_grid_needs_two_rows_and_columns() {
        let _ = planar_grid(1, 5);
    }

    #[test]
    fn geometric_random_graph_pins_fixed_seeds() {
        // A pure function of (n, radius, seed): the pinned values double as the
        // cross-platform determinism check for the vendored StdRng draws.
        let g = geometric_random_graph(24, 0.45, 77);
        assert_eq!(g.node_count(), 24);
        assert_eq!(g.edge_count(), 102);
        assert!(is_connected(&g));
        assert!(!is_k_connected(&g, 2), "radius 0.45 leaves a cut vertex");
        let g = geometric_random_graph(24, 0.55, 77);
        assert_eq!(g.edge_count(), 139);
        assert!(is_k_connected(&g, 3));
        assert!(!is_k_connected(&g, 4));
        let g = geometric_random_graph(24, 0.6, 77);
        assert_eq!(g.edge_count(), 155);
        assert!(is_k_connected(&g, 4), "a wider radius buys connectivity");
    }

    #[test]
    fn geometric_random_graph_is_a_pure_function_of_its_seed() {
        let a = geometric_random_graph(20, 0.5, 9);
        let b = geometric_random_graph(20, 0.5, 9);
        assert_eq!(a.edges(), b.edges());
        let c = geometric_random_graph(20, 0.5, 10);
        assert_ne!(a.edges(), c.edges(), "a different seed moves the points");
    }

    #[test]
    fn bounded_degree_expander_pins_fixed_seeds() {
        // d/2 Hamiltonian cycles: at most n*d/2 edges, fewer when cycle edges coincide.
        let g = bounded_degree_expander(24, 4, 5).unwrap();
        assert_eq!(g.node_count(), 24);
        assert_eq!(
            g.edge_count(),
            45,
            "three cycle edges coincide at this seed"
        );
        assert!(g.nodes().all(|u| g.degree(u) <= 4));
        assert!(is_k_connected(&g, 3));
        assert_eq!(vertex_connectivity(&g), 3);
        let g = bounded_degree_expander(24, 4, 9).unwrap();
        assert_eq!(g.edge_count(), 48, "disjoint cycles at this seed");
        assert_eq!(vertex_connectivity(&g), 4);
        let g = bounded_degree_expander(30, 6, 3).unwrap();
        assert_eq!(g.edge_count(), 85);
        assert_eq!(vertex_connectivity(&g), 4);
    }

    #[test]
    fn bounded_degree_expander_is_deterministic_and_validates() {
        let a = bounded_degree_expander(20, 4, 1).unwrap();
        let b = bounded_degree_expander(20, 4, 1).unwrap();
        assert_eq!(a.edges(), b.edges());
        assert!(bounded_degree_expander(20, 3, 1).is_err(), "odd degree");
        assert!(bounded_degree_expander(20, 0, 1).is_err());
        assert!(bounded_degree_expander(4, 4, 1).is_err(), "d must be < n");
    }

    #[test]
    fn harary_graphs_have_exact_connectivity_and_minimum_edges() {
        for &(k, n) in &[(2usize, 7usize), (3, 8), (3, 9), (4, 10), (5, 10), (5, 11)] {
            let g = harary(k, n).unwrap();
            assert_eq!(
                vertex_connectivity(&g),
                k,
                "H_{{{k},{n}}} must be exactly {k}-connected"
            );
            assert_eq!(
                g.edge_count(),
                (k * n).div_ceil(2),
                "H_{{{k},{n}}} must have ⌈k·n/2⌉ edges"
            );
        }
    }

    #[test]
    fn harary_rejects_infeasible_parameters() {
        assert!(harary(0, 5).is_err());
        assert!(harary(5, 5).is_err());
        assert!(harary(6, 5).is_err());
    }

    #[test]
    fn watts_strogatz_zero_beta_is_the_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(12, 4, 0.0, &mut rng).unwrap();
        let lattice = crate::generate::circulant(12, 2);
        assert_eq!(g.edges(), lattice.edges());
    }

    #[test]
    fn watts_strogatz_preserves_edge_count_and_connectedness_often() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = watts_strogatz(30, 6, 0.2, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 30 * 3);
        assert!(is_connected(&g));
    }

    #[test]
    fn watts_strogatz_rejects_odd_or_large_degree() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(watts_strogatz(10, 3, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 10, 0.1, &mut rng).is_err());
        assert!(watts_strogatz(10, 0, 0.1, &mut rng).is_err());
    }

    #[test]
    fn barabasi_albert_degrees_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(99);
        let g = barabasi_albert(40, 3, &mut rng).unwrap();
        assert_eq!(g.node_count(), 40);
        assert!(is_connected(&g));
        // Every node added after the seed clique has degree >= m.
        assert!(g.nodes().all(|u| g.degree(u) >= 3));
        // Edge count: seed clique C(4,2)=6 plus 3 per added node.
        assert_eq!(g.edge_count(), 6 + 3 * (40 - 4));
    }

    #[test]
    fn barabasi_albert_rejects_infeasible_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(barabasi_albert(3, 0, &mut rng).is_err());
        assert!(barabasi_albert(3, 3, &mut rng).is_err());
    }

    #[test]
    fn barabasi_albert_prefers_high_degree_nodes() {
        // The seed nodes should on average end with higher degree than late arrivals.
        let mut rng = StdRng::seed_from_u64(5);
        let g = barabasi_albert(120, 2, &mut rng).unwrap();
        let early: f64 = (0..3).map(|u| g.degree(u) as f64).sum::<f64>() / 3.0;
        let late: f64 = (110..120).map(|u| g.degree(u) as f64).sum::<f64>() / 10.0;
        assert!(
            early > late,
            "expected preferential attachment: early {early} vs late {late}"
        );
    }
}
