//! Wire-size conformance tests against the paper's Table 3 field accounting.
//!
//! Every byte the experiment harnesses report flows through `wire_size` of one of the
//! three message families (Dolev, Bracha, the Bracha–Dolev `WireMessage`). These tests pin
//! the accounting to **hand-computed** Table 3 values at the edge cases the unit tests do
//! not cover: empty paths, maximal (`u16::MAX`-entry) paths, and zero-length payloads.
//!
//! Field sizes (Table 3): `mtype` 1 B, `s` 4 B, `bid` 4 B, `localPayloadID` 4 B,
//! `payloadSize` 4 B, `erId1`/`erId2` 4 B, `pathLen` 2 B, 4 B per path entry.

use brb_core::bracha::{BrachaKind, BrachaMessage};
use brb_core::dolev::DolevMessage;
use brb_core::types::{BroadcastId, Content, Payload};
use brb_core::wire::{FieldPresence, MessageKind, PayloadRef, WireMessage};

/// The longest path the 2-byte `pathLen` field can describe.
const MAX_PATH: usize = u16::MAX as usize;

fn dolev(payload_len: usize, path_len: usize) -> DolevMessage {
    DolevMessage {
        content: Content::new(BroadcastId::new(3, 9), Payload::filled(0, payload_len)),
        path: (0..path_len).collect(),
    }
}

#[test]
fn dolev_empty_path_zero_payload_is_15_bytes() {
    // mtype(1) + s(4) + bid(4) + payloadSize(4) + payload(0) + pathLen(2) + path(0).
    assert_eq!(dolev(0, 0).wire_size(), 15);
}

#[test]
fn dolev_scales_linearly_in_path_and_payload() {
    // 15 B skeleton + payload bytes + 4 B per path entry.
    assert_eq!(dolev(16, 1).wire_size(), 15 + 16 + 4);
    assert_eq!(dolev(1024, 7).wire_size(), 15 + 1024 + 28);
}

#[test]
fn dolev_max_path_is_addressable_by_path_len_field() {
    // 15 + 4 * 65535 = 262_155.
    assert_eq!(dolev(0, MAX_PATH).wire_size(), 262_155);
}

#[test]
fn bracha_zero_payload_is_13_bytes() {
    // mtype(1) + s(4) + bid(4) + payloadSize(4): Bracha messages carry no path.
    let m = BrachaMessage {
        kind: BrachaKind::Ready,
        id: BroadcastId::new(0, 0),
        payload: Payload::filled(0, 0),
    };
    assert_eq!(m.wire_size(), 13);
}

#[test]
fn bracha_payload_is_accounted_byte_for_byte() {
    for (payload_len, expected) in [(16usize, 29usize), (1024, 1037)] {
        let m = BrachaMessage {
            kind: BrachaKind::Echo,
            id: BroadcastId::new(1, 2),
            payload: Payload::filled(7, payload_len),
        };
        assert_eq!(m.wire_size(), expected, "payload of {payload_len} B");
    }
}

fn wire(
    kind: MessageKind,
    payload: PayloadRef,
    path_len: usize,
    fields: FieldPresence,
) -> WireMessage {
    WireMessage {
        kind,
        id: BroadcastId::new(2, 5),
        originator: 4,
        originator2: if matches!(kind, MessageKind::EchoEcho | MessageKind::ReadyEcho) {
            Some(6)
        } else {
            None
        },
        payload,
        path: (0..path_len).collect(),
        fields,
    }
}

#[test]
fn bd_empty_path_still_pays_the_path_len_field() {
    // Full echo with an empty path: mtype(1) + s(4) + bid(4) + erId1(4) + payloadSize(4)
    // + payload(0) + pathLen(2) + path(0) = 19.
    let m = wire(
        MessageKind::Echo,
        PayloadRef::Inline(Payload::filled(0, 0)),
        0,
        FieldPresence::full(),
    );
    assert_eq!(m.wire_size(), 19);
}

#[test]
fn bd_max_path_full_echo() {
    // 19 B empty-path skeleton + 4 * 65535 path bytes.
    let m = wire(
        MessageKind::Echo,
        PayloadRef::Inline(Payload::filled(0, 0)),
        MAX_PATH,
        FieldPresence::full(),
    );
    assert_eq!(m.wire_size(), 19 + 4 * MAX_PATH);
}

#[test]
fn bd_zero_payload_announce_pays_only_the_local_id() {
    // Announce with empty payload: mtype(1) + s(4) + bid(4) + erId1(4)
    // + localPayloadID(4) + payloadSize(4) + payload(0) + pathLen(2) = 23.
    let m = wire(
        MessageKind::Echo,
        PayloadRef::Announce {
            local_id: 12,
            payload: Payload::filled(0, 0),
        },
        0,
        FieldPresence::full(),
    );
    assert_eq!(m.wire_size(), 23);
}

#[test]
fn bd_local_ref_with_every_field_elided_is_minimal() {
    // MBD.1 + MBD.5 steady state: mtype(1) + localPayloadID(4) only.
    let m = wire(
        MessageKind::Ready,
        PayloadRef::Local(3),
        0,
        FieldPresence {
            source: false,
            bid: false,
            originator: false,
            path: false,
        },
    );
    assert_eq!(m.wire_size(), 5);
}

#[test]
fn bd_merged_kinds_add_exactly_one_er_id() {
    // ReadyEcho vs Ready with identical other fields: + erId2(4).
    let base = wire(
        MessageKind::Ready,
        PayloadRef::Local(3),
        2,
        FieldPresence::full(),
    );
    let merged = wire(
        MessageKind::ReadyEcho,
        PayloadRef::Local(3),
        2,
        FieldPresence::full(),
    );
    assert_eq!(merged.wire_size(), base.wire_size() + 4);
    // Hand-computed: mtype(1) + s(4) + bid(4) + erId1(4) + erId2(4) + localPayloadID(4)
    // + pathLen(2) + path(8) = 31.
    assert_eq!(merged.wire_size(), 31);
}

#[test]
fn bd_wire_size_survives_the_codec_at_the_edges() {
    // wire_size is a pure function of the logical message: encoding and decoding an
    // edge-case message must preserve it exactly.
    for m in [
        wire(
            MessageKind::Send,
            PayloadRef::Inline(Payload::filled(0, 0)),
            0,
            FieldPresence::full(),
        ),
        wire(
            MessageKind::EchoEcho,
            PayloadRef::Announce {
                local_id: 1,
                payload: Payload::filled(9, 1),
            },
            MAX_PATH,
            FieldPresence::full(),
        ),
        wire(
            MessageKind::Ready,
            PayloadRef::Local(8),
            0,
            FieldPresence {
                source: false,
                bid: false,
                originator: false,
                path: false,
            },
        ),
    ] {
        let decoded = WireMessage::decode(&m.encode()).expect("edge-case message decodes");
        assert_eq!(decoded.wire_size(), m.wire_size());
    }
}
