//! Compact representation of the set of process labels traversed by a relayed message.
//!
//! The paper notes (Sec. 6.4, MBD.10) that processes represent received paths using bit
//! arrays stored in a list. [`PathSet`] is that bit array: a small, growable bitset over
//! process identifiers supporting the three operations the protocol needs — insertion,
//! disjointness tests and subset tests.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::types::ProcessId;

/// A set of process identifiers, backed by a word-level bitset.
///
/// Used to store the *intermediate* nodes of a received transmission path, to test whether
/// two paths are node-disjoint (their intersection is empty) and whether one path is a
/// subpath of another (subset inclusion, modification MBD.10).
#[derive(Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PathSet {
    words: Vec<u64>,
}

impl PathSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from an iterator of process identifiers.
    pub fn from_iter_ids(ids: impl IntoIterator<Item = ProcessId>) -> Self {
        let mut s = Self::new();
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Inserts a process identifier; returns whether it was newly inserted.
    pub fn insert(&mut self, id: ProcessId) -> bool {
        let (word, bit) = (id / 64, id % 64);
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let newly = self.words[word] & mask == 0;
        self.words[word] |= mask;
        newly
    }

    /// Removes a process identifier; returns whether it was present.
    pub fn remove(&mut self, id: ProcessId) -> bool {
        let (word, bit) = (id / 64, id % 64);
        if word >= self.words.len() {
            return false;
        }
        let mask = 1u64 << bit;
        let present = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        present
    }

    /// Whether the identifier is in the set.
    pub fn contains(&self, id: ProcessId) -> bool {
        let (word, bit) = (id / 64, id % 64);
        self.words.get(word).is_some_and(|w| w & (1u64 << bit) != 0)
    }

    /// Number of identifiers in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether `self` and `other` have no identifier in common (node-disjoint paths).
    pub fn is_disjoint(&self, other: &PathSet) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(a, b)| a & b == 0)
    }

    /// Whether every identifier of `self` is also in `other` (subpath test of MBD.10).
    pub fn is_subset(&self, other: &PathSet) -> bool {
        for (i, &w) in self.words.iter().enumerate() {
            let o = other.words.get(i).copied().unwrap_or(0);
            if w & !o != 0 {
                return false;
            }
        }
        true
    }

    /// Union of two sets.
    pub fn union(&self, other: &PathSet) -> PathSet {
        let mut words = vec![0u64; self.words.len().max(other.words.len())];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words.get(i).copied().unwrap_or(0) | other.words.get(i).copied().unwrap_or(0);
        }
        PathSet { words }
    }

    /// Iterator over the identifiers in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }

    /// Identifiers collected into a sorted vector.
    pub fn to_vec(&self) -> Vec<ProcessId> {
        self.iter().collect()
    }
}

impl FromIterator<ProcessId> for PathSet {
    fn from_iter<T: IntoIterator<Item = ProcessId>>(iter: T) -> Self {
        Self::from_iter_ids(iter)
    }
}

impl Extend<ProcessId> for PathSet {
    fn extend<T: IntoIterator<Item = ProcessId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl fmt::Debug for PathSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PathSet{:?}", self.to_vec())
    }
}

impl<const N: usize> From<[ProcessId; N]> for PathSet {
    fn from(ids: [ProcessId; N]) -> Self {
        Self::from_iter_ids(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = PathSet::new();
        assert!(s.is_empty());
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(70));
        assert!(s.contains(3));
        assert!(s.contains(70));
        assert!(!s.contains(4));
        assert_eq!(s.len(), 2);
        assert!(s.remove(3));
        assert!(!s.remove(3));
        assert!(!s.contains(3));
    }

    #[test]
    fn disjointness() {
        let a = PathSet::from([1, 2, 3]);
        let b = PathSet::from([4, 5]);
        let c = PathSet::from([3, 4]);
        assert!(a.is_disjoint(&b));
        assert!(b.is_disjoint(&a));
        assert!(!a.is_disjoint(&c));
        assert!(PathSet::new().is_disjoint(&a));
    }

    #[test]
    fn subset() {
        let a = PathSet::from([1, 2]);
        let b = PathSet::from([1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(PathSet::new().is_subset(&a));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn subset_with_different_word_lengths() {
        let small = PathSet::from([1]);
        let large = PathSet::from([1, 130]);
        assert!(small.is_subset(&large));
        assert!(!large.is_subset(&small));
    }

    #[test]
    fn union_and_iter() {
        let a = PathSet::from([1, 65]);
        let b = PathSet::from([2]);
        let u = a.union(&b);
        assert_eq!(u.to_vec(), vec![1, 2, 65]);
        assert_eq!(a.to_vec(), vec![1, 65]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let s: PathSet = vec![9usize, 1, 9].into_iter().collect();
        assert_eq!(s.to_vec(), vec![1, 9]);
        let mut t = PathSet::new();
        t.extend(vec![7usize, 8]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn debug_format_lists_members() {
        let s = PathSet::from([2, 5]);
        assert_eq!(format!("{s:?}"), "PathSet[2, 5]");
    }

    #[test]
    fn remove_out_of_range_is_noop() {
        let mut s = PathSet::from([1]);
        assert!(!s.remove(1000));
        assert_eq!(s.len(), 1);
    }
}
