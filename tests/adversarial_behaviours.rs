//! Failure-injection tests: the flooding Bracha–Dolev engine under the simulator's
//! stronger adversary behaviours (targeted silence, flooding amplification, mid-broadcast
//! failures), validated with the BRB invariant checkers.

use brb_core::config::Config;
use brb_core::protocol::Protocol;
use brb_core::types::{BroadcastId, Payload};
use brb_core::BdProcess;
use brb_graph::{families, generate, Graph};
use brb_sim::invariants::{check_brb_processes, check_no_duplication, BroadcastRecord};
use brb_sim::workload::run_workload;
use brb_sim::{Behavior, DelayModel, Simulation};
use brb_workload::{predicted_ids, SourceSelection, WorkloadSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bd_processes(graph: &Graph, config: Config) -> Vec<BdProcess> {
    (0..graph.node_count())
        .map(|i| BdProcess::new(i, config, graph.neighbors_vec(i)))
        .collect()
}

#[test]
fn targeted_silence_cannot_starve_its_victims() {
    // One Byzantine process drops everything addressed to two victims. The victims still
    // receive every content through their other neighbors (the graph is 2f+1-connected),
    // so validity and agreement hold.
    let (n, k, f) = (14, 5, 2);
    let mut rng = StdRng::seed_from_u64(41);
    let graph = generate::random_regular_connected(n, k, 2 * f + 1, &mut rng).unwrap();
    let config = Config::bdopt_mbd1(n, f);
    let mut sim = Simulation::new(bd_processes(&graph, config), DelayModel::synchronous(), 9);
    sim.set_behavior(3, Behavior::SilentTowards(vec![0, 7]));
    sim.set_behavior(10, Behavior::Crash);

    let payload = Payload::filled(0x11, 1024);
    sim.broadcast(1, payload.clone());
    sim.run_to_quiescence();

    let correct = sim.correct_processes();
    assert_eq!(correct.len(), n - 2);
    let broadcasts = [BroadcastRecord::new(1, BroadcastId::new(1, 0), payload)];
    check_brb_processes(sim.processes(), &correct, &broadcasts).expect("BRB properties hold");
}

#[test]
fn flooding_amplifier_cannot_cause_duplicate_deliveries() {
    // A Byzantine process sends five copies of every message. The protocol must stay
    // idempotent: no correct process delivers twice, and the broadcast still completes.
    let (n, k, f) = (12, 4, 1);
    let mut rng = StdRng::seed_from_u64(13);
    let graph = generate::random_regular_connected(n, k, 2 * f + 1, &mut rng).unwrap();
    let config = Config::bandwidth_preset(n, f);
    let mut sim = Simulation::new(bd_processes(&graph, config), DelayModel::asynchronous(), 29);
    sim.set_behavior(6, Behavior::Flooder(5));

    let payload = Payload::filled(0x22, 16);
    sim.broadcast(0, payload.clone());
    sim.run_to_quiescence();

    let correct = sim.correct_processes();
    let broadcasts = [BroadcastRecord::new(0, BroadcastId::new(0, 0), payload)];
    check_brb_processes(sim.processes(), &correct, &broadcasts).expect("BRB properties hold");
    // The flooder itself also must not double-deliver (its engine is still the correct
    // implementation, only its link layer duplicates).
    let logs: Vec<&[brb_core::types::Delivery]> =
        sim.processes().iter().map(|p| p.deliveries()).collect();
    check_no_duplication(&logs, &(0..n).collect::<Vec<_>>()).expect("no duplicates anywhere");
}

#[test]
fn mid_broadcast_failure_leaves_a_consistent_system() {
    // A process fails after relaying only a handful of messages: whatever partial state it
    // propagated must not break agreement for the others.
    let (n, k, f) = (13, 4, 1);
    let graph = generate::circulant(n, 2);
    let config = Config::latency_preset(n, f);
    let mut sim = Simulation::new(bd_processes(&graph, config), DelayModel::synchronous(), 77);
    sim.set_behavior(5, Behavior::FailsAfter(3));
    let _ = k;

    let payload = Payload::filled(0x33, 256);
    sim.broadcast(12, payload.clone());
    sim.run_to_quiescence();

    let correct = sim.correct_processes();
    let broadcasts = [BroadcastRecord::new(12, BroadcastId::new(12, 0), payload)];
    check_brb_processes(sim.processes(), &correct, &broadcasts).expect("BRB properties hold");
}

#[test]
fn lossy_links_on_a_minimum_edge_topology() {
    // Harary graph H_{3,10}: exactly 3-connected with the minimum number of edges. One
    // Byzantine process drops 30% of its outbound messages; the rest of the system still
    // reaches agreement under asynchronous delays.
    let f = 1;
    let graph = families::harary(3, 10).unwrap();
    let config = Config::bdopt(10, f);
    let mut sim = Simulation::new(
        bd_processes(&graph, config),
        DelayModel::asynchronous(),
        1234,
    );
    sim.set_behavior(4, Behavior::Lossy(0.3));

    let payload = Payload::filled(0x44, 16);
    sim.broadcast(0, payload.clone());
    sim.run_to_quiescence();

    let correct = sim.correct_processes();
    let broadcasts = [BroadcastRecord::new(0, BroadcastId::new(0, 0), payload)];
    check_brb_processes(sim.processes(), &correct, &broadcasts).expect("BRB properties hold");
}

#[test]
fn mbd_one_to_eleven_survive_a_crashed_relay_on_the_wheel() {
    // A generalized wheel with 2f+1 = 3 connectivity, one crashed rim process, and each of
    // MBD.1–11 enabled on its own: a quick sweep that exercises the interaction of each
    // modification with a partially failed, minimally connected topology. (MBD.12 is
    // covered separately below: its fanout reduction is not live in this scenario.)
    let f = 1;
    let graph = families::generalized_wheel(1, 10); // 3-connected, 11 nodes
    let n = graph.node_count();
    for mbd in 1u8..=11 {
        let config = Config::bdopt(n, f).with_mbd(&[1, mbd]);
        let mut sim = Simulation::new(bd_processes(&graph, config), DelayModel::synchronous(), 5);
        sim.set_behavior(6, Behavior::Crash);
        let payload = Payload::filled(mbd, 64);
        sim.broadcast(0, payload.clone());
        sim.run_to_quiescence();

        let correct = sim.correct_processes();
        let broadcasts = [BroadcastRecord::new(0, BroadcastId::new(0, 0), payload)];
        check_brb_processes(sim.processes(), &correct, &broadcasts)
            .unwrap_or_else(|v| panic!("MBD.{mbd} violated BRB: {v}"));
    }
}

#[test]
fn mbd12_loses_liveness_but_not_safety_on_a_minimally_connected_wheel_with_a_crash() {
    // Reproduction finding (documented in EXPERIMENTS.md): MBD.12 makes a process send its
    // *newly created* messages to only 2f+1 of its neighbors, and MD.5 then stops it from
    // relaying further paths for that content. On a minimally connected hub-and-spoke
    // topology (generalized wheel, vertex connectivity exactly 2f+1 = 3), if a rim process
    // crashes, the rim processes on the far side of the crash can collect only one
    // disjoint path — the hub, having already "delivered and forwarded the empty path" (to
    // its truncated fanout), never helps again — so nobody reaches the Echo quorum and the
    // broadcast stalls. Safety (agreement, no duplication) is preserved: nothing wrong is
    // ever delivered. On the paper's random regular graphs, whose connectivity comfortably
    // exceeds 2f+1, this corner case does not arise (see `table1` harness results).
    let f = 1;
    let graph = families::generalized_wheel(1, 10);
    let n = graph.node_count();
    let config = Config::bdopt(n, f).with_mbd(&[1, 12]);
    let mut sim = Simulation::new(bd_processes(&graph, config), DelayModel::synchronous(), 5);
    sim.set_behavior(6, Behavior::Crash);
    let payload = Payload::filled(12, 64);
    sim.broadcast(0, payload.clone());
    sim.run_to_quiescence();

    // Liveness is lost: no correct process delivers.
    assert!(sim.processes().iter().all(|p| p.deliveries().is_empty()));
    // Safety is preserved: no duplication, and agreement holds vacuously.
    let correct = sim.correct_processes();
    let logs: Vec<&[brb_core::types::Delivery]> =
        sim.processes().iter().map(|p| p.deliveries()).collect();
    check_no_duplication(&logs, &correct).expect("no duplicates");
    brb_sim::invariants::check_agreement(&logs, &correct).expect("vacuous agreement holds");

    // The same configuration on the same topology is perfectly live without the crash...
    let mut healthy = Simulation::new(bd_processes(&graph, config), DelayModel::synchronous(), 5);
    healthy.broadcast(0, payload.clone());
    healthy.run_to_quiescence();
    assert!(healthy
        .processes()
        .iter()
        .all(|p| p.deliveries().len() == 1));

    // ...and on a topology with one unit of spare connectivity (4-connected circulant),
    // MBD.12 tolerates the crash as the paper's evaluation setting would suggest.
    let spare = generate::circulant(11, 2);
    let spare_config = Config::bdopt(11, f).with_mbd(&[1, 12]);
    let mut spare_sim = Simulation::new(
        bd_processes(&spare, spare_config),
        DelayModel::synchronous(),
        5,
    );
    spare_sim.set_behavior(6, Behavior::Crash);
    spare_sim.broadcast(0, payload.clone());
    spare_sim.run_to_quiescence();
    let spare_correct = spare_sim.correct_processes();
    let broadcasts = [BroadcastRecord::new(0, BroadcastId::new(0, 0), payload)];
    check_brb_processes(spare_sim.processes(), &spare_correct, &broadcasts)
        .expect("BRB holds with spare connectivity");
}

#[test]
fn sixteen_concurrent_broadcasts_under_a_crash_and_targeted_silence() {
    // The adversarial coverage the single-broadcast tests cannot give: a sustained
    // multi-broadcast workload (>= 16 broadcasts all in flight at once: they arrive
    // within 20 ms, an order of magnitude under the per-broadcast completion time)
    // against a Byzantine mix of one crashed process and one process silently dropping
    // everything addressed to two victims. Every one of the 16 broadcasts must satisfy
    // all four BRB properties at every correct process, checked with the per-broadcast
    // invariant checkers.
    let (n, k, f) = (14, 5, 2);
    let mut rng = StdRng::seed_from_u64(4096);
    let graph = generate::random_regular_connected(n, k, 2 * f + 1, &mut rng).unwrap();
    let config = Config::bdopt_mbd1(n, f);
    let mut sim = Simulation::new(bd_processes(&graph, config), DelayModel::asynchronous(), 61);
    sim.set_behavior(8, Behavior::SilentTowards(vec![1, 5]));
    sim.set_behavior(13, Behavior::Crash);

    // 16 broadcasts, Zipf-skewed over the 12 non-Byzantine low ids is not guaranteed —
    // skew over everyone and let crashed-source injections be no-ops like real traffic.
    let spec = WorkloadSpec::poisson(1_200, 16)
        .with_sources(SourceSelection::Zipf { exponent: 0.8 })
        .with_payload_bytes(512);
    let schedule = spec.schedule(n, 99);
    let ids = predicted_ids(&schedule);
    run_workload(&mut sim, &schedule, spec.mode);

    let correct = sim.correct_processes();
    assert_eq!(correct.len(), n - 2);
    // One BroadcastRecord per injection whose source is correct (id 8 is Byzantine but
    // only towards its links — its engine still broadcasts correctly; id 13 is crashed
    // and its injections are no-ops).
    let broadcasts: Vec<BroadcastRecord> = schedule
        .iter()
        .zip(&ids)
        .filter(|(injection, _)| correct.contains(&injection.source))
        .map(|(injection, &id)| {
            BroadcastRecord::new(injection.source, id, injection.payload.clone())
        })
        .collect();
    assert!(
        broadcasts.len() >= 14,
        "the Zipf draw must leave most of the 16 broadcasts effective, got {}",
        broadcasts.len()
    );
    check_brb_processes(sim.processes(), &correct, &broadcasts)
        .expect("all four BRB properties hold for every concurrent broadcast");
    // All effective broadcasts truly overlapped and completed.
    for record in &broadcasts {
        assert_eq!(
            sim.metrics().delivered_count(record.id, &correct),
            correct.len(),
            "{} incomplete",
            record.id
        );
    }
}

#[test]
fn two_simultaneous_sources_with_a_crash_still_agree_everywhere() {
    let (n, k, f) = (14, 5, 2);
    let mut rng = StdRng::seed_from_u64(99);
    let graph = generate::random_regular_connected(n, k, 2 * f + 1, &mut rng).unwrap();
    let config = Config::latency_bandwidth_preset(n, f);
    let mut sim = Simulation::new(bd_processes(&graph, config), DelayModel::asynchronous(), 99);
    sim.set_behavior(9, Behavior::Crash);

    let payload_a = Payload::filled(0xA0, 128);
    let payload_b = Payload::filled(0xB0, 128);
    sim.broadcast(0, payload_a.clone());
    sim.broadcast(1, payload_b.clone());
    sim.run_to_quiescence();

    let correct = sim.correct_processes();
    let broadcasts = [
        BroadcastRecord::new(0, BroadcastId::new(0, 0), payload_a),
        BroadcastRecord::new(1, BroadcastId::new(1, 0), payload_b),
    ];
    check_brb_processes(sim.processes(), &correct, &broadcasts).expect("BRB properties hold");
    for &p in &correct {
        assert_eq!(sim.processes()[p].deliveries().len(), 2);
    }
}
