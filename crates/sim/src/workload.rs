//! Driving a [`WorkloadSpec`] schedule through the discrete-event simulator.
//!
//! The workload crate (`brb-workload`) expands a spec into a backend-agnostic schedule
//! of [`Injection`]s; this module is the simulator-side driver. Open-loop schedules are
//! handed to [`Simulation::schedule_broadcast`] wholesale and run to quiescence;
//! closed-loop schedules are admitted arrival by arrival, gated on an in-flight window
//! that frees when a broadcast has been delivered by every correct process. Both paths
//! are single-threaded and purely virtual-time, so a `(spec, seed)` pair replays
//! bit-identically — the property the workload golden snapshots and the worker-count
//! invariance tests pin.

use brb_core::protocol::Protocol;
use brb_core::types::BroadcastId;
use brb_workload::{predicted_ids, Injection, LoopMode, WorkloadStats};

use crate::metrics::RunMetrics;
use crate::sim::Simulation;
use crate::time::SimTime;

/// Memory-proxy sampling stride of workload runs: with dozens of broadcasts in flight,
/// measuring a process's whole state after every event is `O(in-flight)` and dominates
/// the run (~7x end to end); sampling every 32nd event per process keeps the peaks
/// deterministic and representative at a fraction of the cost.
const WORKLOAD_MEMORY_SAMPLING: usize = 32;

/// Runs a full injection schedule through the simulation until quiescence, honoring the
/// loop mode. Returns the number of injections plus message events processed.
///
/// In closed-loop mode, an arrival finding the window full is deferred to the instant a
/// slot frees (its arrival time is clamped forward); injections whose source ignores
/// the broadcast (a crashed source) do not occupy the window. If a broadcast never
/// completes — an adversarial run losing liveness — admission stalls and the remaining
/// arrivals are never injected, exactly as a blocked client pool would behave.
///
/// Workload runs sample the Sec. 7.3 memory proxies on a stride of
/// [`WORKLOAD_MEMORY_SAMPLING`] events per process (see
/// [`Simulation::set_memory_sampling`]).
pub fn run_workload<P: Protocol>(
    sim: &mut Simulation<P>,
    schedule: &[Injection],
    mode: LoopMode,
) -> usize
where
    P::Message: Eq,
{
    sim.set_memory_sampling(WORKLOAD_MEMORY_SAMPLING);
    match mode {
        LoopMode::Open => {
            for injection in schedule {
                sim.schedule_broadcast(
                    SimTime::from_micros(injection.at_micros),
                    injection.source,
                    injection.payload.clone(),
                );
            }
            sim.run_to_quiescence()
        }
        LoopMode::Closed { window } => run_closed_loop(sim, schedule, window as usize),
    }
}

fn run_closed_loop<P: Protocol>(
    sim: &mut Simulation<P>,
    schedule: &[Injection],
    window: usize,
) -> usize
where
    P::Message: Eq,
{
    let ids = predicted_ids(schedule);
    let correct = sim.correct_processes();
    let mut in_flight: Vec<BroadcastId> = Vec::new();
    let mut next = 0usize;
    let mut processed = 0usize;
    loop {
        // Admit arrivals while the window has room. Deferred arrivals inject at the
        // current instant (schedule_broadcast clamps past times forward).
        while next < schedule.len() && in_flight.len() < window {
            let injection = &schedule[next];
            sim.schedule_broadcast(
                SimTime::from_micros(injection.at_micros),
                injection.source,
                injection.payload.clone(),
            );
            if sim.behavior(injection.source).receives() {
                in_flight.push(ids[next]);
            }
            next += 1;
        }
        let step = sim.step_batch();
        if step == 0 {
            break;
        }
        processed += step;
        in_flight.retain(|id| sim.metrics().delivered_count(*id, &correct) < correct.len());
    }
    sim.collect_gc_metrics();
    processed
}

/// Folds the per-broadcast workload measurements out of a finished run's metrics: one
/// latency observation per completed broadcast (worst correct process, minus the
/// injection time), completion counts, and the injection-to-last-delivery duration.
pub fn workload_stats(
    metrics: &RunMetrics,
    correct: &[brb_core::types::ProcessId],
) -> WorkloadStats {
    let mut stats = WorkloadStats::default();
    let mut first_injection: Option<SimTime> = None;
    let mut last_delivery = SimTime::ZERO;
    for (&id, &injected_at) in &metrics.injection_times {
        stats.injected += 1;
        first_injection = Some(match first_injection {
            Some(t) => t.min(injected_at),
            None => injected_at,
        });
        if let Some(delivered_at) = metrics.latency(id, correct) {
            stats.completed += 1;
            last_delivery = last_delivery.max(delivered_at);
            let latency = delivered_at.saturating_sub(injected_at);
            stats.latency_histogram.record(latency.as_micros());
        }
    }
    if let Some(first) = first_injection {
        if stats.completed > 0 {
            stats.duration_ms = last_delivery.saturating_sub(first).as_millis_f64();
        }
    }
    stats.gc_retired = metrics.gc_retired;
    stats.retained_bytes = metrics.retained_bytes;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_core::bd::BdProcess;
    use brb_core::config::Config;
    use brb_graph::{generate, NeighborIndex};
    use brb_workload::WorkloadSpec;

    use crate::behavior::Behavior;
    use crate::delay::DelayModel;

    fn bd_sim(seed: u64) -> Simulation<BdProcess> {
        let graph = generate::figure1_example();
        let index = NeighborIndex::new(&graph);
        let config = Config::bdopt_mbd1(10, 1);
        let processes: Vec<BdProcess> = (0..graph.node_count())
            .map(|i| BdProcess::new(i, config, index.neighbors(i).to_vec()))
            .collect();
        Simulation::new(processes, DelayModel::synchronous(), seed)
    }

    #[test]
    fn open_loop_workload_completes_and_measures() {
        let spec = WorkloadSpec::constant_rate(20_000, 12).with_payload_bytes(32);
        let schedule = spec.schedule(10, 7);
        let mut sim = bd_sim(7);
        run_workload(&mut sim, &schedule, spec.mode);
        let correct = sim.correct_processes();
        let stats = workload_stats(sim.metrics(), &correct);
        assert_eq!(stats.injected, 12);
        assert_eq!(stats.completed, 12);
        assert!(stats.all_completed());
        assert!(stats.duration_ms > 0.0);
        assert!(stats.throughput_per_sec() > 0.0);
        assert!(stats.p50_ms() >= 100.0, "two 50 ms hops minimum");
        assert!(stats.p99_ms() >= stats.p50_ms());
    }

    #[test]
    fn closed_loop_window_limits_in_flight_broadcasts() {
        // 12 arrivals all at t = 0, window 2: the run must serialize into waves, so the
        // last delivery happens much later than in the open-loop run.
        let spec = WorkloadSpec::constant_rate(0, 12).closed_loop(2);
        let schedule = spec.schedule(10, 3);
        let mut open_sim = bd_sim(3);
        run_workload(&mut open_sim, &schedule, LoopMode::Open);
        let mut closed_sim = bd_sim(3);
        run_workload(&mut closed_sim, &schedule, spec.mode);
        let correct: Vec<usize> = (0..10).collect();
        let open = workload_stats(open_sim.metrics(), &correct);
        let closed = workload_stats(closed_sim.metrics(), &correct);
        assert!(open.all_completed() && closed.all_completed());
        assert_eq!(closed.injected, 12);
        assert!(
            closed.duration_ms > open.duration_ms,
            "closed loop serializes: {} vs {}",
            closed.duration_ms,
            open.duration_ms
        );
        // With the window gating admission, per-broadcast latency stays near the
        // contention-free baseline instead of inflating with the backlog.
        assert!(closed.p50_ms() <= open.p50_ms() + 1.0);
    }

    #[test]
    fn closed_loop_skips_window_slots_for_crashed_sources() {
        let spec = WorkloadSpec::constant_rate(5_000, 10).closed_loop(1);
        let schedule = spec.schedule(10, 5);
        let mut sim = bd_sim(5);
        sim.set_behavior(3, Behavior::Crash);
        run_workload(&mut sim, &schedule, spec.mode);
        let correct = sim.correct_processes();
        let stats = workload_stats(sim.metrics(), &correct);
        // Round-robin sources 0..9: source 3's injection is a no-op; the other 9 all
        // complete despite the width-1 window.
        assert_eq!(stats.injected, 9);
        assert_eq!(stats.completed, 9);
    }

    #[test]
    fn workload_runs_are_deterministic() {
        let spec = WorkloadSpec::poisson(10_000, 16);
        let schedule = spec.schedule(10, 21);
        let render = |seed| {
            // Asynchronous delays, so the simulation seed actually matters.
            let graph = generate::figure1_example();
            let index = NeighborIndex::new(&graph);
            let config = Config::bdopt_mbd1(10, 1);
            let processes: Vec<BdProcess> = (0..graph.node_count())
                .map(|i| BdProcess::new(i, config, index.neighbors(i).to_vec()))
                .collect();
            let mut sim = Simulation::new(processes, DelayModel::asynchronous(), seed);
            run_workload(&mut sim, &schedule, spec.mode);
            sim.metrics().canonical_text()
        };
        assert_eq!(render(9), render(9));
        assert_ne!(render(9), render(10), "delay seed still matters");
    }

    #[test]
    fn stats_of_an_unfinished_workload_report_partial_completion() {
        let spec = WorkloadSpec::constant_rate(10_000, 4);
        let schedule = spec.schedule(10, 1);
        let mut sim = bd_sim(1);
        for injection in &schedule {
            sim.schedule_broadcast(
                SimTime::from_micros(injection.at_micros),
                injection.source,
                injection.payload.clone(),
            );
        }
        // Stop after the first broadcast can complete but before the last one can.
        sim.run_until(SimTime::from_millis(101));
        let correct = sim.correct_processes();
        let stats = workload_stats(sim.metrics(), &correct);
        assert!(stats.injected >= 4 - 1, "all arrivals by 30 ms");
        assert!(stats.completed < stats.injected);
        assert!(!stats.all_completed());
    }
}
