//! Regenerates Fig. 5a (latency) and Fig. 5b (network consumption) of the paper: the
//! lat. / bdw. / lat.&bdw. combined configurations versus BDopt + MBD.1 as a function of
//! the network connectivity, with (N, f) = (50, 10) and 1024 B payloads.
//!
//! Usage: `cargo run --release -p brb-bench --bin fig5 [-- --quick] [-- --async] [-- --workers N] [-- --stack NAME]`

use brb_bench::{async_from_args, figures::run_fig5, stack_from_args, workers_from_args, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_fig5(
        Scale::from_args(&args),
        async_from_args(&args),
        workers_from_args(&args),
        stack_from_args(&args),
    );
}
