//! Metrics collected during a simulation run.
//!
//! The paper's evaluation reports, per broadcast:
//!
//! * **latency** — the time until *all correct processes* have delivered (Sec. 7.1);
//! * **network consumption** — the total number of bytes put on the links (Table 3
//!   field accounting);
//! * **memory consumption** — dominated by the transmission paths stored for disjoint-path
//!   verification (Sec. 7.3), which the simulator tracks as a peak value.
//!
//! All per-kind and per-process tables are ordered maps, so two [`RunMetrics`] values that
//! compare equal also render to identical [`RunMetrics::canonical_text`] snapshots — the
//! property the golden-file determinism suite (`tests/determinism.rs`) is built on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use brb_core::types::{BroadcastId, ProcessId};
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Counters accumulated while a simulation runs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Number of messages transmitted on the links.
    pub messages_sent: usize,
    /// Total bytes transmitted (per the paper's Table 3 accounting).
    pub bytes_sent: usize,
    /// Messages per wire kind (diagnostic; keys are debug-formatted kinds). Ordered so
    /// that iteration — and therefore serialization — is deterministic.
    pub messages_per_kind: BTreeMap<String, usize>,
    /// Delivery time of each broadcast at each process, ordered by `(process, id)`.
    pub delivery_times: BTreeMap<(ProcessId, BroadcastId), SimTime>,
    /// Injection time of each broadcast: when its (non-crashed) source was asked to
    /// broadcast. Single-broadcast runs have exactly one entry at time 0; workload runs
    /// have one entry per effective injection. Per-broadcast delivery latency is the
    /// delivery time minus this time ([`RunMetrics::broadcast_latency`]).
    #[serde(default)]
    pub injection_times: BTreeMap<BroadcastId, SimTime>,
    /// Peak number of transmission paths stored by any single process.
    pub peak_stored_paths: usize,
    /// Peak protocol-state bytes held by any single process.
    pub peak_state_bytes: usize,
    /// Number of events processed by the simulator.
    pub events_processed: usize,
    /// Total broadcast instances retired through watermark GC, summed over all
    /// processes (0 when GC is disabled).
    #[serde(default)]
    pub gc_retired: u64,
    /// Protocol-state bytes still held across all processes when the run ended —
    /// the quantity that stays flat under GC and grows without it.
    #[serde(default)]
    pub retained_bytes: usize,
    /// Churn events applied during the run, in application order: `(virtual time in
    /// microseconds, rendered action)`. Empty for churn-free runs, so the existing
    /// golden snapshots are unaffected.
    #[serde(default)]
    pub churn_events: Vec<(u64, String)>,
    /// Consensus decisions reached during the run: `(process, decided value, decision
    /// round)`, ordered by process. Empty for non-consensus runs, so the existing
    /// golden snapshots are unaffected.
    #[serde(default)]
    pub decisions: Vec<(ProcessId, u8, u32)>,
    /// Number of consensus rounds the harness drove (0 for non-consensus runs).
    #[serde(default)]
    pub consensus_rounds: u32,
}

impl RunMetrics {
    /// Records a message transmission.
    pub fn record_send(&mut self, kind: &str, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes;
        // Hot path: only allocate the key string the first time a kind is seen.
        match self.messages_per_kind.get_mut(kind) {
            Some(count) => *count += 1,
            None => {
                self.messages_per_kind.insert(kind.to_string(), 1);
            }
        }
    }

    /// Records a delivery.
    pub fn record_delivery(&mut self, process: ProcessId, id: BroadcastId, at: SimTime) {
        self.delivery_times.entry((process, id)).or_insert(at);
    }

    /// Records a broadcast injection (the first time wins, like deliveries).
    pub fn record_injection(&mut self, id: BroadcastId, at: SimTime) {
        self.injection_times.entry(id).or_insert(at);
    }

    /// Records an applied churn event (events arrive in application order, which is
    /// nondecreasing in time — the compiled schedule's order).
    pub fn record_churn(&mut self, at: SimTime, action: &str) {
        self.churn_events.push((at.as_micros(), action.to_string()));
    }

    /// Number of broadcasts injected.
    pub fn injected_count(&self) -> usize {
        self.injection_times.len()
    }

    /// Latency of broadcast `id`: the time at which the **last** process among `correct`
    /// delivered it, or `None` if some correct process never delivered.
    pub fn latency(&self, id: BroadcastId, correct: &[ProcessId]) -> Option<SimTime> {
        let mut worst = SimTime::ZERO;
        for &p in correct {
            match self.delivery_times.get(&(p, id)) {
                Some(&t) => worst = worst.max(t),
                None => return None,
            }
        }
        Some(worst)
    }

    /// Per-broadcast delivery latency: the time from the injection of `id` until the
    /// **last** process among `correct` delivered it, or `None` if `id` was never
    /// injected or some correct process never delivered it.
    pub fn broadcast_latency(&self, id: BroadcastId, correct: &[ProcessId]) -> Option<SimTime> {
        let injected = *self.injection_times.get(&id)?;
        Some(self.latency(id, correct)?.saturating_sub(injected))
    }

    /// Number of correct processes (from `correct`) that delivered broadcast `id`.
    pub fn delivered_count(&self, id: BroadcastId, correct: &[ProcessId]) -> usize {
        correct
            .iter()
            .filter(|&&p| self.delivery_times.contains_key(&(p, id)))
            .count()
    }

    /// Network consumption in kilobytes (the unit of Figs. 4b/5b of the paper).
    pub fn kilobytes_sent(&self) -> f64 {
        self.bytes_sent as f64 / 1_000.0
    }

    /// Renders every counter into a canonical, line-oriented text form.
    ///
    /// Two metrics values render identically if and only if they are equal: all integer
    /// counters are printed in full, delivery times in exact microseconds, and both maps
    /// in their (deterministic) key order. The golden snapshots under `tests/golden/` and
    /// the 1-vs-N-worker sweep comparisons are byte-level comparisons of this rendering.
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "messages_sent={}", self.messages_sent);
        let _ = writeln!(out, "bytes_sent={}", self.bytes_sent);
        let _ = writeln!(out, "events_processed={}", self.events_processed);
        let _ = writeln!(out, "peak_stored_paths={}", self.peak_stored_paths);
        let _ = writeln!(out, "peak_state_bytes={}", self.peak_state_bytes);
        let _ = writeln!(out, "gc_retired={}", self.gc_retired);
        let _ = writeln!(out, "retained_bytes={}", self.retained_bytes);
        for (kind, count) in &self.messages_per_kind {
            let _ = writeln!(out, "kind {kind}={count}");
        }
        for (&id, &at) in &self.injection_times {
            let _ = writeln!(
                out,
                "injection ({}, {}) at_us={}",
                id.source,
                id.seq,
                at.as_micros()
            );
        }
        for (&(process, id), &at) in &self.delivery_times {
            let _ = writeln!(
                out,
                "delivery p{process} ({}, {}) at_us={}",
                id.source,
                id.seq,
                at.as_micros()
            );
        }
        // Emitted only for churned runs: churn-free metrics render exactly as before,
        // which keeps the pre-churn golden snapshots byte-identical.
        for (at, action) in &self.churn_events {
            let _ = writeln!(out, "churn at_us={at} {action}");
        }
        // Emitted only for consensus runs, for the same golden-compatibility reason.
        if !self.decisions.is_empty() || self.consensus_rounds > 0 {
            let _ = writeln!(out, "consensus_rounds={}", self.consensus_rounds);
            for (process, value, round) in &self.decisions {
                let _ = writeln!(out, "decision p{process} value={value} round={round}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_send_accumulates() {
        let mut m = RunMetrics::default();
        m.record_send("Echo", 100);
        m.record_send("Echo", 50);
        m.record_send("Ready", 10);
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.bytes_sent, 160);
        assert_eq!(m.messages_per_kind["Echo"], 2);
        assert_eq!(m.kilobytes_sent(), 0.16);
    }

    #[test]
    fn latency_is_the_worst_correct_delivery() {
        let mut m = RunMetrics::default();
        let id = BroadcastId::new(0, 0);
        m.record_delivery(1, id, SimTime::from_millis(100));
        m.record_delivery(2, id, SimTime::from_millis(250));
        assert_eq!(m.latency(id, &[1, 2]), Some(SimTime::from_millis(250)));
        assert_eq!(m.latency(id, &[1]), Some(SimTime::from_millis(100)));
        assert_eq!(m.latency(id, &[1, 2, 3]), None, "process 3 never delivered");
        assert_eq!(m.delivered_count(id, &[1, 2, 3]), 2);
    }

    #[test]
    fn first_delivery_time_wins() {
        let mut m = RunMetrics::default();
        let id = BroadcastId::new(0, 0);
        m.record_delivery(1, id, SimTime::from_millis(10));
        m.record_delivery(1, id, SimTime::from_millis(99));
        assert_eq!(m.delivery_times[&(1, id)], SimTime::from_millis(10));
    }

    #[test]
    fn canonical_text_is_stable_and_discriminating() {
        let mut a = RunMetrics::default();
        a.record_send("Echo", 10);
        a.record_send("Send", 5);
        a.record_delivery(2, BroadcastId::new(0, 1), SimTime::from_micros(1_500));
        a.record_delivery(1, BroadcastId::new(0, 1), SimTime::from_micros(999));
        let b = a.clone();
        assert_eq!(a.canonical_text(), b.canonical_text());
        assert!(a.canonical_text().contains("kind Echo=1"));
        assert!(a.canonical_text().contains("delivery p1 (0, 1) at_us=999"));
        let mut c = a.clone();
        c.record_send("Echo", 1);
        assert_ne!(a.canonical_text(), c.canonical_text());
    }

    #[test]
    fn broadcast_latency_subtracts_the_injection_time() {
        let mut m = RunMetrics::default();
        let id = BroadcastId::new(2, 3);
        m.record_injection(id, SimTime::from_millis(40));
        m.record_delivery(0, id, SimTime::from_millis(90));
        m.record_delivery(1, id, SimTime::from_millis(140));
        assert_eq!(
            m.broadcast_latency(id, &[0, 1]),
            Some(SimTime::from_millis(100))
        );
        assert_eq!(
            m.broadcast_latency(id, &[0, 1, 5]),
            None,
            "5 never delivered"
        );
        assert_eq!(
            m.broadcast_latency(BroadcastId::new(9, 9), &[0]),
            None,
            "never injected"
        );
        assert_eq!(m.injected_count(), 1);
    }

    #[test]
    fn injections_render_in_canonical_text() {
        let mut m = RunMetrics::default();
        m.record_injection(BroadcastId::new(1, 0), SimTime::from_micros(250));
        m.record_injection(BroadcastId::new(0, 2), SimTime::from_micros(125));
        // First injection time wins, like deliveries.
        m.record_injection(BroadcastId::new(1, 0), SimTime::from_micros(999));
        let text = m.canonical_text();
        assert!(text.contains("injection (1, 0) at_us=250"));
        assert!(text.contains("injection (0, 2) at_us=125"));
        let p0 = text.find("injection (0, 2)").unwrap();
        let p1 = text.find("injection (1, 0)").unwrap();
        assert!(p0 < p1, "injections are sorted by broadcast id");
    }

    #[test]
    fn canonical_text_orders_deliveries_by_process_then_id() {
        let mut m = RunMetrics::default();
        m.record_delivery(3, BroadcastId::new(1, 0), SimTime::from_micros(5));
        m.record_delivery(1, BroadcastId::new(2, 0), SimTime::from_micros(7));
        let text = m.canonical_text();
        let p1 = text.find("delivery p1").unwrap();
        let p3 = text.find("delivery p3").unwrap();
        assert!(p1 < p3, "deliveries must be sorted by process id");
    }
}
