//! Criterion comparison of the sink-based event API against the `Vec<Action>` shim.
//!
//! The `brb_core::stack` redesign added `handle_message_into(from, msg, &mut ActionBuf)`
//! to the [`Protocol`] trait so that hot loops reuse one action buffer across events
//! instead of allocating a fresh `Vec` per event (the simulator's dispatch path and the
//! deployment node loops both adopted it). These benchmarks measure the difference on the
//! event mix that dominates the N=100/k=12 quiescence scenario: Echo handling at a
//! well-connected BD process, and the full engine run itself (`engine_quiescence_n100_k12`
//! in `engine_step.rs` is the companion end-to-end number; its hot loop now runs on the
//! sink path).

use brb_core::bd::BdProcess;
use brb_core::config::Config;
use brb_core::protocol::{ActionBuf, Protocol};
use brb_core::types::{BroadcastId, Payload};
use brb_core::wire::{FieldPresence, MessageKind, PayloadRef, WireMessage};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// The (n, k, f) of the quiescence scenario; the process under benchmark has k = 12
/// neighbors and handles Echos from distinct originators, the dominant event kind.
const N: usize = 100;
const K: usize = 12;
const F: usize = 5;

fn echo_message(originator: usize, path_hop: usize) -> WireMessage {
    WireMessage {
        kind: MessageKind::Echo,
        id: BroadcastId::new(0, 0),
        originator,
        originator2: None,
        payload: PayloadRef::Inline(Payload::filled(1, 1024)),
        path: vec![originator, path_hop],
        fields: FieldPresence::full(),
    }
}

fn fresh_process() -> BdProcess {
    BdProcess::new(0, Config::bandwidth_preset(N, F), (1..=K).collect())
}

/// The pre-redesign event loop: one `Vec<Action>` allocated and dropped per event.
fn bench_vec_shim(c: &mut Criterion) {
    c.bench_function("bd_echo_burst_vec_shim", |b| {
        b.iter_with_setup(fresh_process, |mut process| {
            let mut total = 0usize;
            for originator in K + 1..K + 41 {
                let actions = process.handle_message(1, echo_message(originator, originator + 1));
                total += actions.len();
            }
            black_box(total)
        })
    });
}

/// The sink path: one reusable `ActionBuf`, drained in place after every event — what the
/// simulator's dispatch loop and the deployment node loops now do.
fn bench_action_sink(c: &mut Criterion) {
    c.bench_function("bd_echo_burst_action_sink", |b| {
        b.iter_with_setup(fresh_process, |mut process| {
            let mut sink: ActionBuf<WireMessage> = ActionBuf::new();
            let mut total = 0usize;
            for originator in K + 1..K + 41 {
                process.handle_message_into(1, echo_message(originator, originator + 1), &mut sink);
                total += sink.drain().count();
            }
            black_box(total)
        })
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_vec_shim, bench_action_sink
}
criterion_main!(benches);
