//! Internal per-content state of the Bracha–Dolev engine.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::disjoint::DisjointPathTracker;
use crate::types::{Content, ProcessId};
use crate::wire::MessageKind;

/// The three Bracha phases whose messages are disseminated by a Dolev instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) enum Phase {
    /// SEND message of the broadcast source.
    Send,
    /// ECHO message of some witness process.
    Echo,
    /// READY message of some process.
    Ready,
}

impl Phase {
    /// The plain wire message kind corresponding to this phase.
    pub(crate) fn kind(self) -> MessageKind {
        match self {
            Phase::Send => MessageKind::Send,
            Phase::Echo => MessageKind::Echo,
            Phase::Ready => MessageKind::Ready,
        }
    }
}

/// Identifies one Dolev dissemination instance inside a broadcast: the Bracha-layer
/// message of `originator` in a given phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub(crate) struct DolevKey {
    pub(crate) phase: Phase,
    pub(crate) originator: ProcessId,
}

/// State of one Dolev dissemination instance (one Bracha-layer message).
#[derive(Debug, Clone)]
pub(crate) struct DolevInstance {
    /// Disjoint-path tracker for this instance.
    pub(crate) tracker: DisjointPathTracker,
    /// Whether this process Dolev-delivered the instance.
    pub(crate) delivered: bool,
    /// Whether the empty path has already been forwarded after delivery (MD.2/MD.5).
    pub(crate) relayed_empty: bool,
    /// Neighbors that relayed this instance with an empty path, i.e. that Dolev-delivered
    /// it themselves (MD.3/MD.4).
    pub(crate) neighbors_delivered: BTreeSet<ProcessId>,
}

impl DolevInstance {
    pub(crate) fn new(max_combinations: usize) -> Self {
        Self {
            tracker: DisjointPathTracker::with_max_combinations(max_combinations),
            delivered: false,
            relayed_empty: false,
            neighbors_delivered: BTreeSet::new(),
        }
    }

    /// Creates an instance for a message this process created itself (trivially delivered).
    pub(crate) fn self_delivered(max_combinations: usize) -> Self {
        Self {
            delivered: true,
            relayed_empty: true,
            ..Self::new(max_combinations)
        }
    }
}

/// Bracha + Dolev state for one broadcast content.
#[derive(Debug, Clone)]
pub(crate) struct ContentState {
    /// The content (broadcast identifier and payload).
    pub(crate) content: Content,
    /// Whether this process already created its own ECHO message.
    pub(crate) sent_echo: bool,
    /// Whether this process already created its own READY message.
    pub(crate) sent_ready: bool,
    /// Whether this process BRB-delivered the content.
    pub(crate) delivered: bool,
    /// Originators whose ECHO message has been Dolev-delivered (plus this process once it
    /// echoes).
    pub(crate) echo_origins: BTreeSet<ProcessId>,
    /// Originators whose READY message has been Dolev-delivered.
    pub(crate) ready_origins: BTreeSet<ProcessId>,
    /// Dolev dissemination instances, one per Bracha-layer message.
    pub(crate) instances: HashMap<DolevKey, DolevInstance>,
    /// Neighbors whose READY has been Dolev-delivered (MBD.8: no further Echo to them).
    pub(crate) ready_neighbors: BTreeSet<ProcessId>,
    /// Per neighbor, the set of READY originators it relayed with an empty path (MBD.9).
    pub(crate) neighbor_empty_readys: BTreeMap<ProcessId, BTreeSet<ProcessId>>,
    /// Neighbors known to have BRB-delivered the content (MBD.9: no further message).
    pub(crate) neighbors_bd_delivered: BTreeSet<ProcessId>,
}

impl ContentState {
    pub(crate) fn new(content: Content) -> Self {
        Self {
            content,
            sent_echo: false,
            sent_ready: false,
            delivered: false,
            echo_origins: BTreeSet::new(),
            ready_origins: BTreeSet::new(),
            instances: HashMap::new(),
            ready_neighbors: BTreeSet::new(),
            neighbor_empty_readys: BTreeMap::new(),
            neighbors_bd_delivered: BTreeSet::new(),
        }
    }

    /// Whether the SEND instance of the broadcast source has been Dolev-delivered.
    pub(crate) fn send_validated(&self) -> bool {
        self.instances
            .get(&DolevKey {
                phase: Phase::Send,
                originator: self.content.id.source,
            })
            .map(|i| i.delivered)
            .unwrap_or(false)
    }

    /// Whether the READY instance of `originator` has been Dolev-delivered (MBD.6).
    pub(crate) fn ready_delivered(&self, originator: ProcessId) -> bool {
        self.instances
            .get(&DolevKey {
                phase: Phase::Ready,
                originator,
            })
            .map(|i| i.delivered)
            .unwrap_or(false)
    }

    /// Approximate number of bytes of protocol state held for this content.
    pub(crate) fn approx_memory_bytes(&self) -> usize {
        let instance_bytes: usize = self
            .instances
            .values()
            .map(|i| i.tracker.approx_memory_bytes() + 8 * i.neighbors_delivered.len() + 2)
            .sum();
        instance_bytes
            + 8 * (self.echo_origins.len() + self.ready_origins.len())
            + 8 * self.ready_neighbors.len()
            + 8 * self.neighbors_bd_delivered.len()
            + self
                .neighbor_empty_readys
                .values()
                .map(|s| 8 * s.len())
                .sum::<usize>()
            + self.content.payload.len()
    }
}

/// A message this process has decided to transmit, before MBD.3/MBD.4 merging and before
/// the MBD.1/MBD.5 wire-format decisions are applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PlannedSend {
    /// Destination neighbor.
    pub(crate) to: ProcessId,
    /// Phase of the Bracha-layer message.
    pub(crate) phase: Phase,
    /// Originator of the Bracha-layer message.
    pub(crate) originator: ProcessId,
    /// Dissemination path to transmit.
    pub(crate) path: Vec<ProcessId>,
    /// Whether this is a newly created message of this process (as opposed to a relay of a
    /// received one). Newly created messages may have their sender field elided (MBD.5)
    /// and are subject to the MBD.12 fanout reduction.
    pub(crate) newly_created: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BroadcastId, Payload};

    fn content() -> Content {
        Content::new(BroadcastId::new(2, 0), Payload::from("x"))
    }

    #[test]
    fn phase_kinds() {
        assert_eq!(Phase::Send.kind(), MessageKind::Send);
        assert_eq!(Phase::Echo.kind(), MessageKind::Echo);
        assert_eq!(Phase::Ready.kind(), MessageKind::Ready);
    }

    #[test]
    fn send_validated_reflects_send_instance() {
        let mut s = ContentState::new(content());
        assert!(!s.send_validated());
        s.instances.insert(
            DolevKey {
                phase: Phase::Send,
                originator: 2,
            },
            DolevInstance::self_delivered(16),
        );
        assert!(s.send_validated());
    }

    #[test]
    fn ready_delivered_lookup() {
        let mut s = ContentState::new(content());
        assert!(!s.ready_delivered(4));
        s.instances.insert(
            DolevKey {
                phase: Phase::Ready,
                originator: 4,
            },
            DolevInstance::new(16),
        );
        assert!(!s.ready_delivered(4));
        s.instances
            .get_mut(&DolevKey {
                phase: Phase::Ready,
                originator: 4,
            })
            .unwrap()
            .delivered = true;
        assert!(s.ready_delivered(4));
    }

    #[test]
    fn memory_estimate_grows_with_state() {
        let mut s = ContentState::new(content());
        let before = s.approx_memory_bytes();
        s.echo_origins.insert(1);
        s.echo_origins.insert(2);
        s.instances.insert(
            DolevKey {
                phase: Phase::Echo,
                originator: 1,
            },
            DolevInstance::new(16),
        );
        assert!(s.approx_memory_bytes() > before);
    }

    #[test]
    fn self_delivered_instance_is_marked_relayed() {
        let i = DolevInstance::self_delivered(8);
        assert!(i.delivered);
        assert!(i.relayed_empty);
        assert!(!DolevInstance::new(8).delivered);
    }
}
