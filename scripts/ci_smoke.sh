#!/usr/bin/env bash
# Sweep-determinism smoke check: runs the full quick-scale experiment suite (N <= 20)
# with 1 worker and with 4 workers, and requires the two CSV outputs to be byte-identical.
# This is the end-to-end guard for the parallel sweep engine's worker-count invariance
# (the unit/integration-level guards live in tests/determinism.rs).
#
# It then sweeps a second protocol stack (--stack bracha-routed-dolev, exercising the
# brb_core::stack boxed-engine path through the same harnesses) and checks the two
# stacks' CSVs tag their rows with the right stack name and actually differ.
#
# The 1-vs-4-worker runs include the quick-scale multi-broadcast workload sweep
# (--workload), so the byte-equality check also covers the workload engine's
# throughput + latency-percentile rows (merged latency histograms across workers),
# and the Byzantine behavior matrix (--behaviors), so it also covers the lossy /
# silent-towards / flooder scenario rows measured on the simulator, the channel
# runtime and the TCP deployment (sim rows go through the sweep engine and must be
# worker-invariant; live-backend rows report the deterministic delivery counts),
# and the churn scenario matrix (--churn), so it also covers the scheduled link
# flap / partition-heal / restart / per-link delay rows and the planar-grid /
# geometric / expander topology-family rows, and the consensus-over-BRB matrix
# (--consensus), so it also covers the binary-consensus decision-round /
# rounds-percentile / BRB-instance / instance-GC rows driven through the same
# deterministic sweep engine, and the structured-trace matrix (--trace), so it also
# covers the per-broadcast causal latency breakdown and drops-by-cause rows computed
# from the brb-trace event stream on the simulator's virtual clock, and the open-loop
# saturation ramp (--saturation), so it also covers the offered-rate / throughput /
# latency-percentile / knee rows of the deterministic simulator ramp (the wall-clock
# knee study with batching + sharding on vs off is the separate bench_saturation
# binary checked below).
#
# Usage: scripts/ci_smoke.sh [output-dir]
set -euo pipefail

out="${1:-target/smoke}"
mkdir -p "$out"

# Time-box each run: the quick preset finishes in well under a minute on CI hardware,
# so ten minutes signals a hang rather than a slow machine.
timeout 600 cargo run --release -p brb-bench --bin all_experiments -- \
    --quick --workload --behaviors --churn --consensus --trace --saturation --workers 1 \
    --csv "$out/sweep_w1.csv" > "$out/stdout_w1.txt"
timeout 600 cargo run --release -p brb-bench --bin all_experiments -- \
    --quick --workload --behaviors --churn --consensus --trace --saturation --workers 4 \
    --csv "$out/sweep_w4.csv" > "$out/stdout_w4.txt"

if ! diff -u "$out/sweep_w1.csv" "$out/sweep_w4.csv"; then
    echo "FAIL: sweep output differs between 1 and 4 workers" >&2
    exit 1
fi

rows=$(wc -l < "$out/sweep_w1.csv")
if [ "$rows" -lt 10 ]; then
    echo "FAIL: suspiciously small CSV ($rows rows) — did the sweep run?" >&2
    exit 1
fi

workload_rows=$(grep -c "^workload," "$out/sweep_w1.csv" || true)
if [ "$workload_rows" -lt 10 ]; then
    echo "FAIL: expected >= 10 workload rows, found $workload_rows — did --workload run?" >&2
    exit 1
fi

behavior_rows=$(grep -c "^behavior," "$out/sweep_w1.csv" || true)
if [ "$behavior_rows" -lt 21 ]; then
    echo "FAIL: expected >= 21 behavior rows (7 scenarios x 3 backends), found $behavior_rows — did --behaviors run?" >&2
    exit 1
fi
for backend in sim runtime tcp; do
    if ! grep -q "^behavior,.*,lossy-0.2,$backend," "$out/sweep_w1.csv"; then
        echo "FAIL: no lossy-0.2 behavior row for backend $backend" >&2
        exit 1
    fi
done

churn_rows=$(grep -c "^churn," "$out/sweep_w1.csv" || true)
if [ "$churn_rows" -lt 8 ]; then
    echo "FAIL: expected >= 8 churn rows (5 scenarios + 3 topology families), found $churn_rows — did --churn run?" >&2
    exit 1
fi
for scenario in flap partition-heal restart link-delay mixed; do
    if ! grep -q "^churn,.*,$scenario," "$out/sweep_w1.csv"; then
        echo "FAIL: no churn row for scenario $scenario" >&2
        exit 1
    fi
done

families_rows=$(grep -c "^families," "$out/sweep_w1.csv" || true)
if [ "$families_rows" -lt 5 ]; then
    echo "FAIL: expected >= 5 topology-family rows (3 families at k=3 + 2 at k=5), found $families_rows" >&2
    exit 1
fi
for family in planar-grid geometric expander; do
    if ! grep -q "^families,.*,$family," "$out/sweep_w1.csv"; then
        echo "FAIL: no topology-family row for $family" >&2
        exit 1
    fi
done

consensus_rows=$(grep -c "^consensus," "$out/sweep_w1.csv" || true)
if [ "$consensus_rows" -lt 4 ]; then
    echo "FAIL: expected >= 4 consensus rows (proposal/flipper scenarios), found $consensus_rows — did --consensus run?" >&2
    exit 1
fi
for scenario in unanimous1 split random split-flip; do
    if ! grep -q "^consensus,.*,$scenario," "$out/sweep_w1.csv"; then
        echo "FAIL: no consensus row for scenario $scenario" >&2
        exit 1
    fi
done

trace_rows=$(grep -c "^trace," "$out/sweep_w1.csv" || true)
trace_drop_rows=$(grep -c "^trace_drops," "$out/sweep_w1.csv" || true)
if [ "$trace_rows" -lt 3 ]; then
    echo "FAIL: expected >= 3 trace breakdown rows (one per scenario), found $trace_rows — did --trace run?" >&2
    exit 1
fi
if [ "$trace_drop_rows" -lt 15 ]; then
    echo "FAIL: expected >= 15 trace_drops rows (3 scenarios x 5 causes), found $trace_drop_rows" >&2
    exit 1
fi
for cause in loss churn_gate behavior gc_retired non_neighbor; do
    if ! grep -q "^trace_drops,.*,$cause," "$out/sweep_w1.csv"; then
        echo "FAIL: no trace_drops row for cause $cause" >&2
        exit 1
    fi
done

saturation_rows=$(grep -c "^saturation," "$out/sweep_w1.csv" || true)
if [ "$saturation_rows" -lt 5 ]; then
    echo "FAIL: expected >= 5 saturation rows (one per ramp interval), found $saturation_rows — did --saturation run?" >&2
    exit 1
fi
if ! grep -q "^saturation,.*,open-loop/zipf," "$out/sweep_w1.csv"; then
    echo "FAIL: no open-loop/zipf saturation row" >&2
    exit 1
fi
knee_rows=$(grep -c "^saturation,.*,1$" "$out/sweep_w1.csv" || true)
if [ "$knee_rows" != 1 ]; then
    echo "FAIL: expected exactly 1 knee-flagged saturation row, found $knee_rows" >&2
    exit 1
fi

echo "OK: 1-worker and 4-worker sweeps produced identical CSVs ($rows rows, $workload_rows workload rows, $behavior_rows behavior rows incl. the lossy runs, $churn_rows churn rows, $families_rows topology-family rows, $consensus_rows consensus rows, $trace_rows trace + $trace_drop_rows trace_drops rows, $saturation_rows saturation rows incl. the knee)"

# Second stack: the same harnesses, parameters and topologies, but running the plain
# Bracha-over-routed-Dolev stack through the boxed DynEngine path.
timeout 600 cargo run --release -p brb-bench --bin all_experiments -- \
    --quick --workers 4 --stack bracha-routed-dolev \
    --csv "$out/sweep_brd.csv" > "$out/stdout_brd.txt"

if ! grep -q ",bd," "$out/sweep_w1.csv"; then
    echo "FAIL: default sweep CSV does not tag its rows with the bd stack" >&2
    exit 1
fi
if ! grep -q ",bracha-routed-dolev," "$out/sweep_brd.csv"; then
    echo "FAIL: second sweep CSV does not tag its rows with bracha-routed-dolev" >&2
    exit 1
fi
if diff -q "$out/sweep_w1.csv" "$out/sweep_brd.csv" > /dev/null; then
    echo "FAIL: the two stacks produced identical CSVs — the --stack flag is inert" >&2
    exit 1
fi
# The second stack runs without --workload/--behaviors/--churn/--consensus/--trace/
# --saturation; compare only the shared rows (the topology-family rows are
# unconditional, so they appear in both runs).
base_rows=$((rows - workload_rows - behavior_rows - churn_rows - consensus_rows - trace_rows - trace_drop_rows - saturation_rows))
if [ "$(wc -l < "$out/sweep_brd.csv")" != "$base_rows" ]; then
    echo "FAIL: the two stacks swept a different number of data points" >&2
    exit 1
fi

echo "OK: bd and bracha-routed-dolev sweeps ran the same $base_rows-row matrix with per-stack results"

# Bounded-memory benchmark: machine-readable quiescence timing plus the GC-off/GC-on
# memory-curve endpoints. The binary itself asserts the boundedness invariants (linear
# growth without GC, flat with GC) and exits non-zero on regression; here we only check
# the JSON artifact exists and carries the expected fields.
timeout 600 cargo run --release -p brb-bench --bin bench_quiescence -- \
    --out "$out/BENCH_quiescence.json" > "$out/stdout_bench_quiescence.txt"
for field in mean_ms gc_off gc_on first_bytes last_bytes gc_retired; do
    if ! grep -q "\"$field\"" "$out/BENCH_quiescence.json"; then
        echo "FAIL: BENCH_quiescence.json is missing field \"$field\"" >&2
        exit 1
    fi
done

echo "OK: BENCH_quiescence.json written (boundedness asserted by the benchmark binary)"

# Consensus-over-BRB benchmark: mean wall-clock decision latency, decided round and
# BRB-instance/GC counts per proposal scenario at a fixed seed. The binary asserts the
# termination/agreement/GC invariants itself and exits non-zero on regression; here we
# only check the JSON artifact exists and carries the expected fields.
timeout 600 cargo run --release -p brb-bench --bin bench_consensus -- \
    --out "$out/BENCH_consensus.json" > "$out/stdout_bench_consensus.txt"
for field in mean_ms decision_value decision_round rounds_driven instances gc_retired \
    unanimous1 split split_flip; do
    if ! grep -q "\"$field\"" "$out/BENCH_consensus.json"; then
        echo "FAIL: BENCH_consensus.json is missing field \"$field\"" >&2
        exit 1
    fi
done

echo "OK: BENCH_consensus.json written (consensus invariants asserted by the benchmark binary)"

# Saturation study: the wall-clock knee of the live backends (bd + bracha stacks,
# channel + TCP, classic vs batched+sharded transport). Wall-clock numbers vary with
# the host, so no byte-diff here — only that the quick-scale ramp runs and the JSON
# carries every combination's knee fields.
timeout 600 cargo run --release -p brb-bench --bin bench_saturation -- \
    --quick --out "$out/BENCH_saturation.json" > "$out/stdout_bench_saturation.txt"
for field in knee_offered_per_sec knee_throughput_per_sec knee_p99_ms curve \
    classic batched_sharded channel tcp bd bracha; do
    if ! grep -q "\"$field\"" "$out/BENCH_saturation.json"; then
        echo "FAIL: BENCH_saturation.json is missing field \"$field\"" >&2
        exit 1
    fi
done

echo "OK: BENCH_saturation.json written (live knee study: batching+sharding on vs off)"

# Structured-trace study: the same seeded adversarial scenario on the simulator, the
# channel runtime and TCP must produce identical order-normalized causal event
# sequences (asserted inside the example), and the emitted JSONL + Chrome trace-event
# artifacts must validate against the brb-trace event schema.
timeout 600 cargo run --release --example trace_study -- "$out" > "$out/stdout_trace_study.txt"
timeout 600 cargo run --release -p brb-bench --bin trace_validate -- \
    --jsonl "$out/trace_study.jsonl" --chrome "$out/trace_study_chrome.json" \
    > "$out/stdout_trace_validate.txt"

echo "OK: trace_study causal sequences identical across backends; emitted trace artifacts validate"
