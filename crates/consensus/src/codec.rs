//! Wire formats for consensus round-messages and harness control operations.
//!
//! Two distinct magic prefixes keep the namespaces apart:
//!
//! * [`MSG_MAGIC`] tags **round-messages** (`EST`/`AUX`), the payloads that actually
//!   travel through BRB instances. Each one is minted in
//!   [`brb_core::types::NAMESPACE_CONSENSUS`] under the slot scheme
//!   `local = (round << 2) | slot` with slot `0`/`1` for `EST` of value 0/1 and
//!   slot [`SLOT_AUX`] for the round's single `AUX`. Decoding cross-checks the
//!   payload against the slot carried by the [`brb_core::types::BroadcastId`], so a
//!   Byzantine process cannot smuggle an `EST(1)` under the `EST(0)` instance id.
//! * [`CTL_MAGIC`] tags **control operations** (`Propose` / `CloseBv` / `CloseRound`),
//!   which never reach the network: the harness hands them to
//!   [`crate::ConsensusEngine::broadcast_wire`](brb_core::stack::DynEngine::broadcast_wire)
//!   through the ordinary broadcast entry point (so the same `Command::Broadcast`
//!   plumbing works on every backend) and the engine intercepts them locally.

use brb_core::types::{seq_local, BroadcastSeq, Payload};

/// Magic prefix of consensus round-message payloads (`EST`/`AUX`).
pub const MSG_MAGIC: [u8; 4] = *b"CNSM";

/// Magic prefix of harness control operations (never sent over the wire).
pub const CTL_MAGIC: [u8; 4] = *b"CNSC";

/// Wire slot carrying a round's `AUX` message (slots 0 and 1 are `EST` of that value).
pub const SLOT_AUX: u32 = 2;

/// Number of low bits of a namespace-local sequence number that carry the slot.
pub const SLOT_BITS: u32 = 2;

/// A consensus round-message, as carried by one BRB instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundMsg {
    /// Binary-value broadcast of `value` for `round` (phase 1).
    Est {
        /// Consensus round the estimate belongs to.
        round: u32,
        /// The binary estimate (0 or 1).
        value: u8,
    },
    /// The round's single auxiliary vote for `value` (phase 2).
    Aux {
        /// Consensus round the vote belongs to.
        round: u32,
        /// The binary vote (0 or 1).
        value: u8,
    },
}

impl RoundMsg {
    /// The round this message belongs to.
    pub fn round(&self) -> u32 {
        match *self {
            RoundMsg::Est { round, .. } | RoundMsg::Aux { round, .. } => round,
        }
    }

    /// The binary value this message carries.
    pub fn value(&self) -> u8 {
        match *self {
            RoundMsg::Est { value, .. } | RoundMsg::Aux { value, .. } => value,
        }
    }

    /// The wire slot this message occupies within its round.
    pub fn slot(&self) -> u32 {
        match *self {
            RoundMsg::Est { value, .. } => value as u32,
            RoundMsg::Aux { .. } => SLOT_AUX,
        }
    }

    /// Namespace-local sequence number of the BRB instance carrying this message.
    pub fn local_seq(&self) -> u32 {
        (self.round() << SLOT_BITS) | self.slot()
    }

    /// Encodes the message payload (`MSG_MAGIC ++ tag ++ round LE ++ value`).
    pub fn encode(&self) -> Payload {
        let (tag, round, value) = match *self {
            RoundMsg::Est { round, value } => (0u8, round, value),
            RoundMsg::Aux { round, value } => (1u8, round, value),
        };
        let mut bytes = Vec::with_capacity(10);
        bytes.extend_from_slice(&MSG_MAGIC);
        bytes.push(tag);
        bytes.extend_from_slice(&round.to_le_bytes());
        bytes.push(value);
        Payload::new(bytes)
    }

    /// Decodes a round-message from a delivered payload, cross-checking it against the
    /// namespace-local part of the instance's sequence number.
    ///
    /// Returns `None` (the delivery is ignored) when the payload is malformed, carries a
    /// non-binary value, or disagrees with the slot the instance id claims — a Byzantine
    /// source can equivocate between payload and id, but never make correct processes
    /// account the message under the wrong `(round, slot)`.
    pub fn decode(seq: BroadcastSeq, bytes: &[u8]) -> Option<RoundMsg> {
        if bytes.len() != 10 || bytes[..4] != MSG_MAGIC {
            return None;
        }
        let tag = bytes[4];
        let round = u32::from_le_bytes([bytes[5], bytes[6], bytes[7], bytes[8]]);
        let value = bytes[9];
        if value > 1 {
            return None;
        }
        let msg = match tag {
            0 => RoundMsg::Est { round, value },
            1 => RoundMsg::Aux { round, value },
            _ => return None,
        };
        if msg.local_seq() != seq_local(seq) {
            return None;
        }
        Some(msg)
    }
}

/// A harness-issued control operation, intercepted locally by the consensus engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlOp {
    /// Start round 0: adopt the configured proposal and BV-broadcast it.
    Propose,
    /// Close the BV phase of `round` at quiescence: emit the round's `AUX` vote.
    CloseBv(u32),
    /// Close `round` at quiescence: evaluate the decide rule and enter the next round.
    CloseRound(u32),
}

impl ControlOp {
    /// Encodes the operation as a payload for `broadcast_wire` interception.
    pub fn encode(&self) -> Payload {
        let mut bytes = Vec::with_capacity(9);
        bytes.extend_from_slice(&CTL_MAGIC);
        match *self {
            ControlOp::Propose => bytes.push(0),
            ControlOp::CloseBv(round) => {
                bytes.push(1);
                bytes.extend_from_slice(&round.to_le_bytes());
            }
            ControlOp::CloseRound(round) => {
                bytes.push(2);
                bytes.extend_from_slice(&round.to_le_bytes());
            }
        }
        Payload::new(bytes)
    }

    /// Decodes a control operation, or `None` if `bytes` is an ordinary client payload.
    pub fn decode(bytes: &[u8]) -> Option<ControlOp> {
        if bytes.len() < 5 || bytes[..4] != CTL_MAGIC {
            return None;
        }
        let round = |b: &[u8]| (b.len() == 9).then(|| u32::from_le_bytes([b[5], b[6], b[7], b[8]]));
        match bytes[4] {
            0 if bytes.len() == 5 => Some(ControlOp::Propose),
            1 => round(bytes).map(ControlOp::CloseBv),
            2 => round(bytes).map(ControlOp::CloseRound),
            _ => None,
        }
    }
}

/// Payload instructing a consensus engine to propose its configured value (round 0).
pub fn propose_payload() -> Payload {
    ControlOp::Propose.encode()
}

/// Payload instructing a consensus engine to close the BV phase of `round`.
pub fn close_bv_payload(round: u32) -> Payload {
    ControlOp::CloseBv(round).encode()
}

/// Payload instructing a consensus engine to close `round` and enter the next one.
pub fn close_round_payload(round: u32) -> Payload {
    ControlOp::CloseRound(round).encode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_core::types::{namespaced_seq, NAMESPACE_CONSENSUS};

    #[test]
    fn round_msgs_round_trip_through_their_own_slot() {
        for msg in [
            RoundMsg::Est { round: 3, value: 0 },
            RoundMsg::Est { round: 3, value: 1 },
            RoundMsg::Aux { round: 7, value: 1 },
        ] {
            let seq = namespaced_seq(NAMESPACE_CONSENSUS, msg.local_seq());
            let payload = msg.encode();
            assert_eq!(RoundMsg::decode(seq, payload.as_bytes()), Some(msg));
        }
    }

    #[test]
    fn slot_mismatch_is_rejected() {
        // EST(3, 1) smuggled under the EST(3, 0) instance id.
        let lying_seq = namespaced_seq(
            NAMESPACE_CONSENSUS,
            RoundMsg::Est { round: 3, value: 0 }.local_seq(),
        );
        let payload = RoundMsg::Est { round: 3, value: 1 }.encode();
        assert_eq!(RoundMsg::decode(lying_seq, payload.as_bytes()), None);
        // Wrong round under the right slot bits is likewise rejected.
        let payload = RoundMsg::Est { round: 4, value: 0 }.encode();
        assert_eq!(RoundMsg::decode(lying_seq, payload.as_bytes()), None);
    }

    #[test]
    fn control_ops_round_trip_and_client_payloads_pass_through() {
        for op in [
            ControlOp::Propose,
            ControlOp::CloseBv(0),
            ControlOp::CloseRound(41),
        ] {
            assert_eq!(ControlOp::decode(op.encode().as_bytes()), Some(op));
        }
        assert_eq!(ControlOp::decode(b"plain client payload"), None);
        assert_eq!(ControlOp::decode(&MSG_MAGIC), None);
    }
}
