//! Verification of node-disjoint transmission paths (the core of Dolev's delivery rule).
//!
//! A process running Dolev's protocol delivers a content as soon as it has received it
//! through at least `f + 1` node-disjoint paths. Deciding whether a *set of received
//! paths* contains `f + 1` pairwise node-disjoint members is an instance of maximum set
//! packing, solved here the way the paper describes (Sec. 6.6):
//!
//! * paths are grouped by the neighbor that relayed them, since disjoint paths necessarily
//!   arrive through distinct neighbors;
//! * the process uses dynamic programming: it remembers the combinations of disjoint paths
//!   explored so far (as the union of their node sets plus a cardinality), and combines
//!   each newly received path with the memoized combinations instead of recomputing all
//!   combinations from scratch.
//!
//! A message received **directly from the source** over the authenticated link is a path
//! with an empty set of intermediate nodes; it is disjoint from every other path and, when
//! modification MD.1 is enabled, short-circuits the whole computation.

use std::collections::HashMap;

use crate::pathset::PathSet;
use crate::types::ProcessId;

/// Default bound on the number of memoized combinations kept per content.
///
/// The worst-case number of combinations is exponential (this is exactly the exponential
/// verification cost the paper attributes to Dolev's protocol); the tracker keeps the
/// search exact until this bound and degrades to a "best effort" greedy extension beyond
/// it. The bound is far above what any of the paper's workloads produce once MD.1–5 are
/// enabled.
pub const DEFAULT_MAX_COMBINATIONS: usize = 50_000;

/// Incremental tracker of the maximum number of node-disjoint paths received for one
/// content.
#[derive(Debug, Clone)]
pub struct DisjointPathTracker {
    /// Memoized combinations: union of intermediate nodes -> maximum number of disjoint
    /// paths achieving exactly that union.
    combos: HashMap<PathSet, usize>,
    /// All distinct paths received so far (used to avoid re-adding duplicates).
    paths: Vec<PathSet>,
    /// Paths received per relaying neighbor (kept for introspection / statistics).
    per_neighbor: HashMap<ProcessId, usize>,
    /// Best number of pairwise disjoint paths found so far.
    best: usize,
    /// Whether the content was received directly from its source.
    direct: bool,
    /// Bound on `combos` size before the tracker degrades to greedy extension.
    max_combinations: usize,
    /// Whether the bound was hit at least once (statistics / debugging).
    saturated: bool,
}

impl Default for DisjointPathTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl DisjointPathTracker {
    /// Creates a tracker with the default combination bound.
    pub fn new() -> Self {
        Self::with_max_combinations(DEFAULT_MAX_COMBINATIONS)
    }

    /// Creates a tracker with a custom combination bound.
    pub fn with_max_combinations(max_combinations: usize) -> Self {
        let mut combos = HashMap::new();
        combos.insert(PathSet::new(), 0);
        Self {
            combos,
            paths: Vec::new(),
            per_neighbor: HashMap::new(),
            best: 0,
            direct: false,
            max_combinations: max_combinations.max(1),
            saturated: false,
        }
    }

    /// Records that the content was received directly from its source over the
    /// authenticated link joining them.
    pub fn record_direct(&mut self) {
        self.direct = true;
    }

    /// Whether the content was received directly from the source.
    pub fn received_direct(&self) -> bool {
        self.direct
    }

    /// Number of distinct paths recorded.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }

    /// Number of memoized combinations currently stored (a proxy for the verification
    /// memory the paper measures in Sec. 7.3).
    pub fn combination_count(&self) -> usize {
        self.combos.len()
    }

    /// Whether the combination bound was reached (the result may then be a lower bound).
    pub fn is_saturated(&self) -> bool {
        self.saturated
    }

    /// Best number of pairwise node-disjoint paths found so far. A direct reception counts
    /// as one disjoint path on top of the relayed ones (its intermediate set is empty).
    pub fn best_disjoint(&self) -> usize {
        if self.direct {
            self.best + 1
        } else {
            self.best
        }
    }

    /// Returns whether the stored paths certify `threshold` node-disjoint paths.
    pub fn reaches(&self, threshold: usize) -> bool {
        self.best_disjoint() >= threshold
    }

    /// Whether an already-recorded path is a subset of `path` (used by MBD.10 before
    /// calling [`DisjointPathTracker::add_path`]).
    pub fn has_subpath_of(&self, path: &PathSet) -> bool {
        self.paths.iter().any(|p| p.is_subset(path))
    }

    /// Records a new path (a set of intermediate process identifiers, excluding the source
    /// and the destination) relayed by `via`, and returns the updated best disjoint count.
    ///
    /// Duplicate paths are ignored. An empty `path` coming from a relay (not the source)
    /// never occurs in Dolev's protocol — empty relayed paths are produced by MD.2 and are
    /// translated by the caller into a singleton set containing the relaying neighbor.
    pub fn add_path(&mut self, path: PathSet, via: ProcessId) -> usize {
        if self.paths.contains(&path) {
            return self.best_disjoint();
        }
        *self.per_neighbor.entry(via).or_insert(0) += 1;
        self.paths.push(path.clone());

        // Combine the new path with every memoized combination it is disjoint from.
        let mut additions: Vec<(PathSet, usize)> = Vec::new();
        for (union, count) in &self.combos {
            if union.is_disjoint(&path) {
                let new_union = union.union(&path);
                let new_count = count + 1;
                additions.push((new_union, new_count));
            }
        }
        for (union, count) in additions {
            if self.combos.len() >= self.max_combinations {
                self.saturated = true;
                // Greedy fallback: still track the best count even if we stop memoizing.
                self.best = self.best.max(count);
                continue;
            }
            let entry = self.combos.entry(union).or_insert(0);
            if count > *entry {
                *entry = count;
            }
            self.best = self.best.max(count);
        }
        self.best_disjoint()
    }

    /// Paths recorded per relaying neighbor.
    pub fn paths_per_neighbor(&self) -> &HashMap<ProcessId, usize> {
        &self.per_neighbor
    }

    /// Drops all memoized state (used by MD.2: once delivered, the stored paths are no
    /// longer needed). Keeps only the delivery-relevant summary.
    pub fn clear_paths(&mut self) {
        self.paths.clear();
        self.paths.shrink_to_fit();
        self.combos.clear();
        self.combos.shrink_to_fit();
        self.per_neighbor.clear();
    }

    /// Approximate number of bytes of protocol state held by this tracker (used by the
    /// Sec. 7.3 memory-consumption proxy).
    pub fn approx_memory_bytes(&self) -> usize {
        let path_bytes: usize = self
            .paths
            .iter()
            .map(|p| 8 * ((p.to_vec().len() / 64) + 1))
            .sum();
        let combo_bytes = self.combos.len() * 24;
        path_bytes + combo_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(ids: &[ProcessId]) -> PathSet {
        PathSet::from_iter_ids(ids.iter().copied())
    }

    #[test]
    fn empty_tracker_has_no_disjoint_paths() {
        let t = DisjointPathTracker::new();
        assert_eq!(t.best_disjoint(), 0);
        assert!(!t.reaches(1));
        assert_eq!(t.path_count(), 0);
    }

    #[test]
    fn direct_reception_counts_as_one_path() {
        let mut t = DisjointPathTracker::new();
        t.record_direct();
        assert!(t.received_direct());
        assert_eq!(t.best_disjoint(), 1);
        assert!(t.reaches(1));
        assert!(!t.reaches(2));
    }

    #[test]
    fn two_disjoint_paths() {
        let mut t = DisjointPathTracker::new();
        assert_eq!(t.add_path(ps(&[1, 2]), 2), 1);
        assert_eq!(t.add_path(ps(&[3, 4]), 4), 2);
        assert!(t.reaches(2));
    }

    #[test]
    fn overlapping_paths_do_not_increase_count() {
        let mut t = DisjointPathTracker::new();
        t.add_path(ps(&[1, 2]), 2);
        t.add_path(ps(&[2, 3]), 3);
        assert_eq!(t.best_disjoint(), 1);
    }

    #[test]
    fn needs_search_not_greedy() {
        // Greedy by arrival order would pick {1,2,3} first and then be stuck; the optimal
        // packing {1,2} + {3,4} requires considering combinations.
        let mut t = DisjointPathTracker::new();
        t.add_path(ps(&[1, 2, 3]), 3);
        t.add_path(ps(&[1, 2]), 2);
        t.add_path(ps(&[3, 4]), 4);
        assert_eq!(t.best_disjoint(), 2);
    }

    #[test]
    fn direct_plus_relayed() {
        let mut t = DisjointPathTracker::new();
        t.add_path(ps(&[5]), 5);
        t.record_direct();
        assert_eq!(t.best_disjoint(), 2);
    }

    #[test]
    fn duplicate_paths_are_ignored() {
        let mut t = DisjointPathTracker::new();
        t.add_path(ps(&[1]), 1);
        t.add_path(ps(&[1]), 1);
        assert_eq!(t.path_count(), 1);
        assert_eq!(t.best_disjoint(), 1);
    }

    #[test]
    fn three_way_packing() {
        let mut t = DisjointPathTracker::new();
        t.add_path(ps(&[1, 2]), 1);
        t.add_path(ps(&[3]), 3);
        t.add_path(ps(&[4, 5]), 4);
        t.add_path(ps(&[1, 3, 5]), 5);
        assert_eq!(t.best_disjoint(), 3);
        assert!(t.reaches(3));
        assert!(!t.reaches(4));
    }

    #[test]
    fn subpath_detection_for_mbd10() {
        let mut t = DisjointPathTracker::new();
        t.add_path(ps(&[1, 2]), 2);
        assert!(t.has_subpath_of(&ps(&[1, 2, 3])));
        assert!(t.has_subpath_of(&ps(&[1, 2])));
        assert!(!t.has_subpath_of(&ps(&[2, 3])));
    }

    #[test]
    fn clear_paths_resets_memory_but_not_best() {
        let mut t = DisjointPathTracker::new();
        t.add_path(ps(&[1]), 1);
        t.add_path(ps(&[2]), 2);
        assert!(t.approx_memory_bytes() > 0);
        t.clear_paths();
        assert_eq!(t.path_count(), 0);
        assert_eq!(t.combination_count(), 0);
        // The best count reflects what has already been verified.
        assert_eq!(t.best_disjoint(), 2);
    }

    #[test]
    fn saturation_keeps_a_sound_lower_bound() {
        let mut t = DisjointPathTracker::with_max_combinations(2);
        t.add_path(ps(&[1]), 1);
        t.add_path(ps(&[2]), 2);
        t.add_path(ps(&[3]), 3);
        assert!(t.is_saturated());
        // Even when saturated, reported counts never exceed the true optimum.
        assert!(t.best_disjoint() <= 3);
        assert!(t.best_disjoint() >= 1);
    }

    #[test]
    fn per_neighbor_accounting() {
        let mut t = DisjointPathTracker::new();
        t.add_path(ps(&[1, 2]), 2);
        t.add_path(ps(&[3, 4]), 4);
        t.add_path(ps(&[5, 4]), 4);
        assert_eq!(t.paths_per_neighbor().get(&4), Some(&2));
        assert_eq!(t.paths_per_neighbor().get(&2), Some(&1));
    }
}
