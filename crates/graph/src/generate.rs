//! Topology generators used by the paper's evaluation.
//!
//! The evaluation of the paper generates one **random regular graph** per `(N, k, f)`
//! tuple (Sec. 7.1, using NetworkX's implementation of Steger–Wormald). We reproduce that
//! family with a pairing-model generator with rejection and retries, plus a few classic
//! deterministic topologies used in unit tests and examples.

use std::collections::BTreeSet;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::connectivity::vertex_connectivity;
use crate::graph::{Graph, ProcessId};
use crate::traversal::is_connected;

/// Error returned by graph generators when the requested parameters are infeasible or when
/// random generation repeatedly failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// `n * d` must be even and `d < n` for a `d`-regular graph over `n` nodes to exist.
    InfeasibleRegular {
        /// Requested number of nodes.
        n: usize,
        /// Requested degree.
        degree: usize,
    },
    /// The generator did not produce a valid graph within its retry budget.
    RetriesExhausted {
        /// Number of attempts performed.
        attempts: usize,
    },
    /// The requested connectivity cannot be achieved with the given parameters.
    InfeasibleConnectivity {
        /// Requested number of nodes.
        n: usize,
        /// Requested vertex connectivity.
        connectivity: usize,
    },
}

impl std::fmt::Display for GenerateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenerateError::InfeasibleRegular { n, degree } => {
                write!(f, "no {degree}-regular graph exists over {n} nodes")
            }
            GenerateError::RetriesExhausted { attempts } => {
                write!(f, "graph generation failed after {attempts} attempts")
            }
            GenerateError::InfeasibleConnectivity { n, connectivity } => {
                write!(
                    f,
                    "cannot build a {connectivity}-vertex-connected graph over {n} nodes"
                )
            }
        }
    }
}

impl std::error::Error for GenerateError {}

/// Complete graph over `n` nodes (the topology assumed by Bracha's original protocol).
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// Ring (cycle) over `n` nodes. Vertex connectivity 2 for `n >= 3`.
pub fn ring(n: usize) -> Graph {
    let mut g = Graph::new(n);
    if n >= 2 {
        for u in 0..n {
            g.add_edge(u, (u + 1) % n);
        }
    }
    g
}

/// Circulant graph: node `i` is connected to `i ± 1, ..., i ± width (mod n)`.
///
/// For `n > 2 * width` this is a `2*width`-regular, `2*width`-vertex-connected graph, a
/// convenient deterministic family for tests that need a prescribed connectivity.
pub fn circulant(n: usize, width: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for off in 1..=width {
            g.add_edge(u, (u + off) % n);
        }
    }
    g
}

/// The 10-node, 3-connected example topology of Fig. 1 in the paper.
///
/// The exact drawing is not fully specified in the text, so we use the circulant graph
/// `C_10(1, 2)` minus nothing — a 4-regular graph — reduced to a 3-regular, 3-connected
/// graph: the Petersen graph, the canonical 3-regular 3-connected graph on 10 vertices.
pub fn figure1_example() -> Graph {
    // Petersen graph: outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5.
    let mut g = Graph::new(10);
    for i in 0..5 {
        g.add_edge(i, (i + 1) % 5); // outer cycle
        g.add_edge(5 + i, 5 + ((i + 2) % 5)); // inner pentagram
        g.add_edge(i, i + 5); // spokes
    }
    g
}

/// Generates a random `degree`-regular graph over `n` nodes using the pairing
/// (configuration) model with rejection of self-loops and multi-edges, retrying until a
/// simple connected graph is produced.
///
/// This mirrors the Steger–Wormald style generation used (through NetworkX) in the paper's
/// evaluation (Sec. 7.1).
///
/// # Errors
///
/// Returns [`GenerateError::InfeasibleRegular`] when `n * degree` is odd or `degree >= n`,
/// and [`GenerateError::RetriesExhausted`] if no simple connected graph was found within
/// the retry budget (practically unreachable for the parameter ranges of the paper).
pub fn random_regular_graph<R: Rng + ?Sized>(
    n: usize,
    degree: usize,
    rng: &mut R,
) -> Result<Graph, GenerateError> {
    if degree >= n || !(n * degree).is_multiple_of(2) {
        return Err(GenerateError::InfeasibleRegular { n, degree });
    }
    if degree == 0 {
        return Ok(Graph::new(n));
    }
    const MAX_ATTEMPTS: usize = 200;
    for _ in 0..MAX_ATTEMPTS {
        if let Some(g) = try_pairing(n, degree, rng) {
            if is_connected(&g) {
                return Ok(g);
            }
        }
    }
    Err(GenerateError::RetriesExhausted {
        attempts: MAX_ATTEMPTS,
    })
}

/// One attempt of the Steger–Wormald style pairing: instead of rejecting the whole
/// matching on the first collision, unsuitable pairs (self-loops, duplicate edges) are
/// put back into the stub pool and re-paired, restarting only when the remaining stubs
/// admit no suitable pair at all. This is the strategy used by NetworkX's
/// `random_regular_graph`, which the paper's evaluation relies on.
fn try_pairing<R: Rng + ?Sized>(n: usize, degree: usize, rng: &mut R) -> Option<Graph> {
    // Stubs: each node appears `degree` times.
    let mut stubs: Vec<ProcessId> = (0..n)
        .flat_map(|u| std::iter::repeat_n(u, degree))
        .collect();
    let mut g = Graph::new(n);
    while !stubs.is_empty() {
        stubs.shuffle(rng);
        let mut leftover: Vec<ProcessId> = Vec::new();
        let mut progress = false;
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v);
                progress = true;
            } else {
                leftover.push(u);
                leftover.push(v);
            }
        }
        if !progress && !has_suitable_pair(&leftover, &g) {
            return None;
        }
        stubs = leftover;
    }
    Some(g)
}

/// Whether some pair of remaining stubs can still legally be joined.
fn has_suitable_pair(stubs: &[ProcessId], g: &Graph) -> bool {
    let distinct: BTreeSet<ProcessId> = stubs.iter().copied().collect();
    for &u in &distinct {
        for &v in &distinct {
            if u < v && !g.has_edge(u, v) {
                return true;
            }
        }
    }
    false
}

/// Generates a random regular graph whose **vertex connectivity is verified** to be at
/// least `min_connectivity`, as required by the paper's experiments (`k >= 2f+1`).
///
/// The generator draws random `degree`-regular graphs until one with sufficient verified
/// connectivity is found. Random regular graphs of degree `d` are asymptotically almost
/// surely `d`-connected, so very few retries are needed in practice.
///
/// # Errors
///
/// Returns an error if the parameters are infeasible (e.g. `min_connectivity >= n` or
/// `degree < min_connectivity`) or if the retry budget is exhausted.
pub fn random_regular_connected<R: Rng + ?Sized>(
    n: usize,
    degree: usize,
    min_connectivity: usize,
    rng: &mut R,
) -> Result<Graph, GenerateError> {
    if min_connectivity >= n || degree < min_connectivity {
        return Err(GenerateError::InfeasibleConnectivity {
            n,
            connectivity: min_connectivity,
        });
    }
    const MAX_ATTEMPTS: usize = 64;
    for _ in 0..MAX_ATTEMPTS {
        let g = random_regular_graph(n, degree, rng)?;
        if vertex_connectivity(&g) >= min_connectivity {
            return Ok(g);
        }
    }
    Err(GenerateError::RetriesExhausted {
        attempts: MAX_ATTEMPTS,
    })
}

/// Erdős–Rényi `G(n, p)` random graph (used for robustness tests; the paper itself uses
/// regular graphs).
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!(g.nodes().all(|u| g.degree(u) == 5));
    }

    #[test]
    fn ring_is_two_regular() {
        let g = ring(7);
        assert!(g.nodes().all(|u| g.degree(u) == 2));
        assert_eq!(g.edge_count(), 7);
    }

    #[test]
    fn ring_of_two_is_single_edge() {
        let g = ring(2);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn circulant_degree() {
        let g = circulant(11, 3);
        assert!(g.nodes().all(|u| g.degree(u) == 6));
    }

    #[test]
    fn figure1_is_three_regular_three_connected() {
        let g = figure1_example();
        assert_eq!(g.node_count(), 10);
        assert!(g.nodes().all(|u| g.degree(u) == 3));
        assert_eq!(vertex_connectivity(&g), 3);
    }

    #[test]
    fn random_regular_has_requested_degree() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = random_regular_graph(20, 5, &mut rng).unwrap();
        assert_eq!(g.node_count(), 20);
        assert!(g.nodes().all(|u| g.degree(u) == 5));
        assert!(is_connected(&g));
    }

    #[test]
    fn random_regular_rejects_infeasible_parameters() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(matches!(
            random_regular_graph(5, 3, &mut rng),
            Err(GenerateError::InfeasibleRegular { .. })
        ));
        assert!(matches!(
            random_regular_graph(4, 4, &mut rng),
            Err(GenerateError::InfeasibleRegular { .. })
        ));
    }

    #[test]
    fn random_regular_zero_degree() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = random_regular_graph(4, 0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn random_regular_connected_meets_connectivity() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = random_regular_connected(16, 5, 5, &mut rng).unwrap();
        assert!(vertex_connectivity(&g) >= 5);
    }

    #[test]
    fn random_regular_connected_rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(random_regular_connected(10, 3, 5, &mut rng).is_err());
        assert!(random_regular_connected(4, 3, 4, &mut rng).is_err());
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert_eq!(gnp(8, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(8, 1.0, &mut rng).edge_count(), 28);
    }

    #[test]
    fn generate_error_display() {
        let e = GenerateError::InfeasibleRegular { n: 5, degree: 3 };
        assert!(e.to_string().contains("5"));
        let e = GenerateError::RetriesExhausted { attempts: 3 };
        assert!(e.to_string().contains("3"));
        let e = GenerateError::InfeasibleConnectivity {
            n: 4,
            connectivity: 9,
        };
        assert!(e.to_string().contains("9"));
    }
}
