//! Backend-independent workload run statistics.

use brb_stats::LogHistogram;
use serde::{Deserialize, Serialize};

/// What a workload run measured: completion counts, sustained throughput, and the
/// per-broadcast delivery-latency distribution.
///
/// A broadcast's latency is the time from its injection until the *last* correct process
/// delivered it (the same worst-correct-process convention the paper uses for single
/// broadcasts); a broadcast is *completed* once every correct process delivered it.
/// Latencies live in a mergeable [`LogHistogram`] (microseconds), so per-seed stats can
/// be aggregated across sweep points — and across sweep workers — exactly.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct WorkloadStats {
    /// Number of broadcasts injected (a crashed source's injections are no-ops and are
    /// not counted).
    pub injected: usize,
    /// Number of injected broadcasts delivered by every correct process.
    pub completed: usize,
    /// Virtual time from the first injection to the last delivery, in milliseconds.
    pub duration_ms: f64,
    /// Per-broadcast delivery latencies (microseconds), one observation per completed
    /// broadcast.
    pub latency_histogram: LogHistogram,
    /// Broadcast instances retired through watermark GC, summed over all processes
    /// (0 when GC is disabled or the backend does not report it).
    #[serde(default)]
    pub gc_retired: u64,
    /// Protocol-state bytes still held across all processes when the run ended. Flat
    /// across consecutive runs under GC; grows with every completed broadcast without.
    #[serde(default)]
    pub retained_bytes: usize,
}

impl WorkloadStats {
    /// Whether every injected broadcast completed.
    pub fn all_completed(&self) -> bool {
        self.completed == self.injected
    }

    /// Sustained throughput in completed broadcasts per second of virtual time (0 for an
    /// instantaneous or empty run).
    pub fn throughput_per_sec(&self) -> f64 {
        if self.duration_ms <= 0.0 {
            0.0
        } else {
            self.completed as f64 / (self.duration_ms / 1_000.0)
        }
    }

    /// Median delivery latency in milliseconds (`NaN` when nothing completed).
    pub fn p50_ms(&self) -> f64 {
        quantile_ms(&self.latency_histogram, 0.50)
    }

    /// 90th-percentile delivery latency in milliseconds (`NaN` when nothing completed).
    pub fn p90_ms(&self) -> f64 {
        quantile_ms(&self.latency_histogram, 0.90)
    }

    /// 99th-percentile delivery latency in milliseconds (`NaN` when nothing completed).
    pub fn p99_ms(&self) -> f64 {
        quantile_ms(&self.latency_histogram, 0.99)
    }

    /// Folds another run's stats in: counts add, durations add (runs are understood as
    /// consecutive), histograms merge exactly.
    pub fn merge(&mut self, other: &WorkloadStats) {
        self.injected += other.injected;
        self.completed += other.completed;
        self.duration_ms += other.duration_ms;
        self.latency_histogram.merge(&other.latency_histogram);
        // Retirements accumulate like the counts; retained bytes keep the worst
        // end-of-run snapshot, so merging across seeds or workers reports the largest
        // residual footprint observed.
        self.gc_retired += other.gc_retired;
        self.retained_bytes = self.retained_bytes.max(other.retained_bytes);
    }
}

fn quantile_ms(histogram: &LogHistogram, q: f64) -> f64 {
    histogram
        .quantile(q)
        .map(|micros| micros as f64 / 1_000.0)
        .unwrap_or(f64::NAN)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(latencies_micros: &[u64], duration_ms: f64) -> WorkloadStats {
        let mut histogram = LogHistogram::new();
        for &l in latencies_micros {
            histogram.record(l);
        }
        WorkloadStats {
            injected: latencies_micros.len(),
            completed: latencies_micros.len(),
            duration_ms,
            latency_histogram: histogram,
            ..WorkloadStats::default()
        }
    }

    #[test]
    fn throughput_and_percentiles() {
        let stats = stats_with(&[50_000, 100_000, 150_000, 200_000], 2_000.0);
        assert!(stats.all_completed());
        assert_eq!(stats.throughput_per_sec(), 2.0);
        // Bucket lows sit within 1/16 under the exact observations.
        assert!(
            (93.75..=100.0).contains(&stats.p50_ms()),
            "{}",
            stats.p50_ms()
        );
        assert!(
            (187.5..=200.0).contains(&stats.p99_ms()),
            "{}",
            stats.p99_ms()
        );
    }

    #[test]
    fn empty_stats_are_safe() {
        let stats = WorkloadStats::default();
        assert_eq!(stats.throughput_per_sec(), 0.0);
        assert!(stats.p50_ms().is_nan());
        assert!(stats.p90_ms().is_nan());
        assert!(stats.all_completed(), "vacuously complete");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = stats_with(&[10_000], 100.0);
        let b = stats_with(&[20_000, 30_000], 300.0);
        a.merge(&b);
        assert_eq!(a.injected, 3);
        assert_eq!(a.completed, 3);
        assert_eq!(a.duration_ms, 400.0);
        assert_eq!(a.latency_histogram.count(), 3);
    }
}
