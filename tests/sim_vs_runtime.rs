//! Cross-runtime integration test: the same protocol engine delivers both under the
//! deterministic discrete-event simulator and under the thread-per-process runtime.

use std::time::Duration;

use brb_core::config::Config;
use brb_core::stack::StackSpec;
use brb_core::types::{BroadcastId, Payload};
use brb_core::BdProcess;
use brb_graph::generate;
use brb_runtime::deployment::run_threaded_broadcast;
use brb_sim::{DelayModel, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn simulator_and_threaded_runtime_agree_on_delivery() {
    let (n, k, f) = (14, 5, 2);
    let mut rng = StdRng::seed_from_u64(31);
    let graph = generate::random_regular_connected(n, k, 2 * f + 1, &mut rng).unwrap();
    let config = Config::latency_preset(n, f);
    let payload = Payload::from("cross-runtime payload");

    // Discrete-event simulation.
    let processes: Vec<BdProcess> = (0..n)
        .map(|i| BdProcess::new(i, config, graph.neighbors_vec(i)))
        .collect();
    let mut sim = Simulation::new(processes, DelayModel::synchronous(), 1);
    sim.broadcast(3, payload.clone());
    sim.run_to_quiescence();
    let correct = sim.correct_processes();
    assert_eq!(
        sim.metrics()
            .delivered_count(BroadcastId::new(3, 0), &correct),
        n
    );

    // Threaded deployment (same engine, real concurrency).
    let report = run_threaded_broadcast(
        &graph,
        config,
        StackSpec::Bd,
        payload.clone(),
        3,
        &[],
        Duration::from_secs(20),
    );
    let everyone: Vec<usize> = (0..n).collect();
    assert!(report.all_delivered(&everyone, 1));
    for node in &report.nodes {
        assert_eq!(node.deliveries[0].payload, payload);
        assert_eq!(node.deliveries[0].id, BroadcastId::new(3, 0));
    }
}

#[test]
fn threaded_runtime_tolerates_crashes_like_the_simulator() {
    let (n, k, f) = (14, 5, 2);
    let mut rng = StdRng::seed_from_u64(8);
    let graph = generate::random_regular_connected(n, k, 2 * f + 1, &mut rng).unwrap();
    let config = Config::bdopt_mbd1(n, f);
    let payload = Payload::filled(0x42, 256);
    let crashed = vec![5usize, 11];

    let report = run_threaded_broadcast(
        &graph,
        config,
        StackSpec::Bd,
        payload.clone(),
        0,
        &crashed,
        Duration::from_secs(20),
    );
    let correct: Vec<usize> = (0..n).filter(|p| !crashed.contains(p)).collect();
    assert!(report.all_delivered(&correct, 1));
    for &c in &crashed {
        assert!(report.nodes[c].deliveries.is_empty());
    }
    assert!(report.total_bytes() > 0);
}
