//! Sinks that receive [`TraceEvent`]s: no-op, `Vec`-buffered, and JSONL writer.

use std::io::Write;
use std::sync::Mutex;

use crate::event::TraceEvent;
use crate::export::jsonl_line;

/// Receives trace events. Implementations must be thread-safe: the live
/// backends emit from one thread per node.
pub trait TraceSink: Send + Sync {
    /// Record one event. Called on the hot path only when tracing is enabled.
    fn record(&self, event: TraceEvent);
}

/// Discards everything. Useful as an explicit "tracing off" sink.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _event: TraceEvent) {}
}

/// Buffers events in memory for later export or analysis.
#[derive(Debug, Default)]
pub struct VecSink {
    events: Mutex<Vec<TraceEvent>>,
}

impl VecSink {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of every event recorded so far.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace buffer poisoned").clone()
    }

    /// Drains the buffer, returning the recorded events.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace buffer poisoned"))
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace buffer poisoned").len()
    }

    /// Whether no event has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for VecSink {
    fn record(&self, event: TraceEvent) {
        self.events.lock().expect("trace buffer poisoned").push(event);
    }
}

/// Streams every event as one JSON object per line to the wrapped writer.
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Wraps a writer (file, `Vec<u8>`, ...). Lines are written eagerly; call
    /// [`JsonlSink::flush`] before reading the output elsewhere.
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        Self {
            writer: Mutex::new(Box::new(writer)),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().expect("trace writer poisoned").flush()
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: TraceEvent) {
        let mut writer = self.writer.lock().expect("trace writer poisoned");
        let _ = writeln!(writer, "{}", jsonl_line(&event));
    }
}
