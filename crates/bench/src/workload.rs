//! The sustained-throughput experiment axis: workload sweeps over arrival processes and
//! source-selection policies.
//!
//! The paper's evaluation measures one broadcast at a time; this harness measures the
//! regime the ROADMAP targets — many concurrent broadcasts from many sources — by
//! running [`WorkloadSpec`]s through the same parallel sweep engine as every other
//! harness. Each point reports completed-broadcast throughput and `p50`/`p90`/`p99`
//! delivery-latency percentiles, aggregated across seeds by merging the per-run
//! latency histograms (an exact, associative merge, so the CSV is byte-identical for
//! any worker count).

use brb_core::stack::StackSpec;
use brb_sim::{run_sweep, DelayModel, ExperimentSpec};
use brb_workload::{LoopMode, SourceSelection, WorkloadSpec, WorkloadStats};

use crate::{experiment, Scale};

/// One point of the workload sweep: a labelled spec with its per-seed stats merged.
#[derive(Debug, Clone)]
pub struct WorkloadPoint {
    /// Human-readable point label (e.g. `"poisson/zipf"`).
    pub label: String,
    /// Mean inter-arrival gap of the point's arrival process, in microseconds (the
    /// sweep's x-axis).
    pub interval_micros: u64,
    /// Stats merged over the point's seeds.
    pub stats: WorkloadStats,
}

/// Topology seed base of the workload sweep (disjoint from the figure harnesses).
fn graph_seed_base(n: usize, k: usize) -> u64 {
    17_000 + (n * k) as u64
}

/// The workload grid: every arrival-process shape crossed with every source-selection
/// policy, at one `(n, k, f)` operating point, plus a closed-loop variant.
pub fn run_workload_sweep(
    scale: Scale,
    asynchronous: bool,
    workers: usize,
    stack: StackSpec,
) -> Vec<WorkloadPoint> {
    let (n, k, f, broadcasts) = match scale {
        Scale::Quick => (16, 5, 2, 24u32),
        Scale::Paper => (30, 7, 3, 120u32),
    };
    let interval: u64 = 20_000; // mean gap 20 ms: several broadcasts overlap in flight
    let runs = scale.runs();
    let delay = if asynchronous {
        DelayModel::asynchronous()
    } else {
        DelayModel::synchronous()
    };

    let arrivals: Vec<(&str, WorkloadSpec)> = vec![
        (
            "constant",
            WorkloadSpec::constant_rate(interval, broadcasts),
        ),
        ("poisson", WorkloadSpec::poisson(interval, broadcasts)),
        (
            "bursty",
            WorkloadSpec::bursty(8, 1_000, 8 * interval, broadcasts),
        ),
    ];
    let source_policies: Vec<(&str, SourceSelection)> = vec![
        ("round-robin", SourceSelection::RoundRobin),
        ("zipf", SourceSelection::Zipf { exponent: 1.2 }),
        ("single", SourceSelection::Single { source: 0 }),
    ];

    let mut specs: Vec<ExperimentSpec> = Vec::new();
    let mut labels: Vec<(String, u64)> = Vec::new();
    let push_point = |specs: &mut Vec<ExperimentSpec>,
                      labels: &mut Vec<(String, u64)>,
                      label: String,
                      point_interval: u64,
                      workload: WorkloadSpec| {
        let config = brb_core::config::Config::bdopt_mbd1(n, f);
        let params = experiment(n, k, f, 64, config, delay, 1)
            .with_stack(stack)
            .with_workload(workload);
        for run in 0..runs {
            let mut p = params.clone();
            p.seed = 1 + run as u64;
            specs.push(ExperimentSpec::new(
                label.clone(),
                graph_seed_base(n, k) + run as u64,
                p,
            ));
        }
        labels.push((label, point_interval));
    };
    for (arrival_name, base) in &arrivals {
        for (source_name, sources) in &source_policies {
            push_point(
                &mut specs,
                &mut labels,
                format!("{arrival_name}/{source_name}"),
                interval,
                base.with_sources(*sources),
            );
        }
    }
    // One closed-loop operating point: saturation arrivals (zero inter-arrival gap)
    // gated by a window.
    push_point(
        &mut specs,
        &mut labels,
        "closed-loop/w8".to_string(),
        0,
        WorkloadSpec::constant_rate(0, broadcasts).with_mode(LoopMode::Closed { window: 8 }),
    );

    let outcomes = run_sweep(&specs, workers);
    let points: Vec<WorkloadPoint> = outcomes
        .chunks(runs)
        .zip(labels)
        .map(|(chunk, (label, interval_micros))| {
            let mut stats = WorkloadStats::default();
            for outcome in chunk {
                let per_run = outcome
                    .record
                    .result
                    .workload
                    .as_ref()
                    .expect("workload sweeps always fill workload stats");
                stats.merge(per_run);
            }
            WorkloadPoint {
                label,
                interval_micros,
                stats,
            }
        })
        .collect();
    print_points(
        &format!(
            "Workload sweep — stack={stack}, N={n}, k={k}, f={f}, {broadcasts} broadcasts/point"
        ),
        &points,
    );
    points
}

fn print_points(title: &str, points: &[WorkloadPoint]) {
    println!("# {title}");
    println!(
        "{:<22} {:>12} {:>12} {:>10} {:>10} {:>10} {:>11}",
        "workload", "completed", "thr (bc/s)", "p50 (ms)", "p90 (ms)", "p99 (ms)", "injected"
    );
    for p in points {
        println!(
            "{:<22} {:>12} {:>12.2} {:>10.1} {:>10.1} {:>10.1} {:>11}",
            p.label,
            p.stats.completed,
            p.stats.throughput_per_sec(),
            p.stats.p50_ms(),
            p.stats.p90_ms(),
            p.stats.p99_ms(),
            p.stats.injected,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workload_sweep_completes_every_point() {
        let points = run_workload_sweep(Scale::Quick, false, 2, StackSpec::Bd);
        assert_eq!(points.len(), 10, "3 arrivals x 3 sources + closed loop");
        for p in &points {
            assert!(p.stats.all_completed(), "{}: {:?}", p.label, p.stats);
            assert!(p.stats.throughput_per_sec() > 0.0, "{}", p.label);
            assert!(p.stats.p50_ms() > 0.0, "{}", p.label);
            assert!(p.stats.p99_ms() >= p.stats.p50_ms(), "{}", p.label);
        }
    }

    #[test]
    fn workload_sweep_is_worker_count_invariant() {
        let a = run_workload_sweep(Scale::Quick, false, 1, StackSpec::Bd);
        let b = run_workload_sweep(Scale::Quick, false, 4, StackSpec::Bd);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.stats, y.stats, "{} differs across worker counts", x.label);
        }
    }
}
