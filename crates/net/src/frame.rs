//! Length-prefixed framing and the connection handshake used on TCP links.
//!
//! The paper's testbed runs one node per Docker container and uses plain TCP sockets as
//! authenticated channels (Sec. 7.1). Framing is therefore deliberately minimal: every
//! protocol message travels as a 4-byte big-endian length followed by the encoded
//! [`brb_core::wire::WireMessage`] bytes, and every connection starts with a fixed-size
//! handshake that announces the connecting process's identifier.

use std::io::{self, BufRead, BufReader, Read, Write};

use bytes::Bytes;

/// Maximum accepted frame size, in bytes.
///
/// Protocol messages are small (a path of at most `N` 4-byte identifiers plus a payload);
/// the cap protects a node from a Byzantine peer announcing a multi-gigabyte frame and
/// exhausting its memory.
pub const MAX_FRAME_BYTES: usize = 1 << 22; // 4 MiB

/// Magic byte opening every handshake, to fail fast on foreign traffic.
pub const HANDSHAKE_MAGIC: u8 = 0xB7;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Returns any I/O error of the underlying writer, or [`io::ErrorKind::InvalidInput`] if
/// `bytes` exceeds [`MAX_FRAME_BYTES`].
pub fn write_frame<W: Write>(writer: &mut W, bytes: &[u8]) -> io::Result<()> {
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES} byte cap",
                bytes.len()
            ),
        ));
    }
    writer.write_all(&(bytes.len() as u32).to_be_bytes())?;
    writer.write_all(bytes)?;
    writer.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// Returns [`io::ErrorKind::UnexpectedEof`] when the peer closed the connection, and
/// [`io::ErrorKind::InvalidData`] when the announced length exceeds [`MAX_FRAME_BYTES`].
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len} byte frame, above the {MAX_FRAME_BYTES} byte cap"),
        ));
    }
    let mut buf = vec![0u8; len];
    reader.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads one length-prefixed frame, then drains every *complete* frame already sitting in
/// the reader's buffer — without blocking for more network data — into a single pooled
/// allocation. The returned [`Bytes`] are zero-copy slices of that one buffer, so a burst
/// of `k` frames costs one `Vec` allocation instead of `k`.
///
/// Under load (a peer's batched write landing as one TCP segment) this turns per-frame
/// heap traffic into per-burst heap traffic; when traffic is sparse it degenerates to
/// exactly [`read_frame`] (a one-frame burst).
///
/// # Errors
///
/// Returns [`io::ErrorKind::UnexpectedEof`] when the peer closed the connection, and
/// [`io::ErrorKind::InvalidData`] when an announced length exceeds [`MAX_FRAME_BYTES`].
/// An oversized length seen mid-drain is left unconsumed and surfaces on the next call.
pub fn read_frame_burst<R: Read>(reader: &mut BufReader<R>) -> io::Result<Vec<Bytes>> {
    // First frame: block until it arrives, exactly like read_frame.
    let mut len_bytes = [0u8; 4];
    reader.read_exact(&mut len_bytes)?;
    let len = u32::from_be_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("peer announced a {len} byte frame, above the {MAX_FRAME_BYTES} byte cap"),
        ));
    }
    let mut staging = vec![0u8; len];
    reader.read_exact(&mut staging)?;
    let mut marks = vec![0..len];

    // Drain: take every complete frame already buffered, never touching the socket.
    loop {
        let buffered = reader.buffer();
        if buffered.len() < 4 {
            break;
        }
        let next = u32::from_be_bytes([buffered[0], buffered[1], buffered[2], buffered[3]]) as usize;
        if next > MAX_FRAME_BYTES || buffered.len() < 4 + next {
            // Oversized or incomplete: leave it for the next (blocking) call.
            break;
        }
        let start = staging.len();
        staging.extend_from_slice(&buffered[4..4 + next]);
        marks.push(start..staging.len());
        reader.consume(4 + next);
    }

    let pooled = Bytes::from(staging);
    Ok(marks.into_iter().map(|r| pooled.slice(r)).collect())
}

/// Writes the connection handshake: magic byte plus the connecting process's identifier.
///
/// # Errors
///
/// Returns any I/O error of the underlying writer.
pub fn write_handshake<W: Write>(writer: &mut W, id: usize) -> io::Result<()> {
    writer.write_all(&[HANDSHAKE_MAGIC])?;
    writer.write_all(&(id as u32).to_be_bytes())?;
    writer.flush()
}

/// Reads and validates a connection handshake, returning the announced process identifier.
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] if the magic byte does not match, and any I/O
/// error of the underlying reader.
pub fn read_handshake<R: Read>(reader: &mut R) -> io::Result<usize> {
    let mut magic = [0u8; 1];
    reader.read_exact(&mut magic)?;
    if magic[0] != HANDSHAKE_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "handshake magic byte mismatch",
        ));
    }
    let mut id_bytes = [0u8; 4];
    reader.read_exact(&mut id_bytes)?;
    Ok(u32::from_be_bytes(id_bytes) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello frame").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), b"hello frame");
        assert_eq!(read_frame(&mut cursor).unwrap(), b"");
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_frames_are_rejected_on_both_sides() {
        let big = vec![0u8; MAX_FRAME_BYTES + 1];
        let mut buf = Vec::new();
        assert_eq!(
            write_frame(&mut buf, &big).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
        // A peer announcing an oversized length is rejected before allocation.
        let mut forged = Vec::new();
        forged.extend_from_slice(&(u32::MAX).to_be_bytes());
        let mut cursor = Cursor::new(forged);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_frame_reports_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full message").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn burst_read_drains_buffered_frames_zero_copy() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"first").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"third frame").unwrap();
        let mut reader = BufReader::new(Cursor::new(buf));
        let burst = read_frame_burst(&mut reader).unwrap();
        assert_eq!(burst.len(), 3, "all complete buffered frames drain at once");
        assert_eq!(&burst[0][..], b"first");
        assert_eq!(&burst[1][..], b"");
        assert_eq!(&burst[2][..], b"third frame");
        assert_eq!(
            read_frame_burst(&mut reader).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn burst_read_leaves_incomplete_tail_for_the_next_call() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"whole").unwrap();
        write_frame(&mut buf, b"truncated tail").unwrap();
        buf.truncate(buf.len() - 3);
        let mut reader = BufReader::new(Cursor::new(buf));
        let burst = read_frame_burst(&mut reader).unwrap();
        assert_eq!(burst.len(), 1);
        assert_eq!(&burst[0][..], b"whole");
        // The truncated frame surfaces as EOF on the next blocking read.
        assert_eq!(
            read_frame_burst(&mut reader).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn handshake_roundtrip_and_magic_check() {
        let mut buf = Vec::new();
        write_handshake(&mut buf, 42).unwrap();
        let mut cursor = Cursor::new(buf.clone());
        assert_eq!(read_handshake(&mut cursor).unwrap(), 42);

        buf[0] = 0x00;
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_handshake(&mut cursor).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
