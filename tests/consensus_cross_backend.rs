//! Cross-backend consensus conformance: one seeded binary Byzantine consensus
//! instance (`brb-consensus`, DBFT-style rounds over BRB) runs on the deterministic
//! discrete-event simulator, the thread-per-process channel runtime and the TCP
//! socket deployment — and every honest process on every backend decides the *same
//! value in the same round*.
//!
//! The scenario is adversarial: split proposals (half 0, half 1) plus one
//! consensus-level Byzantine value-flipper that inverts its EST/AUX votes while
//! staying BRB-honest below, so only the consensus layer's `n - f` quorums and
//! bin-values validation defeat it. On top of the lockstep-decision assertion the
//! suite checks:
//!
//! * the agreement/validity/termination checkers of [`brb_consensus::checks`] on
//!   every backend's decision vector;
//! * all four BRB properties (validity, no-duplication, integrity, agreement) on
//!   every underlying round-message instance, per backend — consensus rides ordinary
//!   BRB instances in the dedicated consensus sequence-number namespace, so the
//!   broadcast-layer invariants must keep holding underneath it;
//! * `gc_retired > 0` on every backend when an event-count retention window is
//!   installed — closed-round BRB state is actually reclaimed *while consensus is
//!   still running*, the bounded-memory story of the paper extended up the stack.
//!
//! Two pinned proptests follow: consensus validity/agreement under randomized
//! proposal patterns and flipper placement, and decision stability under a seeded
//! link-flap churn schedule (simulator only — virtual-time phases close over global
//! fixpoints, so dropped frames cost latency, never the decision).

use std::collections::BTreeMap;
use std::time::Duration;

use brb_consensus::checks::{check_agreement, check_termination, check_validity};
use brb_consensus::{ConsensusSpec, Decision, ProposalPattern};
use brb_core::config::Config;
use brb_core::gc::GcPolicy;
use brb_core::stack::StackSpec;
use brb_core::types::{
    seq_namespace, BroadcastId, Delivery, Payload, ProcessId, NAMESPACE_CONSENSUS,
};
use brb_core::Protocol;
use brb_net::run_tcp_consensus;
use brb_runtime::run_threaded_consensus;
use brb_sim::churn::ChurnSpec;
use brb_sim::experiment::experiment_graph;
use brb_sim::invariants::{check_brb, BroadcastRecord};
use brb_sim::{
    build_consensus_sim, honest_decisions, honest_processes, run_consensus, run_consensus_recorded,
    ExperimentParams,
};
use brb_transport::DriverOptions;
use proptest::prelude::*;

const N: usize = 14;
const K: usize = 5;
const F: usize = 2;
const GRAPH_SEED: u64 = 4_242;
/// Event-count retention window: small enough that closed-round BRB instances retire
/// mid-consensus on every backend.
const GC_WINDOW: u64 = 64;

/// The pinned adversarial scenario all three backends run.
fn scenario() -> ConsensusSpec {
    ConsensusSpec::default()
        .with_proposals(ProposalPattern::Split)
        .with_flippers(vec![N - 2])
}

/// Reconstructs the per-instance broadcast records from observed delivery logs: every
/// instance id must live in the consensus namespace, and every process that delivered
/// it must have seen the same payload (BRB agreement makes the first payload seen
/// authoritative).
fn consensus_broadcasts(logs: &[Vec<Delivery>]) -> Vec<BroadcastRecord> {
    let mut by_id: BTreeMap<BroadcastId, Payload> = BTreeMap::new();
    for log in logs {
        for delivery in log {
            assert_eq!(
                seq_namespace(delivery.id.seq),
                NAMESPACE_CONSENSUS,
                "a pure consensus run must only spawn consensus-namespace instances"
            );
            by_id
                .entry(delivery.id)
                .or_insert_with(|| delivery.payload.clone());
        }
    }
    by_id
        .into_iter()
        .map(|(id, payload)| BroadcastRecord::new(id.source, id, payload))
        .collect()
}

/// Asserts the four BRB properties on one backend's logs, one check per underlying
/// round-message instance set.
fn assert_brb_under_consensus(backend: &str, logs: &[Vec<Delivery>]) {
    let everyone: Vec<ProcessId> = (0..logs.len()).collect();
    let broadcasts = consensus_broadcasts(logs);
    assert!(
        !broadcasts.is_empty(),
        "{backend}: consensus must have spawned BRB instances"
    );
    let slices: Vec<&[Delivery]> = logs.iter().map(|l| l.as_slice()).collect();
    check_brb(&slices, &everyone, &broadcasts)
        .unwrap_or_else(|v| panic!("{backend}: BRB violated under consensus: {v}"));
}

/// Runs every checker and asserts the decision vector matches the simulator's
/// reference decision on every process.
fn assert_decisions(
    backend: &str,
    spec: &ConsensusSpec,
    reference: Decision,
    decisions: &[(ProcessId, Option<Decision>)],
) {
    check_agreement(decisions).unwrap_or_else(|e| panic!("{backend}: {e}"));
    check_validity(spec, decisions).unwrap_or_else(|e| panic!("{backend}: {e}"));
    check_termination(decisions).unwrap_or_else(|e| panic!("{backend}: {e}"));
    for &(p, d) in decisions {
        assert_eq!(
            d,
            Some(reference),
            "{backend}: process {p} diverged from the simulator's decision"
        );
    }
}

#[test]
fn seeded_consensus_decides_identically_on_all_three_backends() {
    let spec = scenario();
    let config = Config::bdopt_mbd1(N, F).with_gc(GcPolicy::after_events(GC_WINDOW));
    let graph = experiment_graph(N, K, GRAPH_SEED);

    // 1. Discrete-event simulator: the reference schedule.
    let params = ExperimentParams::new(N, K, F, config)
        .with_stack(StackSpec::Bd)
        .with_consensus(spec.clone());
    let (mut sim, handles) = build_consensus_sim(&params, &graph, &spec);
    let stats = run_consensus(&mut sim, &spec, &handles);
    assert!(stats.all_decided(), "simulator: {stats:?}");
    assert!(stats.instances > 0, "simulator spawned no BRB instances");
    assert!(
        sim.metrics().gc_retired > 0,
        "simulator: the retention window must retire closed-round instances"
    );
    let honest = honest_processes(&sim.correct_processes(), &spec);
    let sim_decisions = honest_decisions(&handles, &honest);
    let reference = sim_decisions[0].1.expect("simulator decided");
    assert_decisions("sim", &spec, reference, &sim_decisions);
    let sim_logs: Vec<Vec<Delivery>> = sim
        .processes()
        .iter()
        .map(|p| p.deliveries().to_vec())
        .collect();
    assert_brb_under_consensus("sim", &sim_logs);

    let options = DriverOptions::default().with_gc(GcPolicy::after_events(GC_WINDOW));

    // 2. Thread-per-process channel runtime.
    let (report, run) = run_threaded_consensus(
        &graph,
        config,
        StackSpec::Bd,
        &spec,
        F,
        options.clone(),
        &[],
        Duration::from_secs(120),
    );
    assert!(run.all_decided(), "runtime: {:?}", run.decisions);
    assert_eq!(run.instances, stats.instances, "runtime instance count");
    assert_decisions("runtime", &spec, reference, &run.decisions);
    let runtime_logs: Vec<Vec<Delivery>> = report
        .nodes
        .iter()
        .map(|node| node.deliveries.clone())
        .collect();
    assert_brb_under_consensus("runtime", &runtime_logs);
    assert!(
        report.nodes.iter().map(|n| n.gc_retired).sum::<u64>() > 0,
        "runtime: the retention window must retire closed-round instances"
    );
    // The patched per-node report carries the same decisions the handles report.
    for &(p, d) in &run.decisions {
        assert_eq!(report.nodes[p].decision, d, "runtime report at {p}");
    }

    // 3. TCP sockets over loopback.
    let (report, run) = run_tcp_consensus(
        &graph,
        config,
        StackSpec::Bd,
        &spec,
        F,
        options,
        &[],
        Duration::from_secs(120),
    )
    .expect("TCP deployment starts");
    assert!(run.all_decided(), "tcp: {:?}", run.decisions);
    assert_eq!(run.instances, stats.instances, "tcp instance count");
    assert_decisions("tcp", &spec, reference, &run.decisions);
    let tcp_logs: Vec<Vec<Delivery>> = report
        .nodes
        .iter()
        .map(|node| node.deliveries.clone())
        .collect();
    assert_brb_under_consensus("tcp", &tcp_logs);
    assert!(
        report.nodes.iter().map(|n| n.gc_retired).sum::<u64>() > 0,
        "tcp: the retention window must retire closed-round instances"
    );
    for &(p, d) in &run.decisions {
        assert_eq!(report.nodes[p].decision, d, "tcp report at {p}");
    }

    // The three backends delivered identical round-message instance *sets* process by
    // process, not merely equivalent decisions. (Order differs: within a phase the
    // live backends interleave concurrent instances nondeterministically.)
    let delivery_set = |log: &[Delivery]| -> std::collections::BTreeSet<(BroadcastId, Payload)> {
        log.iter().map(|d| (d.id, d.payload.clone())).collect()
    };
    for (p, sim_log) in sim_logs.iter().enumerate() {
        let reference_set = delivery_set(sim_log);
        assert_eq!(
            reference_set,
            delivery_set(&runtime_logs[p]),
            "sim vs runtime at process {p}"
        );
        assert_eq!(
            reference_set,
            delivery_set(&tcp_logs[p]),
            "sim vs tcp at process {p}"
        );
    }
}

/// Simulator-only consensus run at a smaller scale for the proptests.
fn prop_params(spec: ConsensusSpec) -> (ExperimentParams, brb_graph::Graph) {
    let (n, k, f) = (10usize, 4usize, 1usize);
    let config = Config::bdopt_mbd1(n, f).with_gc(GcPolicy::after_events(GC_WINDOW));
    let params = ExperimentParams::new(n, k, f, config)
        .with_stack(StackSpec::Bd)
        .with_consensus(spec);
    let graph = experiment_graph(n, k, GRAPH_SEED);
    (params, graph)
}

proptest! {
    // Fully pinned runner configuration: the case count, the base RNG seed and the
    // failure-persistence file are all committed, so this suite generates the same
    // inputs on every machine (see tests/README.md). The case count is small because
    // every case phase-steps a full consensus instance.
    #![proptest_config(ProptestConfig::with_cases(8)
        .with_rng_seed(0x000C_015E_1505_2021)
        .with_failure_persistence(FileFailurePersistence::SourceParallel("proptest-regressions")))]

    /// BV-validity surfaced at the decision: whatever the proposal pattern and
    /// wherever the flipper sits, every honest process decides — the same value on
    /// all of them, and that value was proposed by an honest process (the bin-values
    /// filter keeps flipper-only values out of the candidate set).
    #[test]
    fn random_proposals_with_a_flipper_decide_an_honest_proposal(
        pattern_seed in 0u64..1_000, flipper in 0usize..10
    ) {
        let spec = ConsensusSpec::default()
            .with_proposals(ProposalPattern::Random(pattern_seed))
            .with_flippers(vec![flipper]);
        let (params, graph) = prop_params(spec.clone());
        let record = run_consensus_recorded(&params, &graph);
        let stats = record.result.consensus.as_ref().expect("consensus stats");
        prop_assert!(stats.all_decided(), "{stats:?}");
        let honest: Vec<ProcessId> = (0..params.n).filter(|&p| p != flipper).collect();
        let value = stats.decision_value.expect("decided");
        prop_assert!(
            honest.iter().any(|&p| spec.proposal_for(p) == value),
            "decided {value} proposed by no honest process"
        );
    }

    /// Decision stability under churn: a seeded link-flap schedule (one flapping edge
    /// of a 3-connected graph, three down/up cycles across the propose wave) changes
    /// which frames travel, but every phase still closes over the same global BRB
    /// fixpoint — so the decided value *and round* match the churn-free run exactly.
    #[test]
    fn decision_is_stable_under_a_link_flap_schedule(
        edge_choice in 0usize..64, cycles in 1u32..4
    ) {
        let spec = ConsensusSpec::default().with_proposals(ProposalPattern::Split);
        let (params, graph) = prop_params(spec.clone());
        let baseline = run_consensus_recorded(&params, &graph);
        let base = baseline.result.consensus.as_ref().expect("consensus stats");
        prop_assert!(base.all_decided(), "{base:?}");

        let edges = graph.edges();
        let (a, b) = edges[edge_choice % edges.len()];
        let churn = ChurnSpec::new().flap(a, b, 500, 2_000, 2_000, cycles);
        let flapped = run_consensus_recorded(&params.clone().with_churn(churn), &graph);
        let flap = flapped.result.consensus.as_ref().expect("consensus stats");
        prop_assert!(flap.all_decided(), "{flap:?}");
        prop_assert_eq!(flap.decision_value, base.decision_value);
        prop_assert_eq!(flap.decision_round, base.decision_round);
        prop_assert_eq!(flap.rounds_driven, base.rounds_driven);
    }
}
