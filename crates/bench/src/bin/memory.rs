//! Regenerates the Sec. 7.3 memory-consumption experiment: the growth of the protocol
//! state (dominated by stored transmission paths) with the system size, for 16 B payloads.
//!
//! Usage: `cargo run --release -p brb-bench --bin memory [-- --quick] [-- --workers N] [-- --stack NAME]`

use brb_bench::{figures::run_memory, stack_from_args, workers_from_args, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_memory(
        Scale::from_args(&args),
        workers_from_args(&args),
        stack_from_args(&args),
    );
}
