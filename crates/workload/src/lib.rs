//! Traffic generation for sustained multi-broadcast load.
//!
//! The paper evaluates *single* broadcasts (Sec. 7: one source, one payload, run to
//! quiescence); this crate opens the sustained-throughput axis that "Reliable Broadcast
//! in Practical Networks" (Wu et al.) evaluates and that the ROADMAP's
//! millions-of-users north star requires. It is deliberately backend-agnostic: a
//! [`WorkloadSpec`] plus a seed deterministically expands into a schedule of
//! [`Injection`]s — `(virtual time, source, payload)` triples — and the *same* schedule
//! drives the discrete-event simulator (`brb_sim::workload`), the channel runtime
//! (`brb_runtime`) and the TCP deployment (`brb_net`), so the three backends inject
//! bit-identical traffic.
//!
//! A spec is made of five orthogonal dimensions:
//!
//! * **arrival process** ([`Arrival`]) — constant rate, Poisson (exponential
//!   inter-arrivals) or bursty;
//! * **source selection** ([`SourceSelection`]) — one fixed source, round-robin over all
//!   processes, or Zipf-skewed (a few hot sources carry most of the load);
//! * **payload sizes** ([`PayloadSizes`]) — fixed or uniformly distributed;
//! * **bound** ([`Bound`]) — a total broadcast count or a virtual-time horizon;
//! * **loop mode** ([`LoopMode`]) — open loop (inject on schedule regardless of progress)
//!   or closed loop (at most `window` broadcasts in flight; arrivals past the window are
//!   deferred until one completes, as a client pool with bounded concurrency would).
//!
//! # Quickstart
//!
//! ```
//! use brb_workload::{Arrival, SourceSelection, TrafficGenerator, WorkloadSpec};
//!
//! // 20 broadcasts at one per 10 ms, sources round-robin over 10 processes, 64 B each.
//! let spec = WorkloadSpec::constant_rate(10_000, 20)
//!     .with_sources(SourceSelection::RoundRobin)
//!     .with_payload_bytes(64);
//! let schedule = spec.schedule(10, 42);
//! assert_eq!(schedule.len(), 20);
//! assert_eq!(schedule[0].at_micros, 0);
//! assert_eq!(schedule[3].source, 3);
//! assert_eq!(schedule[19].at_micros, 190_000);
//!
//! // The expansion is a pure function of (spec, n, seed) — rerunning it, on any
//! // backend, yields the same injections.
//! assert_eq!(schedule, spec.schedule(10, 42));
//!
//! // A Poisson arrival process with Zipf-skewed sources, same API:
//! let skewed = WorkloadSpec::poisson(5_000, 50)
//!     .with_sources(SourceSelection::Zipf { exponent: 1.2 });
//! let generator = TrafficGenerator::new(skewed, 10, 7);
//! assert_eq!(generator.count(), 50);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod spec;
mod stats;

pub use gen::{predicted_ids, Injection, TrafficGenerator};
pub use spec::{Arrival, Bound, LoopMode, PayloadSizes, SourceSelection, WorkloadSpec};
pub use stats::WorkloadStats;
