//! Figures 4–10 and the Sec. 7.3 memory experiment.

use brb_core::config::Config;
use brb_graph::Graph;
use brb_sim::DelayModel;
use brb_stats::FiveNumber;

use crate::{averaged_on_graphs, experiment, variation_pct, AveragedResult, Scale};

/// One point of a connectivity-sweep series: the configuration label, the connectivity and
/// the averaged metrics.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Configuration label (e.g. `"BDopt + MBD.1/7"`).
    pub label: String,
    /// Network connectivity `k`.
    pub k: usize,
    /// Averaged metrics at this point.
    pub result: AveragedResult,
}

fn delay(asynchronous: bool) -> DelayModel {
    if asynchronous {
        DelayModel::asynchronous()
    } else {
        DelayModel::synchronous()
    }
}

fn shared_graphs(n: usize, k: usize, runs: usize) -> Vec<Graph> {
    (0..runs)
        .map(|i| brb_sim::experiment::experiment_graph(n, k, 7_000 + i as u64 + (n * k) as u64))
        .collect()
}

fn sweep_connectivities(scale: Scale, n: usize, f: usize) -> Vec<usize> {
    let min_k = 2 * f + 1;
    let candidates: Vec<usize> = match scale {
        Scale::Quick => vec![min_k, (min_k + n - 1) / 2],
        Scale::Paper => (0..6).map(|i| min_k + i * (n - 1 - min_k) / 5).collect(),
    };
    let mut ks: Vec<usize> = candidates
        .into_iter()
        .map(|k| if (n * k) % 2 == 1 { k + 1 } else { k })
        .map(|k| k.min(n - 1))
        .map(|k| if (n * k) % 2 == 1 { k - 1 } else { k })
        .collect();
    ks.dedup();
    ks
}

/// Fig. 4a/4b: latency and bandwidth versus connectivity for BDopt + MBD.1 and
/// BDopt + MBD.1/{7, 8, 9, 11}, with `N = 50`, `f = 9`, 1024 B payloads.
pub fn run_fig4(scale: Scale, asynchronous: bool) -> Vec<SeriesPoint> {
    let (n, f, payload) = match scale {
        Scale::Quick => (20, 3, 1024),
        Scale::Paper => (50, 9, 1024),
    };
    let configs: Vec<(String, Config)> = [
        (1u8, None),
        (1, Some(7)),
        (1, Some(8)),
        (1, Some(9)),
        (1, Some(11)),
    ]
    .iter()
    .map(|&(_, extra)| match extra {
        None => ("BDopt + MBD.1".to_string(), Config::bdopt_mbd1(n, f)),
        Some(i) => (
            format!("BDopt + MBD.1/{i}"),
            Config::bdopt_mbd1(n, f).with_mbd(&[i]),
        ),
    })
    .collect();
    let points = sweep(scale, asynchronous, n, f, payload, &configs);
    print_series(
        &format!("Fig. 4a/4b — N={n}, f={f}, {payload} B payload"),
        &points,
    );
    points
}

/// Fig. 5a/5b: latency and bandwidth versus connectivity for the lat. / bdw. / lat.&bdw.
/// combined configurations, with `(N, f) = (50, 10)` and 1024 B payloads.
pub fn run_fig5(scale: Scale, asynchronous: bool) -> Vec<SeriesPoint> {
    let (n, f, payload) = match scale {
        Scale::Quick => (20, 3, 1024),
        Scale::Paper => (50, 10, 1024),
    };
    let configs = vec![
        ("BDopt + MBD.1".to_string(), Config::bdopt_mbd1(n, f)),
        ("lat.".to_string(), Config::latency_preset(n, f)),
        ("bdw.".to_string(), Config::bandwidth_preset(n, f)),
        (
            "lat. & bdw.".to_string(),
            Config::latency_bandwidth_preset(n, f),
        ),
    ];
    let points = sweep(scale, asynchronous, n, f, payload, &configs);
    print_series(
        &format!("Fig. 5a/5b — (N, f)=({n}, {f}), {payload} B payload"),
        &points,
    );
    points
}

/// Fig. 6a/6b: relative bandwidth and latency variation (in %) of the lat. and bdw.
/// configurations over BDopt + MBD.1, for `N = 30` and `N = 50`.
pub fn run_fig6(scale: Scale, asynchronous: bool) -> Vec<(String, usize, f64, f64)> {
    let systems: Vec<(usize, usize)> = match scale {
        Scale::Quick => vec![(20, 3)],
        Scale::Paper => vec![(30, 7), (50, 12)],
    };
    let payload = 1024;
    let runs = scale.runs();
    let mut rows = Vec::new();
    println!("# Fig. 6a/6b — variation (%) over BDopt+MBD.1, {payload} B payload");
    println!(
        "{:<14} {:>4} {:>4} {:>18} {:>18}",
        "configuration", "N", "k", "bandwidth var. %", "latency var. %"
    );
    for &(n, f) in &systems {
        for k in sweep_connectivities(scale, n, f) {
            let graphs = shared_graphs(n, k, runs);
            let dl = delay(asynchronous);
            let base = averaged_on_graphs(
                &experiment(n, k, f, payload, Config::bdopt_mbd1(n, f), dl, 1),
                &graphs,
            );
            for (label, config) in [
                (format!("lat., N={n}"), Config::latency_preset(n, f)),
                (format!("bdw., N={n}"), Config::bandwidth_preset(n, f)),
            ] {
                let r = averaged_on_graphs(&experiment(n, k, f, payload, config, dl, 1), &graphs);
                let bytes_var = variation_pct(base.bytes, r.bytes);
                let latency_var = variation_pct(base.latency_ms, r.latency_ms);
                println!(
                    "{:<14} {:>4} {:>4} {:>18.1} {:>18.1}",
                    label, n, k, bytes_var, latency_var
                );
                rows.push((label, k, bytes_var, latency_var));
            }
        }
    }
    rows
}

/// Figs. 7–10: distribution (five-number summary) of the impact of each modification on
/// network consumption and latency over the whole sweep, with synchronous
/// (Figs. 7/9) or asynchronous (Figs. 8/10) communications and 1 KiB payloads.
pub fn run_fig7_to_10(scale: Scale, asynchronous: bool) -> Vec<(u8, FiveNumber, FiveNumber)> {
    let rows = crate::table1::compute_table1(scale, asynchronous, &[1024]);
    let mode = if asynchronous {
        "asynchronous (Figs. 8 and 10)"
    } else {
        "synchronous (Figs. 7 and 9)"
    };
    println!("# Figs. 7-10 — impact distribution per modification, 1 KiB payload, {mode}");
    println!(
        "{:<8} {:>44} {:>44}",
        "MBD", "network consumption impact % (5-number)", "latency impact % (5-number)"
    );
    let mut out = Vec::new();
    for row in rows.iter().filter(|r| r.payload == 1024) {
        let bytes = FiveNumber::of(&row.bytes_var).expect("non-empty sweep");
        let latency = FiveNumber::of(&row.latency_var).expect("non-empty sweep");
        println!(
            "MBD.{:<4} {:>44} {:>44}",
            row.mbd,
            bytes.to_bracket_string(),
            latency.to_bracket_string()
        );
        out.push((row.mbd, bytes, latency));
    }
    out
}

/// Sec. 7.3: memory-consumption proxy (peak stored paths / protocol state) for
/// `N ∈ {10, 30, 50}` with 16 B payloads.
pub fn run_memory(scale: Scale) -> Vec<(usize, f64, f64)> {
    let systems: Vec<(usize, usize, usize)> = match scale {
        Scale::Quick => vec![(10, 3, 1), (20, 7, 3)],
        Scale::Paper => vec![(10, 3, 1), (30, 9, 4), (50, 21, 9)],
    };
    println!("# Sec. 7.3 — memory consumption proxy (16 B payload, synchronous)");
    println!(
        "{:<4} {:>6} {:>4} {:>22} {:>22}",
        "N", "k", "f", "peak stored paths", "peak state bytes"
    );
    let mut rows = Vec::new();
    for (n, k, f) in systems {
        let graphs = shared_graphs(n, k, scale.runs());
        let r = averaged_on_graphs(
            &experiment(
                n,
                k,
                f,
                16,
                Config::bdopt(n, f),
                DelayModel::synchronous(),
                1,
            ),
            &graphs,
        );
        println!(
            "{:<4} {:>6} {:>4} {:>22.0} {:>22.0}",
            n, k, f, r.peak_stored_paths, r.peak_state_bytes
        );
        rows.push((n, r.peak_stored_paths, r.peak_state_bytes));
    }
    rows
}

fn sweep(
    scale: Scale,
    asynchronous: bool,
    n: usize,
    f: usize,
    payload: usize,
    configs: &[(String, Config)],
) -> Vec<SeriesPoint> {
    let runs = scale.runs();
    let mut points = Vec::new();
    for k in sweep_connectivities(scale, n, f) {
        let graphs = shared_graphs(n, k, runs);
        for (label, config) in configs {
            let result = averaged_on_graphs(
                &experiment(n, k, f, payload, *config, delay(asynchronous), 1),
                &graphs,
            );
            points.push(SeriesPoint {
                label: label.clone(),
                k,
                result,
            });
        }
    }
    points
}

fn print_series(title: &str, points: &[SeriesPoint]) {
    println!("# {title}");
    println!(
        "{:<22} {:>4} {:>14} {:>20} {:>10}",
        "configuration", "k", "latency (ms)", "bandwidth (kB)", "messages"
    );
    for p in points {
        println!(
            "{:<22} {:>4} {:>14.1} {:>20.1} {:>10.0}",
            p.label,
            p.k,
            p.result.latency_ms,
            p.result.bytes / 1_000.0,
            p.result.messages
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connectivity_sweep_respects_constraints() {
        for &(n, f) in &[(20usize, 3usize), (30, 7), (50, 9)] {
            for k in sweep_connectivities(Scale::Paper, n, f) {
                assert!(k > 2 * f);
                assert!(k < n);
                assert_eq!((n * k) % 2, 0, "n*k must be even for a regular graph");
            }
        }
    }

    #[test]
    fn quick_fig5_bdw_reduces_bandwidth() {
        let points = run_fig5(Scale::Quick, false);
        assert!(!points.is_empty());
        for k in points
            .iter()
            .map(|p| p.k)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let base = points
                .iter()
                .find(|p| p.k == k && p.label == "BDopt + MBD.1")
                .unwrap();
            let bdw = points
                .iter()
                .find(|p| p.k == k && p.label == "bdw.")
                .unwrap();
            assert!(
                bdw.result.bytes <= base.result.bytes,
                "bdw. preset should not increase bandwidth at k = {k}"
            );
        }
    }

    #[test]
    fn quick_memory_grows_with_system_size() {
        let rows = run_memory(Scale::Quick);
        assert!(rows.len() >= 2);
        assert!(rows[0].2 <= rows[1].2, "state bytes grow with N");
    }
}
