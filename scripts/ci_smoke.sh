#!/usr/bin/env bash
# Sweep-determinism smoke check: runs the full quick-scale experiment suite (N <= 20)
# with 1 worker and with 4 workers, and requires the two CSV outputs to be byte-identical.
# This is the end-to-end guard for the parallel sweep engine's worker-count invariance
# (the unit/integration-level guards live in tests/determinism.rs).
#
# Usage: scripts/ci_smoke.sh [output-dir]
set -euo pipefail

out="${1:-target/smoke}"
mkdir -p "$out"

# Time-box each run: the quick preset finishes in well under a minute on CI hardware,
# so ten minutes signals a hang rather than a slow machine.
timeout 600 cargo run --release -p brb-bench --bin all_experiments -- \
    --quick --workers 1 --csv "$out/sweep_w1.csv" > "$out/stdout_w1.txt"
timeout 600 cargo run --release -p brb-bench --bin all_experiments -- \
    --quick --workers 4 --csv "$out/sweep_w4.csv" > "$out/stdout_w4.txt"

if ! diff -u "$out/sweep_w1.csv" "$out/sweep_w4.csv"; then
    echo "FAIL: sweep output differs between 1 and 4 workers" >&2
    exit 1
fi

rows=$(wc -l < "$out/sweep_w1.csv")
if [ "$rows" -lt 10 ]; then
    echo "FAIL: suspiciously small CSV ($rows rows) — did the sweep run?" >&2
    exit 1
fi

echo "OK: 1-worker and 4-worker sweeps produced identical CSVs ($rows rows)"
