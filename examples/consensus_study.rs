//! Consensus over BRB, on every backend: one seeded binary Byzantine consensus
//! instance (`brb-consensus`) runs on the deterministic simulator, the
//! thread-per-process channel runtime, and real TCP sockets over loopback — and the
//! three backends decide the *same value in the same round* on every process, because
//! each phase (propose, `CloseBv(r)`, `CloseRound(r)`) closes over a global BRB
//! fixpoint regardless of how the round messages physically travel.
//!
//! The scenario is adversarial on purpose: split proposals (half propose 0, half 1)
//! plus one consensus-level Byzantine value-flipper that inverts its EST/AUX votes.
//! The flipper is BRB-honest below, so only the consensus layer's `n - f` quorums and
//! bin-values validation defeat it.
//!
//! Run with: `cargo run --release --example consensus_study`

use std::time::Duration;

use brb_consensus::checks::{check_agreement, check_termination, check_validity};
use brb_consensus::{ConsensusSpec, Decision, ProposalPattern};
use brb_core::config::Config;
use brb_core::gc::GcPolicy;
use brb_core::stack::StackSpec;
use brb_net::run_tcp_consensus;
use brb_runtime::run_threaded_consensus;
use brb_sim::experiment::experiment_graph;
use brb_sim::{build_consensus_sim, honest_decisions, run_consensus, ExperimentParams};
use brb_transport::DriverOptions;

fn main() -> std::io::Result<()> {
    let (n, k, f) = (14usize, 5usize, 2usize);
    let stack = StackSpec::Bd;
    let spec = ConsensusSpec::default()
        .with_proposals(ProposalPattern::Split)
        .with_flippers(vec![n - 2]);
    let config = Config::bdopt_mbd1(n, f).with_gc(GcPolicy::after_events(64));
    let graph = experiment_graph(n, k, 4_242);

    println!("Binary consensus over BRB — stack={stack}, N={n}, k={k}, f={f}");
    println!("split proposals, process {} flips its votes", n - 2);
    println!();
    println!("backend    decided   value   round");
    println!("----------------------------------------------------");

    // Simulator: phase-stepped at virtual time, the reference schedule.
    let params = ExperimentParams::new(n, k, f, config)
        .with_stack(stack)
        .with_consensus(spec.clone());
    let (mut sim, handles) = build_consensus_sim(&params, &graph, &spec);
    let stats = run_consensus(&mut sim, &spec, &handles);
    let honest = brb_sim::honest_processes(&sim.correct_processes(), &spec);
    let sim_decisions = honest_decisions(&handles, &honest);
    print_row("simulator", stats.decided, stats.honest, &sim_decisions);
    verify(&spec, &sim_decisions);
    let reference = sim_decisions[0].1.expect("simulator decided");

    // Channel runtime: real threads, crossbeam links, wall-clock quiescence grace.
    let options = DriverOptions::default().with_gc(GcPolicy::after_events(64));
    let (_, run) = run_threaded_consensus(
        &graph,
        config,
        stack,
        &spec,
        f,
        options.clone(),
        &[],
        Duration::from_secs(120),
    );
    print_row(
        "threads",
        decided_count(&run.decisions),
        honest.len(),
        &run.decisions,
    );
    verify(&spec, &run.decisions);
    assert_lockstep("threads", reference, &run.decisions);

    // TCP: the same engines behind real sockets on loopback.
    let (_, run) = run_tcp_consensus(
        &graph,
        config,
        stack,
        &spec,
        f,
        options,
        &[],
        Duration::from_secs(120),
    )?;
    print_row(
        "tcp",
        decided_count(&run.decisions),
        honest.len(),
        &run.decisions,
    );
    verify(&spec, &run.decisions);
    assert_lockstep("tcp", reference, &run.decisions);

    println!();
    println!(
        "# all three backends decided value {} in round {} on every honest process",
        reference.value, reference.round
    );
    Ok(())
}

fn decided_count(decisions: &[(usize, Option<Decision>)]) -> usize {
    decisions.iter().filter(|(_, d)| d.is_some()).count()
}

fn print_row(
    backend: &str,
    decided: usize,
    honest: usize,
    decisions: &[(usize, Option<Decision>)],
) {
    let d = decisions.first().and_then(|&(_, d)| d);
    println!(
        "{backend:<10} {decided:>3}/{honest:<3}  {:>5}   {:>5}   (per-process lockstep)",
        d.map_or("-".to_string(), |d| d.value.to_string()),
        d.map_or("-".to_string(), |d| d.round.to_string()),
    );
}

fn verify(spec: &ConsensusSpec, decisions: &[(usize, Option<Decision>)]) {
    check_agreement(decisions).unwrap();
    check_validity(spec, decisions).unwrap();
    check_termination(decisions).unwrap();
}

fn assert_lockstep(backend: &str, reference: Decision, decisions: &[(usize, Option<Decision>)]) {
    for &(p, d) in decisions {
        assert_eq!(
            d,
            Some(reference),
            "{backend}: process {p} diverged from the simulator's decision"
        );
    }
}
