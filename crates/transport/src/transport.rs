//! The [`Transport`] abstraction: send/receive encoded frames over authenticated links.
//!
//! A transport is what a [`crate::NodeDriver`] plugs its protocol engine into. The
//! inbound side is uniform across every backend of this workspace — a crossbeam
//! [`Receiver`] of authenticated [`Frame`]s (the channel deployment's mailbox feeds it
//! directly, the TCP deployment's per-socket reader threads feed it from the wire) — so
//! the trait only abstracts the *outbound* side, which is where the backends genuinely
//! differ and where the [`crate::policy`] decorators interpose faults and delays.

use brb_core::types::ProcessId;
use bytes::Bytes;
use crossbeam::channel::Receiver;

use crate::link::{AuthenticatedSender, Frame, Mailbox};

/// An authenticated point-to-point transport between one process and its neighbors.
///
/// `send` returns the number of frames actually put on the wire for this request:
/// `1` for a plain transport with a link to `to`, `0` when no such link exists (the
/// engine addressed a non-neighbor, which the deployments tolerate silently, exactly as
/// the old per-backend node loops did), and any other count when a
/// [`crate::policy`] decorator drops or amplifies the frame. Drivers multiply
/// `wire_size` by the returned count for the paper's Table 3 byte accounting.
pub trait Transport: Send {
    /// The multiplexed inbound frame stream (every neighbor's traffic, tagged with the
    /// authenticated sender identity by trusted infrastructure).
    fn inbound(&self) -> &Receiver<Frame>;

    /// The neighbors this transport holds an outbound link to, in ascending order.
    /// Static for the lifetime of a deployment; decorators forward to the transport
    /// they wrap (asynchronous ones snapshot it at construction), so the accounting of
    /// [`Transport::send`] stays exact through any decorator stack.
    fn peers(&self) -> Vec<ProcessId>;

    /// Transmits one encoded frame to direct neighbor `to`; returns how many copies were
    /// put on the wire. `wire_size` is the Table 3 size of the frame (decorators may use
    /// it; plain transports ignore it).
    fn send(&mut self, to: ProcessId, frame: &Bytes, wire_size: usize) -> usize;
}

impl Transport for Box<dyn Transport> {
    fn inbound(&self) -> &Receiver<Frame> {
        (**self).inbound()
    }

    fn peers(&self) -> Vec<ProcessId> {
        (**self).peers()
    }

    fn send(&mut self, to: ProcessId, frame: &Bytes, wire_size: usize) -> usize {
        (**self).send(to, frame, wire_size)
    }
}

/// The in-process transport: crossbeam-channel authenticated links
/// (see [`crate::link::build_links`]). This is the backend `brb-runtime` deploys on.
pub struct ChannelTransport {
    mailbox: Mailbox,
    links: Vec<AuthenticatedSender>,
}

impl ChannelTransport {
    /// Wraps one process's mailbox and outgoing links.
    pub fn new(mailbox: Mailbox, links: Vec<AuthenticatedSender>) -> Self {
        Self { mailbox, links }
    }
}

impl Transport for ChannelTransport {
    fn inbound(&self) -> &Receiver<Frame> {
        self.mailbox.receiver()
    }

    fn peers(&self) -> Vec<ProcessId> {
        // build_links sorts each process's senders by peer.
        self.links.iter().map(|l| l.peer()).collect()
    }

    fn send(&mut self, to: ProcessId, frame: &Bytes, _wire_size: usize) -> usize {
        if let Some(link) = self.links.iter().find(|l| l.peer() == to) {
            // A failed send means the peer has shut down, which the protocols tolerate;
            // the frame still counts as transmitted (it left this process).
            let _ = link.send(frame.clone());
            1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::build_links;

    #[test]
    fn channel_transport_routes_by_peer() {
        let (mut mailboxes, mut senders) = build_links(3, &[(0, 1), (0, 2)]);
        let mailbox2 = mailboxes.pop().unwrap();
        let mut t0 = ChannelTransport::new(mailboxes.swap_remove(0), senders.swap_remove(0));
        assert_eq!(t0.send(2, &Bytes::from_static(b"to two"), 6), 1);
        assert_eq!(t0.send(9, &Bytes::from_static(b"nobody"), 6), 0);
        let frame = mailbox2.receiver().recv().unwrap();
        assert_eq!(frame.from, 0);
        assert_eq!(&frame.bytes[..], b"to two");
        assert!(t0.inbound().is_empty());
    }
}
