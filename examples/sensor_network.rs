//! Sensor network: repeatable broadcasts on an asynchronous partially connected network.
//!
//! The paper motivates repeatable broadcasts with sensing applications (Sec. 5,
//! "Repeatable broadcast"): a process periodically broadcasts fresh readings identified by
//! a monotonically increasing broadcast id. This example simulates a temperature sensor
//! (process 0) publishing ten readings over an asynchronous network (50 ± 50 ms links)
//! while two other processes have crashed, and checks that every correct process delivers
//! every reading exactly once and in a consistent way.
//!
//! Run with: `cargo run --release --example sensor_network`

use brb_core::bd::BdProcess;
use brb_core::config::Config;
use brb_core::protocol::Protocol;
use brb_core::types::{BroadcastId, Payload};
use brb_graph::generate;
use brb_sim::{Behavior, DelayModel, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (n, k, f) = (20, 5, 2);
    let mut rng = StdRng::seed_from_u64(99);
    let graph =
        generate::random_regular_connected(n, k, 2 * f + 1, &mut rng).expect("topology generation");
    let config = Config::latency_preset(n, f);

    let processes: Vec<BdProcess> = (0..n)
        .map(|i| BdProcess::new(i, config, graph.neighbors_vec(i)))
        .collect();
    let mut sim = Simulation::new(processes, DelayModel::asynchronous(), 2024);
    // Two processes fail: one crashes outright, one dies after sending 40 messages.
    sim.set_behavior(11, Behavior::Crash);
    sim.set_behavior(17, Behavior::FailsAfter(40));

    let readings: Vec<f32> = (0..10).map(|i| 20.0 + i as f32 * 0.3).collect();
    println!(
        "Sensor (process 0) publishes {} temperature readings...",
        readings.len()
    );
    for reading in &readings {
        sim.broadcast(0, Payload::new(reading.to_be_bytes().to_vec()));
        sim.run_to_quiescence();
    }

    let correct = sim.correct_processes();
    println!("correct processes: {} / {n}", correct.len());
    for (seq, reading) in readings.iter().enumerate() {
        let id = BroadcastId::new(0, seq as u32);
        let delivered = sim.metrics().delivered_count(id, &correct);
        let latency = sim
            .metrics()
            .latency(id, &correct)
            .map(|t| t.as_millis_f64())
            .unwrap_or(f64::NAN);
        println!(
            "  reading #{seq:<2} ({reading:>5.1} °C): delivered by {delivered:>2}/{} correct processes, latency {:>7.1} ms",
            correct.len(),
            latency,
        );
        assert_eq!(
            delivered,
            correct.len(),
            "every correct process must deliver"
        );
    }
    // No duplication: every process delivered exactly one payload per reading.
    for &p in &correct {
        assert_eq!(sim.processes()[p].deliveries().len(), readings.len());
    }
    println!(
        "\nTotal network consumption: {:.1} kB over {} messages.",
        sim.metrics().kilobytes_sent(),
        sim.metrics().messages_sent
    );
}
