//! Undirected graph representation used as the communication topology.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a process (a node of the communication graph).
///
/// Processes are identified by dense indices `0..N`, mirroring the paper's
/// `Π = {p_1, ..., p_N}` with globally known IDs.
pub type ProcessId = usize;

/// An undirected, simple communication graph.
///
/// Nodes are processes, edges are authenticated point-to-point channels. Two processes can
/// directly exchange messages if and only if an edge connects them; all other communication
/// must be relayed by intermediary (possibly Byzantine) processes.
///
/// The representation keeps a sorted adjacency set per node so that neighbor iteration is
/// deterministic, which keeps the discrete-event simulation reproducible for a fixed seed.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adjacency: Vec<BTreeSet<ProcessId>>,
}

impl Graph {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Self {
            adjacency: vec![BTreeSet::new(); n],
        }
    }

    /// Creates a graph with `n` nodes from an edge list.
    ///
    /// Self-loops are ignored; duplicate edges are collapsed.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (ProcessId, ProcessId)>) -> Self {
        let mut g = Self::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of nodes (processes) in the graph.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges in the graph.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Iterator over all node identifiers, in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = ProcessId> + '_ {
        0..self.node_count()
    }

    /// Adds the undirected edge `{u, v}`. Adding an existing edge or a self-loop is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is not a valid node.
    pub fn add_edge(&mut self, u: ProcessId, v: ProcessId) {
        assert!(u < self.node_count(), "node {u} out of range");
        assert!(v < self.node_count(), "node {v} out of range");
        if u == v {
            return;
        }
        self.adjacency[u].insert(v);
        self.adjacency[v].insert(u);
    }

    /// Removes the undirected edge `{u, v}` if present. Returns whether an edge was removed.
    pub fn remove_edge(&mut self, u: ProcessId, v: ProcessId) -> bool {
        if u >= self.node_count() || v >= self.node_count() {
            return false;
        }
        let removed = self.adjacency[u].remove(&v);
        self.adjacency[v].remove(&u);
        removed
    }

    /// Returns whether the undirected edge `{u, v}` is present.
    pub fn has_edge(&self, u: ProcessId, v: ProcessId) -> bool {
        self.adjacency
            .get(u)
            .map(|s| s.contains(&v))
            .unwrap_or(false)
    }

    /// Neighbors of `u`, in increasing order of identifier.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a valid node.
    pub fn neighbors(&self, u: ProcessId) -> impl Iterator<Item = ProcessId> + '_ {
        self.adjacency[u].iter().copied()
    }

    /// Neighbors of `u` collected into a vector (convenience for protocol layers).
    pub fn neighbors_vec(&self, u: ProcessId) -> Vec<ProcessId> {
        self.adjacency[u].iter().copied().collect()
    }

    /// Degree (number of direct neighbors) of `u`.
    pub fn degree(&self, u: ProcessId) -> usize {
        self.adjacency[u].len()
    }

    /// Minimum degree over all nodes, or 0 for an empty graph.
    ///
    /// The vertex connectivity of a graph never exceeds its minimum degree, which makes
    /// this a cheap upper bound used by [`crate::connectivity::vertex_connectivity`].
    pub fn min_degree(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).min().unwrap_or(0)
    }

    /// All undirected edges `(u, v)` with `u < v`, in lexicographic order.
    pub fn edges(&self) -> Vec<(ProcessId, ProcessId)> {
        let mut out = Vec::with_capacity(self.edge_count());
        for u in self.nodes() {
            for &v in &self.adjacency[u] {
                if u < v {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// Returns the subgraph induced by removing the given nodes (used when checking
    /// separators during connectivity certification in tests).
    pub fn without_nodes(&self, removed: &BTreeSet<ProcessId>) -> Graph {
        let mut g = Graph::new(self.node_count());
        for (u, v) in self.edges() {
            if !removed.contains(&u) && !removed.contains(&v) {
                g.add_edge(u, v);
            }
        }
        g
    }
}

/// A compressed (CSR-style) snapshot of a graph's adjacency, built **once per run**.
///
/// [`Graph`] stores one `BTreeSet` per node, which is convenient while a topology is being
/// generated or mutated but costs a tree walk every time a neighbor list is materialised.
/// Simulation runs query neighbor lists for every process of every run of a sweep, so the
/// experiment runner flattens the adjacency into a single `targets` array with per-node
/// `offsets` and hands out `&[ProcessId]` slices instead of walking the sets again.
///
/// Neighbor slices preserve the deterministic increasing order of [`Graph::neighbors`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborIndex {
    offsets: Vec<usize>,
    targets: Vec<ProcessId>,
}

impl NeighborIndex {
    /// Builds the index from a graph in one pass over its adjacency.
    pub fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0);
        for u in 0..n {
            targets.extend(graph.adjacency[u].iter().copied());
            offsets.push(targets.len());
        }
        Self { offsets, targets }
    }

    /// Number of nodes indexed.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbors of `u` in increasing order, as a borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not a valid node.
    pub fn neighbors(&self, u: ProcessId) -> &[ProcessId] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: ProcessId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("nodes", &self.node_count())
            .field("edges", &self.edge_count())
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "graph with {} nodes:", self.node_count())?;
        for u in self.nodes() {
            let ns: Vec<String> = self.neighbors(u).map(|v| v.to_string()).collect();
            writeln!(f, "  {} -- [{}]", u, ns.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::new(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.min_degree(), 0);
        assert!(g.edges().is_empty());
    }

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.neighbors_vec(1), vec![0, 2]);
    }

    #[test]
    fn duplicate_edges_and_self_loops_are_ignored() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        g.add_edge(2, 2);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn remove_edge_works() {
        let mut g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn from_edges_builds_expected_graph() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3), (1, 2)]);
        assert_eq!(g.edges(), vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn without_nodes_removes_incident_edges() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let removed: BTreeSet<_> = [1].into_iter().collect();
        let h = g.without_nodes(&removed);
        assert!(!h.has_edge(0, 1));
        assert!(!h.has_edge(1, 2));
        assert!(h.has_edge(2, 3));
        assert!(h.has_edge(3, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_out_of_range_panics() {
        let mut g = Graph::new(2);
        g.add_edge(0, 5);
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let g = Graph::from_edges(2, [(0, 1)]);
        assert!(!format!("{g:?}").is_empty());
        assert!(format!("{g}").contains("0 -- [1]"));
    }

    #[test]
    fn neighbor_index_matches_graph_adjacency() {
        let g = Graph::from_edges(5, [(0, 1), (0, 3), (1, 2), (2, 3), (3, 4)]);
        let index = NeighborIndex::new(&g);
        assert_eq!(index.node_count(), 5);
        for u in g.nodes() {
            assert_eq!(index.neighbors(u), g.neighbors_vec(u).as_slice());
            assert_eq!(index.degree(u), g.degree(u));
        }
    }

    #[test]
    fn neighbor_index_of_isolated_nodes_is_empty() {
        let g = Graph::new(3);
        let index = NeighborIndex::new(&g);
        for u in 0..3 {
            assert!(index.neighbors(u).is_empty());
        }
    }
}
