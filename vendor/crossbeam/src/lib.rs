//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam) crate.
//!
//! Implements the multi-producer multi-consumer channel subset this workspace uses
//! ([`channel::unbounded`], [`channel::Sender`], [`channel::Receiver`] and the
//! [`select!`] macro) on top of `std::sync` primitives. The `select!` implementation polls
//! its `recv` arms in order with a short park between rounds, which matches crossbeam's
//! observable semantics for the workspace's two-arms-plus-default loops (arbitrary-order
//! arm readiness, `Err` on disconnection, `default(timeout)` after inactivity).

#![forbid(unsafe_code)]

pub mod channel {
    //! MPMC channels mirroring `crossbeam_channel`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        cond: Condvar,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cond: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.cond.notify_all();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders += 1;
            drop(inner);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let disconnected = inner.senders == 0;
            drop(inner);
            if disconnected {
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or the channel disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self
                    .shared
                    .cond
                    .wait(inner)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = inner.queue.pop_front() {
                    return Ok(value);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .cond
                    .wait_timeout(inner, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        /// Receives a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(value) = inner.queue.pop_front() {
                return Ok(value);
            }
            if inner.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Whether the channel currently holds no messages.
        pub fn is_empty(&self) -> bool {
            let inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.queue.is_empty()
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            let inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.queue.len()
        }

        #[doc(hidden)]
        pub fn __select_disconnected_result(&self) -> Result<T, RecvError> {
            Err(RecvError)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers += 1;
            drop(inner);
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    pub use crate::select;
}

/// Waits on several channel operations at once: `recv(receiver) -> result => body` arms
/// plus a mandatory `default(timeout) => body` arm (the only shape this workspace uses).
///
/// Arms are polled in order; between polling rounds the thread parks briefly. An arm on a
/// disconnected channel is considered ready with `Err(RecvError)`, like crossbeam's.
#[macro_export]
macro_rules! select {
    ($(recv($r:expr) -> $res:pat => $body:expr,)+ default($timeout:expr) => $default:expr $(,)?) => {{
        let __deadline = ::std::time::Instant::now() + $timeout;
        'crossbeam_select: loop {
            $(
                {
                    let __receiver = &$r;
                    match __receiver.try_recv() {
                        ::std::result::Result::Ok(__value) => {
                            let $res: ::std::result::Result<_, $crate::channel::RecvError> =
                                ::std::result::Result::Ok(__value);
                            break 'crossbeam_select ($body);
                        }
                        ::std::result::Result::Err(
                            $crate::channel::TryRecvError::Disconnected,
                        ) => {
                            let $res = __receiver.__select_disconnected_result();
                            break 'crossbeam_select ($body);
                        }
                        ::std::result::Result::Err($crate::channel::TryRecvError::Empty) => {}
                    }
                }
            )+
            if ::std::time::Instant::now() >= __deadline {
                break 'crossbeam_select ($default);
            }
            ::std::thread::park_timeout(::std::time::Duration::from_micros(200));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv(), Ok(5));
    }

    #[test]
    fn disconnection_is_observed() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn select_picks_ready_arm_and_default() {
        let (tx, rx) = unbounded();
        let (_tx2, rx2) = unbounded::<u8>();
        tx.send(9u8).unwrap();
        let mut got = None;
        let mut defaulted = false;
        crate::channel::select! {
            recv(rx) -> msg => got = msg.ok(),
            recv(rx2) -> msg => got = msg.ok(),
            default(Duration::from_millis(5)) => defaulted = true,
        }
        assert_eq!(got, Some(9));
        assert!(!defaulted);
        crate::channel::select! {
            recv(rx) -> msg => { let _ = msg; },
            recv(rx2) -> msg => { let _ = msg; },
            default(Duration::from_millis(5)) => defaulted = true,
        }
        assert!(defaulted);
    }
}
