//! Core identifiers and payload types shared by every protocol layer.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// Identifier of a process. Re-exported from [`brb_graph`] so that protocol and topology
/// layers agree on the node namespace.
pub use brb_graph::ProcessId;

/// Sequence number that a source process attaches to each of its broadcasts
/// (the `bid` field of the paper, Sec. 5 "Repeatable broadcast").
pub type BroadcastSeq = u32;

/// Locally generated identifier a process associates to a payload for use with its direct
/// neighbors (modification MBD.1).
pub type LocalPayloadId = u32;

/// Number of low bits of a [`BroadcastSeq`] that carry the namespace-local sequence
/// number; the bits above them carry the client-instance namespace.
///
/// Layered clients (a consensus engine, a workload generator) that share one node's
/// engine each allocate broadcast sequence numbers independently, so without
/// coordination two clients would mint the same `(source, seq)` pair for different
/// payloads — indistinguishable, to every other process, from a Byzantine equivocation.
/// The namespace scheme partitions the 32-bit sequence space instead:
/// `seq = (namespace << 24) | local`, giving every client 2^24 collision-free
/// instances per node. [`NAMESPACE_CLIENT`] (0) is the default — engines allocate
/// their own counters there, so plain broadcasts and workload-generator schedules are
/// unchanged — and [`NAMESPACE_CONSENSUS`] (1) is reserved for `brb-consensus`
/// round-message instances.
pub const NAMESPACE_SHIFT: u32 = 24;

/// Mask selecting the namespace-local part of a [`BroadcastSeq`].
pub const NAMESPACE_LOCAL_MASK: BroadcastSeq = (1 << NAMESPACE_SHIFT) - 1;

/// The default client-instance namespace: engine-owned counters (plain `broadcast`
/// calls, workload-generator schedules) allocate here, starting at 0.
pub const NAMESPACE_CLIENT: u32 = 0;

/// The namespace reserved for consensus round-messages (`brb-consensus`): every
/// BV/aux broadcast is minted here, so consensus instances never collide with
/// workload-generator ids on the same node.
pub const NAMESPACE_CONSENSUS: u32 = 1;

/// Composes a [`BroadcastSeq`] from a client-instance namespace and a namespace-local
/// sequence number (`local` must fit in [`NAMESPACE_SHIFT`] bits).
pub fn namespaced_seq(namespace: u32, local: u32) -> BroadcastSeq {
    debug_assert!(
        local <= NAMESPACE_LOCAL_MASK,
        "local seq overflows namespace"
    );
    (namespace << NAMESPACE_SHIFT) | (local & NAMESPACE_LOCAL_MASK)
}

/// The client-instance namespace a [`BroadcastSeq`] was minted in.
pub fn seq_namespace(seq: BroadcastSeq) -> u32 {
    seq >> NAMESPACE_SHIFT
}

/// The namespace-local part of a [`BroadcastSeq`].
pub fn seq_local(seq: BroadcastSeq) -> u32 {
    seq & NAMESPACE_LOCAL_MASK
}

/// Identifier of a broadcast: the source process and its per-source sequence number.
///
/// If the source is correct, `(source, seq)` uniquely identifies a payload. A Byzantine
/// source may reuse a sequence number for several payloads, in which case the protocol
/// guarantees that correct processes deliver at most one of them (BRB-Agreement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BroadcastId {
    /// Source process that initiated the broadcast.
    pub source: ProcessId,
    /// Monotonically increasing per-source sequence number.
    pub seq: BroadcastSeq,
}

impl BroadcastId {
    /// Creates a new broadcast identifier.
    pub fn new(source: ProcessId, seq: BroadcastSeq) -> Self {
        Self { source, seq }
    }
}

impl fmt::Display for BroadcastId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.source, self.seq)
    }
}

/// Immutable, cheaply clonable payload data.
///
/// The protocols never interpret payload bytes; they only move them around and compare
/// them for equality (no cryptographic digests are used, matching the paper's goal of
/// tolerating computationally unbounded adversaries).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Payload(Arc<Vec<u8>>);

impl Payload {
    /// Creates a payload from raw bytes.
    pub fn new(bytes: impl Into<Vec<u8>>) -> Self {
        Self(Arc::new(bytes.into()))
    }

    /// Creates a payload of `len` identical bytes (handy for the 16 B / 1024 B workloads
    /// of the evaluation).
    pub fn filled(byte: u8, len: usize) -> Self {
        Self(Arc::new(vec![byte; len]))
    }

    /// Payload length in bytes (the `payloadSize` wire field).
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw bytes of the payload.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.0.len())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::new(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::new(v.to_vec())
    }
}

impl From<&str> for Payload {
    fn from(v: &str) -> Self {
        Payload::new(v.as_bytes().to_vec())
    }
}

/// A broadcast *content*: the broadcast identifier together with the payload data.
///
/// Bracha's quorums are counted per content (a Byzantine source may attach different
/// payloads to the same [`BroadcastId`], and those are tracked independently).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Content {
    /// Broadcast identifier `(s, bid)`.
    pub id: BroadcastId,
    /// Payload data.
    pub payload: Payload,
}

impl Content {
    /// Creates a content record.
    pub fn new(id: BroadcastId, payload: Payload) -> Self {
        Self { id, payload }
    }
}

/// A delivery event produced by a protocol: the BRB (or RC) layer hands the payload of a
/// given broadcast to the application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delivery {
    /// Broadcast identifier of the delivered message.
    pub id: BroadcastId,
    /// Delivered payload.
    pub payload: Payload,
}

/// Action produced by a protocol state machine in response to an event.
///
/// The discrete-event simulator and the threaded runtime both execute these actions:
/// `Send` puts a message on an authenticated link, `Deliver` hands a payload to the
/// application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action<M> {
    /// Send `message` to direct neighbor `to` over the authenticated link.
    Send {
        /// Destination (must be a direct neighbor).
        to: ProcessId,
        /// Message to transmit.
        message: M,
    },
    /// Deliver a broadcast to the local application.
    Deliver(Delivery),
}

impl<M> Action<M> {
    /// Convenience constructor for a send action.
    pub fn send(to: ProcessId, message: M) -> Self {
        Action::Send { to, message }
    }

    /// Returns the delivery if this action is a delivery.
    pub fn as_delivery(&self) -> Option<&Delivery> {
        match self {
            Action::Deliver(d) => Some(d),
            Action::Send { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_id_display() {
        assert_eq!(BroadcastId::new(3, 7).to_string(), "(3, 7)");
    }

    #[test]
    fn namespaced_seqs_round_trip_and_never_collide_across_namespaces() {
        let client = namespaced_seq(NAMESPACE_CLIENT, 42);
        let consensus = namespaced_seq(NAMESPACE_CONSENSUS, 42);
        assert_eq!(client, 42, "namespace 0 is the plain engine counter");
        assert_ne!(client, consensus);
        assert_eq!(seq_namespace(consensus), NAMESPACE_CONSENSUS);
        assert_eq!(seq_local(consensus), 42);
        assert_eq!(seq_namespace(client), NAMESPACE_CLIENT);
        assert_eq!(seq_local(client), 42);
    }

    #[test]
    fn payload_constructors() {
        let p = Payload::filled(0xAB, 16);
        assert_eq!(p.len(), 16);
        assert!(!p.is_empty());
        assert!(p.as_bytes().iter().all(|&b| b == 0xAB));
        let q = Payload::from("hello");
        assert_eq!(q.len(), 5);
        let r = Payload::from(vec![1, 2, 3]);
        assert_eq!(r.as_bytes(), &[1, 2, 3]);
        let s = Payload::from(&b"xy"[..]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn payload_equality_is_structural() {
        assert_eq!(Payload::new(vec![1, 2]), Payload::new(vec![1, 2]));
        assert_ne!(Payload::new(vec![1, 2]), Payload::new(vec![1, 3]));
    }

    #[test]
    fn payload_debug_shows_length_not_bytes() {
        let p = Payload::filled(0, 1024);
        assert_eq!(format!("{p:?}"), "Payload(1024 bytes)");
    }

    #[test]
    fn action_as_delivery() {
        let d = Delivery {
            id: BroadcastId::new(0, 0),
            payload: Payload::from("x"),
        };
        let a: Action<u8> = Action::Deliver(d.clone());
        assert_eq!(a.as_delivery(), Some(&d));
        let s: Action<u8> = Action::send(1, 9);
        assert_eq!(s.as_delivery(), None);
    }

    #[test]
    fn empty_payload() {
        let p = Payload::new(Vec::new());
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
