//! Regenerates Fig. 4a (latency) and Fig. 4b (network consumption) of the paper:
//! BDopt + MBD.1 and BDopt + MBD.1/{7, 8, 9, 11} as a function of the network
//! connectivity, with N = 50, f = 9 and 1024 B payloads.
//!
//! Usage: `cargo run --release -p brb-bench --bin fig4 [-- --quick] [-- --async] [-- --workers N] [-- --stack NAME]`

use brb_bench::{async_from_args, figures::run_fig4, stack_from_args, workers_from_args, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_fig4(
        Scale::from_args(&args),
        async_from_args(&args),
        workers_from_args(&args),
        stack_from_args(&args),
    );
}
