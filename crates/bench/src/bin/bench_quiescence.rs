//! Machine-readable quiescence + bounded-memory benchmark for CI.
//!
//! Emits `BENCH_quiescence.json` with two sections:
//!
//! * `quiescence` — the mean wall-clock time of the same scenario the criterion bench
//!   `engine_quiescence_n100_k12` measures (one broadcast on an N=100, k=12 random
//!   regular graph, run to quiescence), so CI can track the hot-path cost of the
//!   per-event GC bookkeeping as a single number;
//! * `memory_curve` — the first/last summed `state_bytes` across a long sequence of
//!   broadcasts with instance GC off and on. The GC-off endpoints grow linearly with
//!   the broadcast count; the GC-on endpoints must stay flat.
//!
//! The flatness invariant is asserted here (exit code 1 on regression), so the smoke
//! script only has to check the file exists and carries the expected fields. The JSON
//! is emitted through [`brb_bench::json`]: the workspace deliberately has no JSON
//! dependency.
//!
//! Usage: `cargo run --release -p brb-bench --bin bench_quiescence [-- --out PATH]`

use std::time::Instant;

use brb_bench::json::{out_path_from_args, write_and_echo, JsonObject};

use brb_core::config::Config;
use brb_core::gc::GcPolicy;
use brb_core::stack::{DynStack, StackSpec};
use brb_core::types::Payload;
use brb_core::{BdProcess, Protocol};
use brb_graph::NeighborIndex;
use brb_sim::experiment::experiment_graph;
use brb_sim::{DelayModel, Simulation};

/// Iterations of the quiescence scenario averaged into `mean_ms` (each runs ~seconds).
const QUIESCENCE_ITERS: u32 = 3;
/// Sequential broadcasts traced for the memory curve.
const CURVE_BROADCASTS: usize = 40;
/// Event-count retention window for the GC-on curve.
const CURVE_WINDOW: u64 = 200;

/// Times the `engine_quiescence_n100_k12` scenario: mean milliseconds to quiesce one
/// 1 KiB broadcast on the N=100, k=12, f=5 bandwidth-preset system.
fn quiescence_mean_ms() -> (f64, usize) {
    let (n, k, f) = (100usize, 12usize, 5usize);
    let graph = experiment_graph(n, k, 424_242);
    let index = NeighborIndex::new(&graph);
    let config = Config::bandwidth_preset(n, f);
    let mut total_ms = 0.0;
    let mut events = 0;
    for _ in 0..QUIESCENCE_ITERS {
        let processes: Vec<BdProcess> = (0..n)
            .map(|i| BdProcess::new(i, config, index.neighbors(i).to_vec()))
            .collect();
        let mut sim = Simulation::new(processes, DelayModel::synchronous(), 7);
        sim.broadcast(0, Payload::filled(0xAB, 1024));
        let start = Instant::now();
        events = sim.run_to_quiescence();
        total_ms += start.elapsed().as_secs_f64() * 1_000.0;
    }
    (total_ms / f64::from(QUIESCENCE_ITERS), events)
}

/// Runs `CURVE_BROADCASTS` sequential broadcasts on an N=20 system and returns the
/// summed `state_bytes` after the first and after the last, plus total retirements.
fn memory_curve(gc: Option<GcPolicy>) -> (usize, usize, u64) {
    let (n, k, f) = (20usize, 6usize, 1usize);
    let graph = experiment_graph(n, k, 777);
    let mut config = Config::bdopt_mbd1(n, f);
    if let Some(policy) = gc {
        config = config.with_gc(policy);
    }
    let processes: Vec<DynStack> = (0..n)
        .map(|i| StackSpec::Bd.build_protocol(&config, &graph, i))
        .collect();
    let mut sim = Simulation::new(processes, DelayModel::synchronous(), 7);
    let (mut first, mut last) = (0usize, 0usize);
    for round in 0..CURVE_BROADCASTS {
        sim.broadcast(round % n, Payload::filled(round as u8, 64));
        sim.run_to_quiescence();
        let bytes: usize = sim.processes().iter().map(|p| p.state_bytes()).sum();
        if round == 0 {
            first = bytes;
        }
        last = bytes;
    }
    let retired: u64 = sim.processes().iter().map(|p| p.gc_retired()).sum();
    (first, last, retired)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = out_path_from_args(&args, "BENCH_quiescence.json");

    let (mean_ms, events) = quiescence_mean_ms();
    let (off_first, off_last, off_retired) = memory_curve(None);
    let (on_first, on_last, on_retired) = memory_curve(Some(GcPolicy::after_events(CURVE_WINDOW)));

    let endpoints = |first: usize, last: usize, retired: u64| {
        let mut obj = JsonObject::new();
        obj.u64("first_bytes", first as u64)
            .u64("last_bytes", last as u64)
            .u64("gc_retired", retired);
        obj
    };
    let mut quiescence = JsonObject::new();
    quiescence
        .f64("mean_ms", mean_ms, 3)
        .u64("iters", u64::from(QUIESCENCE_ITERS))
        .u64("events", events as u64);
    let mut curve = JsonObject::new();
    curve
        .u64("broadcasts", CURVE_BROADCASTS as u64)
        .u64("window_events", CURVE_WINDOW)
        .obj("gc_off", endpoints(off_first, off_last, off_retired))
        .obj("gc_on", endpoints(on_first, on_last, on_retired));
    let mut doc = JsonObject::new();
    doc.str("bench", "engine_quiescence_n100_k12")
        .obj("quiescence", quiescence)
        .obj("memory_curve", curve);
    write_and_echo(&out_path, &doc.render());

    // The boundedness invariant CI relies on: GC off grows with the broadcast count,
    // GC on stays flat (the last endpoint may not exceed the first by more than the
    // in-flight window's worth of instances — in practice it equals it).
    assert_eq!(
        off_retired, 0,
        "GC must stay disabled on the baseline curve"
    );
    assert!(
        off_last > 4 * off_first,
        "baseline must grow linearly: first={off_first} last={off_last}"
    );
    assert!(on_retired > 0, "GC-on curve must retire instances");
    assert!(
        on_last <= 2 * on_first,
        "GC-on curve must stay flat: first={on_first} last={on_last}"
    );
    assert!(
        on_last < off_last / 2,
        "GC-on endpoint must undercut the baseline: {on_last} vs {off_last}"
    );
    println!("# OK: GC-off endpoint grew {off_first} -> {off_last} bytes; GC-on stayed {on_first} -> {on_last}");
}
