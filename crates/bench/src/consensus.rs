//! The consensus experiment axis: binary Byzantine consensus over BRB as sweep rows.
//!
//! The paper stops at the broadcast layer; this harness measures the canonical
//! application on top — seeded binary consensus (`brb-consensus`), where every round
//! message rides a fresh BRB instance of the selected stack. Every scenario
//! (proposal pattern × consensus-level value-flipper) runs through the parallel sweep
//! engine via [`brb_sim::ExperimentParams::consensus`], so the rows are worker-count
//! invariant and the CI smoke job can byte-diff the CSV between 1 and 4 workers.
//!
//! Each row reports the decided round, the `p50`/`p99` of rounds-to-decide across the
//! point's seeds, the number of BRB instances spawned in the consensus namespace, and
//! the instance-GC retirement count (the runs set an event-count retention window, so
//! per-instance state of closed rounds is actually reclaimed mid-consensus).

use brb_consensus::{ConsensusSpec, ProposalPattern};
use brb_core::config::Config;
use brb_core::gc::GcPolicy;
use brb_core::stack::StackSpec;
use brb_sim::{run_sweep, DelayModel, ExperimentSpec};
use brb_stats::percentile;

use crate::{experiment, point_specs, Scale};

/// Event-count retention window installed on every consensus run, small enough that
/// closed-round BRB instances retire while the consensus instance is still running.
const GC_WINDOW: u64 = 64;

/// One row of the consensus matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsensusPoint {
    /// Scenario name (e.g. `"split-flip"`), the CSV `behavior` column.
    pub scenario: String,
    /// Number of processes.
    pub n: usize,
    /// Network connectivity `k`.
    pub k: usize,
    /// Fault budget `f`.
    pub f: usize,
    /// Honest processes that decided (summed sanity: equals `honest` on success).
    pub decided: usize,
    /// Number of honest processes (correct and not value-flippers).
    pub honest: usize,
    /// Mean decided round over the point's seeds.
    pub decision_round: f64,
    /// Median rounds-to-decide across the seeds.
    pub rounds_p50: f64,
    /// 99th-percentile rounds-to-decide across the seeds.
    pub rounds_p99: f64,
    /// Mean number of BRB instances spawned in the consensus namespace per run.
    pub instances: f64,
    /// Mean instance-GC retirements per run (positive: the retention window works
    /// under consensus load).
    pub gc_retired: f64,
    /// Mean virtual time (ms) until every honest process decided.
    pub latency_ms: f64,
}

/// The scenario list: proposal patterns with and without a consensus-level Byzantine
/// value-flipper (the flipper is BRB-honest below, so the BRB layer never masks it).
fn scenarios(n: usize) -> Vec<(String, ConsensusSpec)> {
    vec![
        (
            "unanimous1".to_string(),
            ConsensusSpec::default().with_proposals(ProposalPattern::Unanimous(1)),
        ),
        (
            "split".to_string(),
            ConsensusSpec::default().with_proposals(ProposalPattern::Split),
        ),
        (
            "random".to_string(),
            ConsensusSpec::default().with_proposals(ProposalPattern::Random(5)),
        ),
        (
            "split-flip".to_string(),
            ConsensusSpec::default()
                .with_proposals(ProposalPattern::Split)
                .with_flippers(vec![n - 2]),
        ),
    ]
}

/// Runs the consensus matrix: every scenario through the sweep engine, `runs` seeds per
/// point, aggregated per scenario.
pub fn run_consensus_matrix(
    scale: Scale,
    asynchronous: bool,
    workers: usize,
    stack: StackSpec,
) -> Vec<ConsensusPoint> {
    let (n, k, f) = match scale {
        Scale::Quick => (10, 4, 1),
        Scale::Paper => (20, 7, 2),
    };
    let graph_seed = 33_000 + (n * k) as u64;
    let delay = if asynchronous {
        DelayModel::asynchronous()
    } else {
        DelayModel::synchronous()
    };
    let config = Config::bdopt_mbd1(n, f).with_gc(GcPolicy::after_events(GC_WINDOW));
    let runs = scale.runs();

    let named = scenarios(n);
    let mut specs: Vec<ExperimentSpec> = Vec::new();
    for (name, spec) in &named {
        let params = experiment(n, k, f, 16, config, delay, 1)
            .with_stack(stack)
            .with_consensus(spec.clone());
        specs.extend(point_specs(name, &params, graph_seed, runs));
    }
    let outcomes = run_sweep(&specs, workers);

    let points: Vec<ConsensusPoint> = outcomes
        .chunks(runs)
        .zip(named)
        .map(|(chunk, (scenario, _))| {
            let mut rounds: Vec<f64> = Vec::new();
            let (mut round_sum, mut instances, mut retired, mut latency) = (0.0, 0.0, 0.0, 0.0);
            let (mut decided, mut honest) = (0, 0);
            for outcome in chunk {
                let stats = outcome
                    .record
                    .result
                    .consensus
                    .as_ref()
                    .expect("consensus params produce consensus stats");
                rounds.push(f64::from(stats.rounds_driven));
                round_sum += stats.decision_round.map_or(f64::NAN, f64::from);
                instances += stats.instances as f64;
                retired += outcome.record.result.gc_retired as f64;
                latency += stats.decision_time_ms;
                decided = stats.decided;
                honest = stats.honest;
            }
            let denom = chunk.len().max(1) as f64;
            ConsensusPoint {
                scenario,
                n,
                k,
                f,
                decided,
                honest,
                decision_round: round_sum / denom,
                rounds_p50: percentile(&rounds, 50.0),
                rounds_p99: percentile(&rounds, 99.0),
                instances: instances / denom,
                gc_retired: retired / denom,
                latency_ms: latency / denom,
            }
        })
        .collect();

    print_points(
        &format!(
            "Consensus matrix — stack={stack}, N={n}, k={k}, f={f}, {runs} seed(s)/point, \
             GC window {GC_WINDOW} events"
        ),
        &points,
    );
    points
}

fn print_points(title: &str, points: &[ConsensusPoint]) {
    println!("# {title}");
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>11} {:>13}",
        "scenario",
        "decided",
        "dec round",
        "rounds p50",
        "rounds p99",
        "instances",
        "gc_retired",
        "latency (ms)"
    );
    for p in points {
        println!(
            "{:<12} {:>5}/{:<2} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>11.1} {:>13.2}",
            p.scenario,
            p.decided,
            p.honest,
            p.decision_round,
            p.rounds_p50,
            p.rounds_p99,
            p.instances,
            p.gc_retired,
            p.latency_ms
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_consensus_matrix_terminates_and_retires_instances() {
        let points = run_consensus_matrix(Scale::Quick, false, 2, StackSpec::Bd);
        assert_eq!(points.len(), 4, "4 proposal/flipper scenarios");
        for p in &points {
            assert_eq!(
                p.decided, p.honest,
                "{}: all honest must decide",
                p.scenario
            );
            assert!(p.decision_round.is_finite(), "{}", p.scenario);
            assert!(p.instances > 0.0, "{}", p.scenario);
            assert!(
                p.gc_retired > 0.0,
                "{}: the retention window must retire instances",
                p.scenario
            );
        }
        let unanimous = points.iter().find(|p| p.scenario == "unanimous1").unwrap();
        assert_eq!(
            unanimous.decision_round, 0.0,
            "unanimous proposals decide in round 0 when the coin cooperates, or the \
             mean stays finite otherwise"
        );
    }

    #[test]
    fn consensus_matrix_is_worker_count_invariant() {
        let a = run_consensus_matrix(Scale::Quick, false, 1, StackSpec::Bd);
        let b = run_consensus_matrix(Scale::Quick, false, 4, StackSpec::Bd);
        assert_eq!(a, b);
    }
}
