//! Structural analysis of communication topologies.
//!
//! The experiment harnesses and the examples use these metrics to characterise the graphs
//! they run on (degree statistics, clustering, distances) and to explain protocol cost:
//! Dolev's message complexity grows with the number of simple paths, which correlates with
//! density and path length, while Bracha's phase latency is governed by eccentricities.
//!
//! All functions take the graph by reference and are pure; complexities are quoted for a
//! graph with `n` nodes and `m` edges (the paper's evaluation never exceeds `n = 50`, so
//! quadratic and cubic algorithms are perfectly adequate and kept simple).

use std::collections::BTreeSet;

use crate::graph::{Graph, ProcessId};
use crate::traversal::bfs_distances;

/// Degree statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree `δ(G)`.
    pub min: usize,
    /// Maximum degree `Δ(G)`.
    pub max: usize,
    /// Mean degree `2m / n`.
    pub mean: f64,
    /// Whether every node has the same degree.
    pub regular: bool,
}

/// Computes degree statistics. Returns zeros for the empty graph.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.node_count();
    if n == 0 {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            regular: true,
        };
    }
    let degrees: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
    let min = *degrees.iter().min().expect("non-empty");
    let max = *degrees.iter().max().expect("non-empty");
    DegreeStats {
        min,
        max,
        mean: degrees.iter().sum::<usize>() as f64 / n as f64,
        regular: min == max,
    }
}

/// Edge density: `2m / (n (n - 1))`, i.e. the fraction of possible edges present.
///
/// Returns 0 for graphs with fewer than two nodes.
pub fn density(g: &Graph) -> f64 {
    let n = g.node_count();
    if n < 2 {
        return 0.0;
    }
    2.0 * g.edge_count() as f64 / (n as f64 * (n as f64 - 1.0))
}

/// Local clustering coefficient of node `u`: the fraction of pairs of neighbors of `u`
/// that are themselves adjacent. Nodes of degree < 2 have coefficient 0.
pub fn local_clustering(g: &Graph, u: ProcessId) -> f64 {
    let neighbors = g.neighbors_vec(u);
    let d = neighbors.len();
    if d < 2 {
        return 0.0;
    }
    let mut closed = 0usize;
    for i in 0..d {
        for j in (i + 1)..d {
            if g.has_edge(neighbors[i], neighbors[j]) {
                closed += 1;
            }
        }
    }
    closed as f64 / (d * (d - 1) / 2) as f64
}

/// Average clustering coefficient over all nodes (0 for the empty graph).
pub fn average_clustering(g: &Graph) -> f64 {
    let n = g.node_count();
    if n == 0 {
        return 0.0;
    }
    g.nodes().map(|u| local_clustering(g, u)).sum::<f64>() / n as f64
}

/// Average shortest-path length over all ordered pairs of distinct nodes, in hops.
///
/// Returns `None` if the graph is disconnected or has fewer than two nodes. This is the
/// quantity that drives broadcast latency under the synchronous 50 ms-per-hop delay model
/// of the paper's evaluation.
pub fn average_path_length(g: &Graph) -> Option<f64> {
    let n = g.node_count();
    if n < 2 {
        return None;
    }
    let mut total = 0usize;
    let mut pairs = 0usize;
    for u in g.nodes() {
        for (v, d) in bfs_distances(g, u).into_iter().enumerate() {
            if v == u {
                continue;
            }
            total += d?;
            pairs += 1;
        }
    }
    Some(total as f64 / pairs as f64)
}

/// Eccentricity of node `u`: the maximum BFS distance from `u` to any other node, or
/// `None` if some node is unreachable.
pub fn eccentricity(g: &Graph, u: ProcessId) -> Option<usize> {
    let mut max = 0usize;
    for (v, d) in bfs_distances(g, u).into_iter().enumerate() {
        if v == u {
            continue;
        }
        max = max.max(d?);
    }
    Some(max)
}

/// Radius of the graph: the minimum eccentricity over all nodes. `None` if disconnected or
/// if the graph has fewer than two nodes.
pub fn radius(g: &Graph) -> Option<usize> {
    if g.node_count() < 2 {
        return None;
    }
    g.nodes()
        .map(|u| eccentricity(g, u))
        .collect::<Option<Vec<_>>>()
        .map(|e| e.into_iter().min().expect("non-empty"))
}

/// Articulation points (cut vertices): nodes whose removal increases the number of
/// connected components.
///
/// A graph with an articulation point has vertex connectivity 1, so it cannot support
/// reliable communication with even a single Byzantine process; the deployment examples use
/// this check to produce actionable diagnostics.
///
/// Implemented with Tarjan's lowlink algorithm (iterative, `O(n + m)`), returning the
/// points in increasing identifier order.
pub fn articulation_points(g: &Graph) -> Vec<ProcessId> {
    let n = g.node_count();
    let mut disc: Vec<Option<usize>> = vec![None; n];
    let mut low = vec![0usize; n];
    let mut parent: Vec<Option<ProcessId>> = vec![None; n];
    let mut is_cut = vec![false; n];
    let mut timer = 0usize;

    for root in 0..n {
        if disc[root].is_some() {
            continue;
        }
        // Iterative DFS: stack of (node, neighbor iterator index).
        let mut stack: Vec<(ProcessId, usize)> = vec![(root, 0)];
        disc[root] = Some(timer);
        low[root] = timer;
        timer += 1;
        let mut root_children = 0usize;

        while let Some(frame) = stack.last_mut() {
            let (u, idx) = *frame;
            frame.1 += 1;
            let neighbors = g.neighbors_vec(u);
            if idx < neighbors.len() {
                let v = neighbors[idx];
                if disc[v].is_none() {
                    parent[v] = Some(u);
                    disc[v] = Some(timer);
                    low[v] = timer;
                    timer += 1;
                    if u == root {
                        root_children += 1;
                    }
                    stack.push((v, 0));
                } else if Some(v) != parent[u] {
                    low[u] = low[u].min(disc[v].expect("visited"));
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if p != root && low[u] >= disc[p].expect("visited") {
                        is_cut[p] = true;
                    }
                }
            }
        }
        if root_children > 1 {
            is_cut[root] = true;
        }
    }
    (0..n).filter(|&u| is_cut[u]).collect()
}

/// Bridges: edges whose removal disconnects their endpoints, in `(u, v)` order with
/// `u < v`.
pub fn bridges(g: &Graph) -> Vec<(ProcessId, ProcessId)> {
    // Reuse the lowlink information via a simple recomputation: an edge (u, v) with v a
    // DFS child of u is a bridge iff low[v] > disc[u]. For the graph sizes in this
    // repository a per-edge connectivity check would also work, but this stays linear.
    let n = g.node_count();
    let mut disc: Vec<Option<usize>> = vec![None; n];
    let mut low = vec![0usize; n];
    let mut parent: Vec<Option<ProcessId>> = vec![None; n];
    let mut timer = 0usize;
    let mut out = Vec::new();

    for root in 0..n {
        if disc[root].is_some() {
            continue;
        }
        let mut stack: Vec<(ProcessId, usize)> = vec![(root, 0)];
        disc[root] = Some(timer);
        low[root] = timer;
        timer += 1;
        while let Some(frame) = stack.last_mut() {
            let (u, idx) = *frame;
            frame.1 += 1;
            let neighbors = g.neighbors_vec(u);
            if idx < neighbors.len() {
                let v = neighbors[idx];
                if disc[v].is_none() {
                    parent[v] = Some(u);
                    disc[v] = Some(timer);
                    low[v] = timer;
                    timer += 1;
                    stack.push((v, 0));
                } else if Some(v) != parent[u] {
                    low[u] = low[u].min(disc[v].expect("visited"));
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[u]);
                    if low[u] > disc[p].expect("visited") {
                        out.push((p.min(u), p.max(u)));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// The `k`-core of a graph: the maximal induced subgraph in which every node has degree at
/// least `k`. Returns the set of nodes in the core (possibly empty).
pub fn k_core(g: &Graph, k: usize) -> BTreeSet<ProcessId> {
    let mut removed: BTreeSet<ProcessId> = BTreeSet::new();
    let mut degree: Vec<usize> = g.nodes().map(|u| g.degree(u)).collect();
    loop {
        let next: Vec<ProcessId> = g
            .nodes()
            .filter(|&u| !removed.contains(&u) && degree[u] < k)
            .collect();
        if next.is_empty() {
            break;
        }
        for u in next {
            removed.insert(u);
            for v in g.neighbors(u) {
                if !removed.contains(&v) {
                    degree[v] -= 1;
                }
            }
        }
    }
    g.nodes().filter(|u| !removed.contains(u)).collect()
}

/// Degeneracy of the graph: the largest `k` such that the `k`-core is non-empty.
pub fn degeneracy(g: &Graph) -> usize {
    let mut k = 0usize;
    while !k_core(g, k + 1).is_empty() {
        k += 1;
    }
    k
}

/// A one-line human-readable summary of a topology, used by the examples and the
/// experiment harness logs.
pub fn describe(g: &Graph) -> String {
    let stats = degree_stats(g);
    let apl = average_path_length(g)
        .map(|v| format!("{v:.2}"))
        .unwrap_or_else(|| "∞".to_string());
    format!(
        "{} nodes, {} edges, degree {}..{} (mean {:.1}), density {:.2}, avg path length {}, clustering {:.2}",
        g.node_count(),
        g.edge_count(),
        stats.min,
        stats.max,
        stats.mean,
        density(g),
        apl,
        average_clustering(g),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::generate;

    #[test]
    fn degree_stats_of_regular_and_irregular_graphs() {
        let g = generate::circulant(10, 2);
        let s = degree_stats(&g);
        assert!(s.regular);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 4);
        assert!((s.mean - 4.0).abs() < 1e-9);

        let star = families::star(5);
        let s = degree_stats(&star);
        assert!(!s.regular);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 4);
    }

    #[test]
    fn degree_stats_of_empty_graph() {
        let s = degree_stats(&Graph::new(0));
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.regular);
    }

    #[test]
    fn density_of_complete_graph_is_one() {
        assert!((density(&generate::complete(7)) - 1.0).abs() < 1e-9);
        assert_eq!(density(&Graph::new(1)), 0.0);
        assert!((density(&generate::ring(8)) - (2.0 * 8.0) / (8.0 * 7.0)).abs() < 1e-9);
    }

    #[test]
    fn clustering_of_complete_and_ring() {
        assert!((average_clustering(&generate::complete(6)) - 1.0).abs() < 1e-9);
        assert_eq!(average_clustering(&generate::ring(8)), 0.0);
        // Triangle has clustering 1 everywhere.
        let t = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert!((local_clustering(&t, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clustering_of_low_degree_nodes_is_zero() {
        let p = families::path(3);
        assert_eq!(local_clustering(&p, 0), 0.0);
        assert_eq!(local_clustering(&p, 1), 0.0);
    }

    #[test]
    fn average_path_length_of_known_graphs() {
        // Complete graph: every pair at distance 1.
        assert!((average_path_length(&generate::complete(5)).unwrap() - 1.0).abs() < 1e-9);
        // Path over 3 nodes: distances 1,1,2 in each direction → mean 4/3.
        let apl = average_path_length(&families::path(3)).unwrap();
        assert!((apl - 4.0 / 3.0).abs() < 1e-9);
        // Disconnected graph has no finite APL.
        assert!(average_path_length(&Graph::from_edges(4, [(0, 1), (2, 3)])).is_none());
        assert!(average_path_length(&Graph::new(1)).is_none());
    }

    #[test]
    fn eccentricity_and_radius() {
        let p = families::path(5);
        assert_eq!(eccentricity(&p, 0), Some(4));
        assert_eq!(eccentricity(&p, 2), Some(2));
        assert_eq!(radius(&p), Some(2));
        assert_eq!(radius(&generate::complete(4)), Some(1));
        assert_eq!(radius(&Graph::from_edges(4, [(0, 1), (2, 3)])), None);
    }

    #[test]
    fn articulation_points_of_path_star_and_ring() {
        assert_eq!(articulation_points(&families::path(5)), vec![1, 2, 3]);
        assert_eq!(articulation_points(&families::star(5)), vec![0]);
        assert!(articulation_points(&generate::ring(6)).is_empty());
        assert!(articulation_points(&generate::complete(5)).is_empty());
    }

    #[test]
    fn articulation_points_of_two_triangles_sharing_a_node() {
        // Bowtie graph: triangles {0,1,2} and {2,3,4} share node 2.
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        assert_eq!(articulation_points(&g), vec![2]);
    }

    #[test]
    fn bridges_of_path_and_ring() {
        assert_eq!(bridges(&families::path(4)), vec![(0, 1), (1, 2), (2, 3)]);
        assert!(bridges(&generate::ring(5)).is_empty());
        // Two triangles joined by a single edge: that edge is the only bridge.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        assert_eq!(bridges(&g), vec![(2, 3)]);
    }

    #[test]
    fn k_core_and_degeneracy() {
        // A triangle with a pendant node: 2-core is the triangle, degeneracy 2.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let core: Vec<_> = k_core(&g, 2).into_iter().collect();
        assert_eq!(core, vec![0, 1, 2]);
        assert!(k_core(&g, 3).is_empty());
        assert_eq!(degeneracy(&g), 2);
        assert_eq!(degeneracy(&generate::complete(5)), 4);
        assert_eq!(degeneracy(&Graph::new(3)), 0);
    }

    #[test]
    fn describe_mentions_node_and_edge_counts() {
        let s = describe(&generate::ring(6));
        assert!(s.contains("6 nodes"));
        assert!(s.contains("6 edges"));
    }
}
