//! Offline stand-in for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports the no-op derive
//! macros from the vendored `serde_derive`, so that `#[derive(Serialize, Deserialize)]`
//! across the workspace compiles without registry access. Nothing in the workspace
//! currently serializes values, so no serializer implementations are provided; swapping in
//! the real serde is a one-line Cargo change.

#![forbid(unsafe_code)]

// Only the derive macros are exported — deliberately no `Serialize`/`Deserialize`
// *traits*. The no-op derives implement nothing, so shipping marker traits of the same
// name would let someone write a `T: serde::Serialize` bound that no type satisfies and
// get a baffling "trait not implemented" error despite the visible derive. Without the
// traits, such a bound fails fast with "expected trait, found derive macro", which
// points straight at this stand-in.
pub use serde_derive::{Deserialize, Serialize};
