//! The reliable-communication (RC) transport abstraction.
//!
//! Sec. 4.3 of the paper observes that BRB on a partially connected network is obtained by
//! combining Bracha's protocol with *any* protocol providing reliable communication on the
//! given topology: Dolev's flooding protocol (the main subject of the paper), Dolev's
//! known-topology variant with predefined routes, CPA under the locally bounded fault
//! model, or topology-specific protocols. The [`RcTransport`] trait captures exactly what
//! the Bracha layer needs from such a substrate:
//!
//! * a way to **originate** an RC broadcast of an opaque payload, and
//! * a way to feed link-level messages in and receive **RC deliveries** out, where each
//!   delivery is tagged with the identity of the process that originated it (the paper
//!   embeds the originator in the payload because MD.2 erases paths; we surface it as a
//!   field of [`RcDelivery`]).
//!
//! [`crate::bracha_rc::BrachaOverRc`] is the generic combination built on this trait;
//! [`crate::dolev_routed::RoutedDolev`] and [`crate::cpa::CpaProcess`] are the two
//! substrates implementing it in this crate. The flooding Bracha–Dolev combination of the
//! paper keeps its dedicated, heavily cross-optimised implementation in [`crate::bd`].

use crate::cpa::CpaProcess;
use crate::protocol::Protocol;
use crate::types::{Action, Payload, ProcessId};

/// An RC delivery: the transport certifies that process `origin` broadcast `payload` as its
/// `seq`-th RC broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RcDelivery {
    /// Process that originated the RC broadcast.
    pub origin: ProcessId,
    /// Per-origin sequence number of the RC broadcast.
    pub seq: u32,
    /// The opaque payload handed to [`RcTransport::originate`] by the origin.
    pub payload: Payload,
}

/// A reliable-communication substrate usable under a Bracha layer.
///
/// Implementations must guarantee the RC properties for correct origins (every correct
/// process eventually RC-delivers what a correct origin originated, and an RC delivery
/// attributed to a correct origin was indeed originated by it), under the fault and
/// connectivity assumptions of the concrete protocol.
pub trait RcTransport {
    /// Link-level message type of the substrate.
    type Message: Clone + std::fmt::Debug;

    /// Identifier of the local process.
    fn local_id(&self) -> ProcessId;

    /// Originates the RC broadcast of `payload`, pushing the link sends it requires onto
    /// `actions` and returning the RC deliveries it triggers locally (an origin always
    /// RC-delivers its own broadcast immediately).
    fn originate(
        &mut self,
        payload: Payload,
        actions: &mut Vec<Action<Self::Message>>,
    ) -> Vec<RcDelivery>;

    /// Handles a link-level message received from direct neighbor `from`, pushing the
    /// forwarding sends it requires onto `actions` and returning the RC deliveries the
    /// message triggers.
    fn on_message(
        &mut self,
        from: ProcessId,
        message: Self::Message,
        actions: &mut Vec<Action<Self::Message>>,
    ) -> Vec<RcDelivery>;

    /// Size of a link-level message on the wire, in bytes (Table 3 accounting).
    fn wire_size(message: &Self::Message) -> usize;

    /// Approximate number of bytes of transport state held (see
    /// [`Protocol::state_bytes`]).
    fn state_bytes(&self) -> usize {
        0
    }

    /// Number of transmission paths stored by the transport, if it tracks any.
    fn stored_paths(&self) -> usize {
        0
    }

    /// Installs an instance-GC retention policy on the substrate's own per-instance
    /// state (see [`crate::gc::GcPolicy`]). The substrate retires its RC instances
    /// independently of the Bracha layer above it, with the same policy. The default
    /// implementation ignores it.
    fn set_gc_policy(&mut self, _policy: crate::gc::GcPolicy) {}

    /// Feeds the host clock to the substrate for time-based retention windows. The
    /// default implementation ignores it.
    fn note_time(&mut self, _now_ms: u64) {}

    /// Number of RC instances the substrate has retired through GC so far.
    fn gc_retired(&self) -> u64 {
        0
    }
}

/// CPA is a reliable-communication protocol for the `t`-locally bounded fault model, so it
/// can directly serve as the RC substrate of a Bracha combination (the extension listed as
/// future work in the paper's conclusion).
impl RcTransport for CpaProcess {
    type Message = <CpaProcess as Protocol>::Message;

    fn local_id(&self) -> ProcessId {
        self.process_id()
    }

    fn originate(
        &mut self,
        payload: Payload,
        actions: &mut Vec<Action<Self::Message>>,
    ) -> Vec<RcDelivery> {
        split_protocol_actions(self.broadcast(payload), actions)
    }

    fn on_message(
        &mut self,
        from: ProcessId,
        message: Self::Message,
        actions: &mut Vec<Action<Self::Message>>,
    ) -> Vec<RcDelivery> {
        split_protocol_actions(self.handle_message(from, message), actions)
    }

    fn wire_size(message: &Self::Message) -> usize {
        <CpaProcess as Protocol>::message_size(message)
    }

    fn state_bytes(&self) -> usize {
        <CpaProcess as Protocol>::state_bytes(self)
    }

    fn set_gc_policy(&mut self, policy: crate::gc::GcPolicy) {
        <CpaProcess as Protocol>::set_gc_policy(self, policy);
    }

    fn note_time(&mut self, now_ms: u64) {
        <CpaProcess as Protocol>::note_time(self, now_ms);
    }

    fn gc_retired(&self) -> u64 {
        <CpaProcess as Protocol>::gc_retired(self)
    }
}

/// Splits the action list of a [`Protocol`]-style RC implementation into link sends
/// (pushed onto `actions`) and RC deliveries (returned), mapping the protocol's
/// [`crate::types::Delivery`] onto [`RcDelivery`] via its broadcast identifier.
fn split_protocol_actions<M>(
    produced: Vec<Action<M>>,
    actions: &mut Vec<Action<M>>,
) -> Vec<RcDelivery> {
    let mut deliveries = Vec::new();
    for action in produced {
        match action {
            Action::Send { to, message } => actions.push(Action::send(to, message)),
            Action::Deliver(d) => deliveries.push(RcDelivery {
                origin: d.id.source,
                seq: d.id.seq,
                payload: d.payload,
            }),
        }
    }
    deliveries
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BroadcastId, Content};

    #[test]
    fn cpa_transport_originates_and_delivers_locally() {
        let mut cpa = CpaProcess::new(2, 1, vec![0, 1, 3]);
        let mut actions = Vec::new();
        let deliveries = cpa.originate(Payload::from("x"), &mut actions);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].origin, 2);
        assert_eq!(deliveries[0].seq, 0);
        assert_eq!(actions.len(), 3, "one relay per neighbor");
        assert_eq!(cpa.local_id(), 2);
    }

    #[test]
    fn cpa_transport_delivers_direct_reception_from_origin() {
        let mut cpa = CpaProcess::new(1, 1, vec![0, 2]);
        let mut actions = Vec::new();
        let msg = crate::cpa::CpaMessage {
            content: Content::new(BroadcastId::new(0, 7), Payload::from("m")),
        };
        let deliveries = cpa.on_message(0, msg, &mut actions);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].origin, 0);
        assert_eq!(deliveries[0].seq, 7);
        assert!(!actions.is_empty(), "delivered content is relayed");
    }

    #[test]
    fn cpa_transport_wire_size_matches_protocol() {
        let msg = crate::cpa::CpaMessage {
            content: Content::new(BroadcastId::new(0, 0), Payload::filled(0, 16)),
        };
        assert_eq!(
            <CpaProcess as RcTransport>::wire_size(&msg),
            <CpaProcess as Protocol>::message_size(&msg)
        );
    }
}
