//! Criterion microbenchmark of the disjoint-path verification, the computational core of
//! Dolev's delivery rule (the paper attributes most of the protocol's CPU and memory cost
//! to it, Sec. 6.6 and 7.3).

use brb_core::disjoint::DisjointPathTracker;
use brb_core::pathset::PathSet;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates `count` random paths of the given length over a universe of `n` labels.
fn random_paths(n: usize, count: usize, len: usize, seed: u64) -> Vec<PathSet> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let mut set = PathSet::new();
            while set.len() < len {
                set.insert(rng.gen_range(1..n));
            }
            set
        })
        .collect()
}

fn bench_disjoint_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjoint_path_verification");
    for &(n, count, len, threshold) in &[
        (50usize, 40usize, 3usize, 6usize),
        (50, 80, 5, 10),
        (100, 120, 4, 10),
    ] {
        let paths = random_paths(n, count, len, 42);
        group.bench_with_input(
            BenchmarkId::new("add_until_threshold", format!("n{n}_paths{count}_len{len}")),
            &paths,
            |b, paths| {
                b.iter(|| {
                    let mut tracker = DisjointPathTracker::new();
                    for (i, p) in paths.iter().enumerate() {
                        tracker.add_path(black_box(p.clone()), i % n);
                        if tracker.reaches(threshold) {
                            break;
                        }
                    }
                    black_box(tracker.best_disjoint())
                })
            },
        );
    }
    group.finish();
}

fn bench_subpath_filtering(c: &mut Criterion) {
    let paths = random_paths(50, 200, 4, 7);
    c.bench_function("mbd10_subpath_filter_200_paths", |b| {
        b.iter(|| {
            let mut tracker = DisjointPathTracker::new();
            let mut ignored = 0usize;
            for (i, p) in paths.iter().enumerate() {
                if tracker.has_subpath_of(p) {
                    ignored += 1;
                } else {
                    tracker.add_path(p.clone(), i % 50);
                }
            }
            black_box(ignored)
        })
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_disjoint_paths, bench_subpath_filtering
}
criterion_main!(benches);
