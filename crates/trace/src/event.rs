//! Typed trace events and their vocabulary.

use std::fmt;

/// A process identifier, mirroring `brb_graph::ProcessId` without the dependency.
pub type NodeId = usize;

/// Which harness tier produced an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Backend {
    /// Discrete-event simulator (`brb-sim`); timestamps are virtual microseconds.
    Sim,
    /// Thread-per-process channel runtime (`brb-runtime`); wall-clock timestamps.
    Runtime,
    /// TCP loopback deployment (`brb-net`); wall-clock timestamps.
    Tcp,
}

impl Backend {
    /// Stable lower-case label used by the exporters.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Sim => "sim",
            Backend::Runtime => "runtime",
            Backend::Tcp => "tcp",
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Why a frame was discarded instead of transmitted or processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DropCause {
    /// Probabilistic link loss (churn schedule `Degrade` or lossy behavior).
    Loss,
    /// A churn schedule currently severs the link (partition / link-down window).
    ChurnGate,
    /// A Byzantine outbound behavior suppressed the copy (mute, silent-towards, ...).
    Behavior,
    /// The instance was already garbage-collected; ingress frame refused.
    GcRetired,
    /// Destination is not a neighbor of the sending process.
    NonNeighbor,
}

impl DropCause {
    /// Every cause, in counter-array order.
    pub const ALL: [DropCause; 5] = [
        DropCause::Loss,
        DropCause::ChurnGate,
        DropCause::Behavior,
        DropCause::GcRetired,
        DropCause::NonNeighbor,
    ];

    /// Stable lower-snake-case label used by the exporters and the CSV.
    pub fn as_str(self) -> &'static str {
        match self {
            DropCause::Loss => "loss",
            DropCause::ChurnGate => "churn_gate",
            DropCause::Behavior => "behavior",
            DropCause::GcRetired => "gc_retired",
            DropCause::NonNeighbor => "non_neighbor",
        }
    }

    /// Position of this cause in [`DropCause::ALL`] (and in counter arrays).
    pub fn index(self) -> usize {
        match self {
            DropCause::Loss => 0,
            DropCause::ChurnGate => 1,
            DropCause::Behavior => 2,
            DropCause::GcRetired => 3,
            DropCause::NonNeighbor => 4,
        }
    }
}

impl fmt::Display for DropCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What happened. Protocol phase transitions come from engines, frame events from
/// the hosting tier (simulator scheduler or live link decorators), lifecycle marks
/// from whichever layer owns the transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceEventKind {
    /// A broadcast instance was injected at its source (engine minted the id).
    Injected,
    /// A Dolev instance recorded one more path (direct or relayed).
    PathAccumulated {
        /// Paths accumulated so far for this instance at this node.
        paths: usize,
    },
    /// The Dolev disjoint-path threshold (`f + 1`) was crossed.
    DisjointReached {
        /// Size of the disjoint set that crossed the threshold.
        disjoint: usize,
    },
    /// The Bracha echo quorum was crossed, triggering READY.
    EchoThreshold {
        /// Distinct echo origins observed when the quorum crossed.
        echoes: usize,
    },
    /// This node committed to sending READY for the instance (exactly once).
    ReadySent,
    /// READY was triggered by ready amplification (`f + 1` readies) instead of echoes.
    ReadyAmplified,
    /// CPA accepted the content (single acceptance point of the CPA engine).
    CpaAccepted {
        /// Witnesses (distinct relayers incl. direct receipt) at acceptance.
        witnesses: usize,
    },
    /// The hosting tier observed the engine deliver the instance at this node.
    Delivered,
    /// Instance state was retired by the GC policy at this node.
    Retired,
    /// The process was restarted by a churn schedule.
    Restarted,
    /// Consensus binary-value broadcast (EST) for a round was sent.
    ConsensusBv {
        /// DBFT round.
        round: u32,
        /// Proposed binary value.
        value: u8,
    },
    /// Consensus AUX broadcast for a round was sent.
    ConsensusAux {
        /// DBFT round.
        round: u32,
        /// Auxiliary binary value.
        value: u8,
    },
    /// The round's (seeded) common coin was consumed / the round was closed.
    ConsensusCoin {
        /// DBFT round being closed.
        round: u32,
    },
    /// The consensus node transitioned to decided.
    ConsensusDecide {
        /// Round in which the decision was reached.
        round: u32,
        /// Decided binary value.
        value: u8,
    },
    /// A frame copy was handed to the link layer (per-copy, post-behavior).
    FrameSent {
        /// Destination process.
        to: NodeId,
        /// Wire size of the frame in bytes.
        bytes: usize,
    },
    /// A frame was discarded; `source`/`seq` identify the instance when the
    /// dropping layer knows it (engine ingress drops) and are `(node, 0)` when
    /// the frame is opaque to that layer (link decorators, sim scheduler).
    FrameDropped {
        /// Intended destination (the local node for ingress drops).
        to: NodeId,
        /// Why the frame was discarded.
        cause: DropCause,
    },
    /// Delay-line occupancy after an enqueue (live backends' paced links).
    QueueDepth {
        /// Frames queued in the delay line, including the one just added.
        depth: usize,
    },
}

impl TraceEventKind {
    /// Stable lower-snake-case name used by the exporters and normalizers.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::Injected => "injected",
            TraceEventKind::PathAccumulated { .. } => "path_accumulated",
            TraceEventKind::DisjointReached { .. } => "disjoint_reached",
            TraceEventKind::EchoThreshold { .. } => "echo_threshold",
            TraceEventKind::ReadySent => "ready_sent",
            TraceEventKind::ReadyAmplified => "ready_amplified",
            TraceEventKind::CpaAccepted { .. } => "cpa_accepted",
            TraceEventKind::Delivered => "delivered",
            TraceEventKind::Retired => "retired",
            TraceEventKind::Restarted => "restarted",
            TraceEventKind::ConsensusBv { .. } => "consensus_bv",
            TraceEventKind::ConsensusAux { .. } => "consensus_aux",
            TraceEventKind::ConsensusCoin { .. } => "consensus_coin",
            TraceEventKind::ConsensusDecide { .. } => "consensus_decide",
            TraceEventKind::FrameSent { .. } => "frame_sent",
            TraceEventKind::FrameDropped { .. } => "frame_dropped",
            TraceEventKind::QueueDepth { .. } => "queue_depth",
        }
    }

    /// Whether the event is *causal*: guaranteed to occur exactly once per
    /// `(node, instance)` in every completed run regardless of message arrival
    /// order, so the order-normalized set is identical across backends.
    ///
    /// Trigger-path events (`EchoThreshold` vs `ReadyAmplified`, the Dolev path
    /// counters) depend on arrival order and are deliberately excluded.
    pub fn is_causal(&self) -> bool {
        matches!(
            self,
            TraceEventKind::Injected
                | TraceEventKind::ReadySent
                | TraceEventKind::CpaAccepted { .. }
                | TraceEventKind::Delivered
                | TraceEventKind::ConsensusDecide { .. }
        )
    }
}

/// One structured trace record. `source`/`seq` are the `BroadcastId` of the
/// instance the event belongs to; frame-level events that cannot see the
/// instance id use `(node, 0)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which backend produced the event.
    pub backend: Backend,
    /// The process the event happened at.
    pub node: NodeId,
    /// Source process of the broadcast instance.
    pub source: NodeId,
    /// Sequence number of the broadcast instance (namespaced for consensus).
    pub seq: u32,
    /// Microseconds: virtual sim time or wall clock since the deployment epoch.
    pub time_us: u64,
    /// What happened.
    pub kind: TraceEventKind,
}
