//! Criterion benchmark of the simulator under sustained multi-broadcast load: 64
//! concurrent broadcasts firehosed through a 30-process Bracha–Dolev system, open loop
//! and closed loop.
//!
//! This is the macro-benchmark of the workload engine's hot path — scheduled-injection
//! events interleaving with deliveries of dozens of in-flight broadcasts — and the
//! number to watch when touching the simulator's event queue or the per-broadcast
//! metrics maps.

use brb_core::bd::BdProcess;
use brb_core::config::Config;
use brb_graph::NeighborIndex;
use brb_sim::experiment::experiment_graph;
use brb_sim::workload::{run_workload, workload_stats};
use brb_sim::{DelayModel, Simulation};
use brb_workload::{LoopMode, WorkloadSpec};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const N: usize = 30;
const K: usize = 7;
const F: usize = 3;
const BROADCASTS: u32 = 64;

fn simulation(seed: u64) -> Simulation<BdProcess> {
    let graph = experiment_graph(N, K, 4242);
    let index = NeighborIndex::new(&graph);
    let config = Config::bdopt_mbd1(N, F);
    let processes: Vec<BdProcess> = (0..N)
        .map(|i| BdProcess::new(i, config, index.neighbors(i).to_vec()))
        .collect();
    Simulation::new(processes, DelayModel::synchronous(), seed)
}

/// 64 broadcasts arriving 5 ms apart — with ~150 ms completion per broadcast, roughly
/// 30 are concurrently in flight at steady state.
fn bench_open_loop(c: &mut Criterion) {
    let spec = WorkloadSpec::constant_rate(5_000, BROADCASTS).with_payload_bytes(256);
    let schedule = spec.schedule(N, 1);
    c.bench_function("workload_open_loop_n30_64bc", |b| {
        b.iter_with_setup(
            || simulation(1),
            |mut sim| {
                run_workload(&mut sim, &schedule, LoopMode::Open);
                let correct = sim.correct_processes();
                let stats = workload_stats(sim.metrics(), &correct);
                assert_eq!(stats.completed, BROADCASTS as usize);
                black_box(stats.throughput_per_sec())
            },
        )
    });
}

/// The same 64 broadcasts arriving all at once, gated by a width-16 window: stresses the
/// admission loop and the per-batch completion scan.
fn bench_closed_loop(c: &mut Criterion) {
    let spec = WorkloadSpec::constant_rate(0, BROADCASTS)
        .with_payload_bytes(256)
        .closed_loop(16);
    let schedule = spec.schedule(N, 1);
    c.bench_function("workload_closed_loop_n30_64bc_w16", |b| {
        b.iter_with_setup(
            || simulation(1),
            |mut sim| {
                run_workload(&mut sim, &schedule, spec.mode);
                let correct = sim.correct_processes();
                let stats = workload_stats(sim.metrics(), &correct);
                assert_eq!(stats.completed, BROADCASTS as usize);
                black_box(stats.p99_ms())
            },
        )
    });
}

fn benches(c: &mut Criterion) {
    bench_open_loop(c);
    bench_closed_loop(c);
}

criterion_group! {
    name = workload_benches;
    config = Criterion::default().sample_size(50);
    targets = benches
}
criterion_main!(workload_benches);
