//! Offline stand-in for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! The build environment of this repository has no access to crates.io, so the handful of
//! external crates the workspace depends on are vendored as small, self-contained
//! re-implementations of exactly the API subset the workspace uses. This crate covers
//! contiguous byte buffers: [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits
//! with big-endian integer accessors.
//!
//! [`Bytes`] is an *offset view* over a shared allocation: [`Bytes::slice`] returns a
//! sub-range that shares the same backing storage, so splitting a batch of frames out of
//! one buffer costs no copies — the property the workspace's buffer-pool hot path is
//! built on. Equality, ordering and hashing are all over the *visible* byte range.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer: a `(start, end)` view into a shared
/// allocation. Cloning and [`Bytes::slice`] are O(1) and never copy the bytes.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copies the slice into an owned buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Length of the visible range in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the visible range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the visible range into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Returns a view of the sub-range `range` (indices relative to this view) sharing
    /// the same backing allocation — no bytes are copied.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            begin <= end && end <= len,
            "slice {begin}..{end} out of bounds for Bytes of length {len}"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::copy_from_slice(data)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

/// A growable byte buffer that can be frozen into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with at least the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length of the buffer in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.data.as_slice()
    }
}

/// Read access to a byte cursor, big-endian integer accessors included.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer, big-endian integer writers included.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u16(513);
        buf.put_u32(70_000);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 9);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16(), 513);
        assert_eq!(cursor.get_u32(), 70_000);
        assert_eq!(cursor.chunk(), b"xy");
    }

    #[test]
    fn bytes_clone_shares_data() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &c[..]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn slice_is_a_zero_copy_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(&mid[..], &[2, 3, 4]);
        assert_eq!(mid.len(), 3);
        // A slice of a slice composes offsets relative to the view.
        let inner = mid.slice(1..);
        assert_eq!(&inner[..], &[3, 4]);
        // Equality, ordering and hashing follow the visible range, not the allocation.
        assert_eq!(inner, Bytes::from(vec![3, 4]));
        assert!(mid < inner);
        let empty = b.slice(6..6);
        assert!(empty.is_empty());
        assert_eq!(empty, Bytes::new());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_past_the_end_panics() {
        Bytes::from(vec![1, 2, 3]).slice(1..7);
    }
}
