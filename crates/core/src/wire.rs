//! Wire format of the Bracha–Dolev protocol combination.
//!
//! The paper's evaluation measures *network consumption* as the number of bytes put on the
//! links, computed from the message-field sizes of Table 3:
//!
//! | field            | description                                   | size |
//! |------------------|-----------------------------------------------|------|
//! | `mtype`          | message type                                  | 1 B  |
//! | `s`              | ID of the source process                      | 4 B  |
//! | `bid`            | message (broadcast) ID                        | 4 B  |
//! | `localPayloadID` | local ID for the payload (MBD.1)              | 4 B  |
//! | `payloadSize`    | payload size                                  | 4 B  |
//! | `payload`        | payload data                                  | variable |
//! | `erId1`          | Echo/Ready sender ID                          | 4 B  |
//! | `erId2`          | embedded Echo/Ready sender ID (merged types)  | 4 B  |
//! | `pathLen`        | path length                                   | 2 B  |
//! | `path`           | list of process IDs                           | 4 B per ID |
//!
//! [`WireMessage::wire_size`] reproduces exactly this accounting, taking into account which
//! optional fields are present (modifications MBD.1 and MBD.5 elide fields). The crate also
//! provides a real binary encoding ([`WireMessage::encode`] / [`WireMessage::decode`]) used
//! by the threaded runtime; the binary encoding adds one presence-bitmask byte per message
//! so that decoding is unambiguous, which is excluded from the Table 3 accounting.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

use crate::types::{BroadcastId, LocalPayloadId, Payload, ProcessId};

/// Size in bytes of the `mtype` field.
pub const FIELD_MTYPE: usize = 1;
/// Size in bytes of a process identifier on the wire (`s`, `erId1`, `erId2`, path entries).
pub const FIELD_PROCESS_ID: usize = 4;
/// Size in bytes of the broadcast sequence number `bid`.
pub const FIELD_BID: usize = 4;
/// Size in bytes of the local payload identifier (MBD.1).
pub const FIELD_LOCAL_PAYLOAD_ID: usize = 4;
/// Size in bytes of the `payloadSize` field.
pub const FIELD_PAYLOAD_SIZE: usize = 4;
/// Size in bytes of the `pathLen` field.
pub const FIELD_PATH_LEN: usize = 2;

/// Message types exchanged by the Bracha–Dolev combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MessageKind {
    /// Bracha SEND message (phase 1).
    Send,
    /// Bracha ECHO message (phase 2).
    Echo,
    /// Bracha READY message (phase 3).
    Ready,
    /// Merged message carrying a relayed Echo and the sender's own Echo (MBD.3).
    EchoEcho,
    /// Merged message carrying the sender's own Ready and a relayed Echo (MBD.4).
    ReadyEcho,
}

impl MessageKind {
    /// All message kinds, in wire-tag order.
    pub const ALL: [MessageKind; 5] = [
        MessageKind::Send,
        MessageKind::Echo,
        MessageKind::Ready,
        MessageKind::EchoEcho,
        MessageKind::ReadyEcho,
    ];

    fn tag(self) -> u8 {
        match self {
            MessageKind::Send => 0,
            MessageKind::Echo => 1,
            MessageKind::Ready => 2,
            MessageKind::EchoEcho => 3,
            MessageKind::ReadyEcho => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        Self::ALL.get(tag as usize).copied()
    }
}

/// How the payload data is referenced by a message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PayloadRef {
    /// The full payload data is carried inline (`payloadSize` + `payload` fields).
    Inline(Payload),
    /// The payload is carried inline *and* the sender announces the link-local identifier
    /// it will use for it in subsequent messages (MBD.1 first transmission on a link).
    Announce {
        /// Link-local identifier chosen by the sender.
        local_id: LocalPayloadId,
        /// Full payload data.
        payload: Payload,
    },
    /// Only the sender's link-local identifier is carried (MBD.1 subsequent transmissions);
    /// the receiver resolves it against the sender's earlier announcement.
    Local(LocalPayloadId),
}

impl PayloadRef {
    /// The inline payload, if this reference carries one.
    pub fn payload(&self) -> Option<&Payload> {
        match self {
            PayloadRef::Inline(p) => Some(p),
            PayloadRef::Announce { payload, .. } => Some(payload),
            PayloadRef::Local(_) => None,
        }
    }

    /// The link-local identifier, if this reference carries one.
    pub fn local_id(&self) -> Option<LocalPayloadId> {
        match self {
            PayloadRef::Inline(_) => None,
            PayloadRef::Announce { local_id, .. } => Some(*local_id),
            PayloadRef::Local(id) => Some(*id),
        }
    }
}

/// Which optional header fields are physically present on the wire.
///
/// The protocol engine fills this in when creating a message, according to the enabled
/// modifications (MBD.5 elides the source ID of single-hop Send messages and the sender
/// field of newly created Echo/Ready messages; MBD.1 elides `s`/`bid` when a local payload
/// ID is used).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldPresence {
    /// Whether the source process ID `s` is carried.
    pub source: bool,
    /// Whether the broadcast sequence number `bid` is carried.
    pub bid: bool,
    /// Whether the Echo/Ready originator `erId1` is carried.
    pub originator: bool,
    /// Whether a `pathLen`/`path` field is carried (single-hop Send messages have none).
    pub path: bool,
}

impl FieldPresence {
    /// Every optional field present (the format of the unmodified protocol combination).
    pub fn full() -> Self {
        Self {
            source: true,
            bid: true,
            originator: true,
            path: true,
        }
    }
}

impl Default for FieldPresence {
    fn default() -> Self {
        Self::full()
    }
}

/// A message as put on an authenticated link by the Bracha–Dolev protocol combination.
///
/// The struct always carries the full logical information (so that the protocol logic never
/// depends on which fields were elided); [`FieldPresence`] records which fields are counted
/// by [`WireMessage::wire_size`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireMessage {
    /// Message type.
    pub kind: MessageKind,
    /// Broadcast identifier `(s, bid)` the message refers to.
    pub id: BroadcastId,
    /// Creator of the Echo/Ready (`erId1`). For Send messages this equals the source.
    pub originator: ProcessId,
    /// Embedded second originator (`erId2`), used by Echo_Echo and Ready_Echo messages.
    pub originator2: Option<ProcessId>,
    /// Payload reference.
    pub payload: PayloadRef,
    /// Dissemination path: labels of the processes traversed so far (excluding the current
    /// sender, which the receiver learns from the authenticated channel).
    pub path: Vec<ProcessId>,
    /// Which optional fields are physically present.
    pub fields: FieldPresence,
}

impl WireMessage {
    /// Number of bytes this message occupies on the wire, following Table 3 of the paper
    /// and the field-elision rules of MBD.1/MBD.5.
    pub fn wire_size(&self) -> usize {
        let mut size = FIELD_MTYPE;
        if self.fields.source {
            size += FIELD_PROCESS_ID;
        }
        if self.fields.bid {
            size += FIELD_BID;
        }
        if self.fields.originator {
            size += FIELD_PROCESS_ID;
        }
        if self.originator2.is_some() {
            size += FIELD_PROCESS_ID;
        }
        size += match &self.payload {
            PayloadRef::Inline(p) => FIELD_PAYLOAD_SIZE + p.len(),
            PayloadRef::Announce { payload, .. } => {
                FIELD_LOCAL_PAYLOAD_ID + FIELD_PAYLOAD_SIZE + payload.len()
            }
            PayloadRef::Local(_) => FIELD_LOCAL_PAYLOAD_ID,
        };
        if self.fields.path {
            size += FIELD_PATH_LEN + FIELD_PROCESS_ID * self.path.len();
        }
        size
    }

    /// Encodes the message into a binary frame (used by the threaded runtime).
    ///
    /// The frame layout is: tag byte, presence bitmask byte, then the present fields in
    /// Table 3 order, all integers big-endian.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_size() + 2);
        self.encode_into(&mut buf);
        buf.freeze()
    }

    /// Appends the frame encoding of [`WireMessage::encode`] to an existing buffer —
    /// the arena-backed path, staging a whole burst of frames in one allocation.
    pub fn encode_into(&self, buf: &mut impl BufMut) {
        buf.put_u8(self.kind.tag());
        let mut mask = 0u8;
        if self.fields.source {
            mask |= 1;
        }
        if self.fields.bid {
            mask |= 1 << 1;
        }
        if self.fields.originator {
            mask |= 1 << 2;
        }
        if self.originator2.is_some() {
            mask |= 1 << 3;
        }
        if self.fields.path {
            mask |= 1 << 4;
        }
        match &self.payload {
            PayloadRef::Inline(_) => mask |= 1 << 5,
            PayloadRef::Announce { .. } => mask |= 1 << 6,
            PayloadRef::Local(_) => mask |= 1 << 7,
        }
        buf.put_u8(mask);
        // The logical identifiers are always encoded so that decoding does not need any
        // out-of-band context; `wire_size` (not the encoded length) is what the experiment
        // harness accounts.
        buf.put_u32(self.id.source as u32);
        buf.put_u32(self.id.seq);
        buf.put_u32(self.originator as u32);
        buf.put_u32(self.originator2.map(|p| p as u32).unwrap_or(u32::MAX));
        match &self.payload {
            PayloadRef::Inline(p) => {
                buf.put_u32(0);
                buf.put_u32(p.len() as u32);
                buf.put_slice(p.as_bytes());
            }
            PayloadRef::Announce { local_id, payload } => {
                buf.put_u32(*local_id);
                buf.put_u32(payload.len() as u32);
                buf.put_slice(payload.as_bytes());
            }
            PayloadRef::Local(id) => {
                buf.put_u32(*id);
                buf.put_u32(0);
            }
        }
        buf.put_u16(self.path.len() as u16);
        for &p in &self.path {
            buf.put_u32(p as u32);
        }
    }

    /// Decodes a frame produced by [`WireMessage::encode`].
    ///
    /// Returns `None` if the frame is malformed.
    pub fn decode(mut frame: &[u8]) -> Option<Self> {
        if frame.remaining() < 2 {
            return None;
        }
        let kind = MessageKind::from_tag(frame.get_u8())?;
        let mask = frame.get_u8();
        if frame.remaining() < 4 * 4 + 4 + 4 {
            return None;
        }
        let source = frame.get_u32() as ProcessId;
        let seq = frame.get_u32();
        let originator = frame.get_u32() as ProcessId;
        let originator2_raw = frame.get_u32();
        let local_id = frame.get_u32();
        let payload_len = frame.get_u32() as usize;
        if frame.remaining() < payload_len {
            return None;
        }
        let payload_bytes = frame[..payload_len].to_vec();
        frame.advance(payload_len);
        if frame.remaining() < 2 {
            return None;
        }
        let path_len = frame.get_u16() as usize;
        if frame.remaining() < 4 * path_len {
            return None;
        }
        let mut path = Vec::with_capacity(path_len);
        for _ in 0..path_len {
            path.push(frame.get_u32() as ProcessId);
        }
        let payload = if mask & (1 << 5) != 0 {
            PayloadRef::Inline(Payload::new(payload_bytes))
        } else if mask & (1 << 6) != 0 {
            PayloadRef::Announce {
                local_id,
                payload: Payload::new(payload_bytes),
            }
        } else if mask & (1 << 7) != 0 {
            PayloadRef::Local(local_id)
        } else {
            return None;
        };
        Some(WireMessage {
            kind,
            id: BroadcastId::new(source, seq),
            originator,
            originator2: if mask & (1 << 3) != 0 {
                Some(originator2_raw as ProcessId)
            } else {
                None
            },
            payload,
            path,
            fields: FieldPresence {
                source: mask & 1 != 0,
                bid: mask & (1 << 1) != 0,
                originator: mask & (1 << 2) != 0,
                path: mask & (1 << 4) != 0,
            },
        })
    }
}

/// Coalesces a burst of encoded frames into one length-prefixed batch buffer.
///
/// Layout: `count: u32`, then per frame `len: u32` followed by the frame bytes, all
/// big-endian. One allocation for the whole batch; [`split_batch`] recovers the
/// individual frames as zero-copy [`Bytes::slice`] views of the batch buffer.
///
/// An empty slice encodes to the 4-byte `count = 0` batch, and a single-frame batch is
/// a valid (if pointless) degenerate case — both round-trip through [`split_batch`].
pub fn encode_batch(frames: &[Bytes]) -> Bytes {
    let total = 4 + frames
        .iter()
        .map(|frame| 4 + frame.len())
        .sum::<usize>();
    let mut buf = Vec::with_capacity(total);
    buf.put_u32(frames.len() as u32);
    for frame in frames {
        buf.put_u32(frame.len() as u32);
        buf.put_slice(frame);
    }
    Bytes::from(buf)
}

/// Splits a batch buffer produced by [`encode_batch`] back into its frames.
///
/// Each returned frame is a zero-copy view sharing the batch's allocation. Returns
/// `None` on any framing violation: a truncated header, a frame length running past the
/// end of the buffer, or trailing bytes after the last frame.
pub fn split_batch(batch: &Bytes) -> Option<Vec<Bytes>> {
    let mut cursor: &[u8] = batch;
    if cursor.remaining() < 4 {
        return None;
    }
    let count = cursor.get_u32() as usize;
    let mut frames = Vec::with_capacity(count.min(1024));
    let mut offset = 4usize;
    for _ in 0..count {
        if cursor.remaining() < 4 {
            return None;
        }
        let len = cursor.get_u32() as usize;
        offset += 4;
        if cursor.remaining() < len {
            return None;
        }
        frames.push(batch.slice(offset..offset + len));
        cursor.advance(len);
        offset += len;
    }
    if cursor.remaining() != 0 {
        return None;
    }
    Some(frames)
}

/// A burst-granularity frame arena: the buffer-pool discipline of the steady-state
/// encode path.
///
/// Protocol engines produce *bursts* of outbound frames (one engine step emits many
/// sends). Instead of allocating one `Vec` per frame, callers write every frame of a
/// burst into the arena's single staging buffer ([`WireArena::push_with`]) and then
/// [`WireArena::seal`] the burst: the staging buffer is frozen into one shared [`Bytes`]
/// allocation and each frame comes back as a zero-copy slice of it. Per frame the steady
/// state allocates nothing; per burst it allocates once.
#[derive(Debug, Default)]
pub struct WireArena {
    staging: Vec<u8>,
    marks: Vec<usize>,
}

impl WireArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one frame to the current burst: `write` receives the staging buffer and
    /// appends the frame's encoding to it. Returns the frame's index within the burst.
    pub fn push_with(&mut self, write: impl FnOnce(&mut Vec<u8>)) -> usize {
        self.marks.push(self.staging.len());
        write(&mut self.staging);
        self.marks.len() - 1
    }

    /// Number of frames staged in the current burst.
    pub fn frames(&self) -> usize {
        self.marks.len()
    }

    /// Freezes the current burst into one shared allocation and returns the staged
    /// frames as zero-copy views of it, in push order. The arena is left empty, ready
    /// for the next burst.
    pub fn seal(&mut self) -> Vec<Bytes> {
        let data = Bytes::from(std::mem::take(&mut self.staging));
        let mut frames = Vec::with_capacity(self.marks.len());
        for (i, &start) in self.marks.iter().enumerate() {
            let end = self
                .marks
                .get(i + 1)
                .copied()
                .unwrap_or_else(|| data.len());
            frames.push(data.slice(start..end));
        }
        self.marks.clear();
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_message() -> WireMessage {
        WireMessage {
            kind: MessageKind::Echo,
            id: BroadcastId::new(3, 7),
            originator: 5,
            originator2: None,
            payload: PayloadRef::Inline(Payload::filled(1, 16)),
            path: vec![2, 9],
            fields: FieldPresence::full(),
        }
    }

    #[test]
    fn wire_size_matches_table3_for_full_echo() {
        // mtype(1) + s(4) + bid(4) + erId1(4) + payloadSize(4) + payload(16)
        //   + pathLen(2) + path(2 * 4) = 43.
        assert_eq!(sample_message().wire_size(), 43);
    }

    #[test]
    fn wire_size_of_paper_example_send() {
        // Without MBD.1, Send messages are [SEND, bid, payloadSize, payload] under MBD.5
        // (no source, no path, no originator): 1 + 4 + 4 + 1024 = 1033.
        let m = WireMessage {
            kind: MessageKind::Send,
            id: BroadcastId::new(0, 1),
            originator: 0,
            originator2: None,
            payload: PayloadRef::Inline(Payload::filled(0, 1024)),
            path: vec![],
            fields: FieldPresence {
                source: false,
                bid: true,
                originator: false,
                path: false,
            },
        };
        assert_eq!(m.wire_size(), 1033);
    }

    #[test]
    fn wire_size_with_local_id_only() {
        // [ECHO, erId1, localId, path of 3] = 1 + 4 + 4 + 2 + 12 = 23.
        let m = WireMessage {
            kind: MessageKind::Echo,
            id: BroadcastId::new(0, 1),
            originator: 4,
            originator2: None,
            payload: PayloadRef::Local(17),
            path: vec![1, 2, 3],
            fields: FieldPresence {
                source: false,
                bid: false,
                originator: true,
                path: true,
            },
        };
        assert_eq!(m.wire_size(), 23);
    }

    #[test]
    fn wire_size_of_announce_includes_local_id_and_payload() {
        let m = WireMessage {
            payload: PayloadRef::Announce {
                local_id: 9,
                payload: Payload::filled(0, 16),
            },
            ..sample_message()
        };
        // 43 + localPayloadID(4) = 47.
        assert_eq!(m.wire_size(), 47);
    }

    #[test]
    fn wire_size_of_merged_message_counts_both_er_ids() {
        let m = WireMessage {
            kind: MessageKind::ReadyEcho,
            originator2: Some(8),
            ..sample_message()
        };
        assert_eq!(m.wire_size(), 47);
    }

    #[test]
    fn encode_decode_roundtrip_inline() {
        let m = sample_message();
        let decoded = WireMessage::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn encode_decode_roundtrip_all_kinds_and_payload_refs() {
        for kind in MessageKind::ALL {
            for payload in [
                PayloadRef::Inline(Payload::from("abc")),
                PayloadRef::Announce {
                    local_id: 3,
                    payload: Payload::from("xyz"),
                },
                PayloadRef::Local(12),
            ] {
                let m = WireMessage {
                    kind,
                    id: BroadcastId::new(1, 2),
                    originator: 6,
                    originator2: if kind == MessageKind::EchoEcho {
                        Some(7)
                    } else {
                        None
                    },
                    payload: payload.clone(),
                    path: vec![0, 3, 4],
                    fields: FieldPresence {
                        source: true,
                        bid: false,
                        originator: true,
                        path: true,
                    },
                };
                let decoded = WireMessage::decode(&m.encode()).unwrap();
                assert_eq!(decoded, m);
            }
        }
    }

    #[test]
    fn decode_rejects_truncated_frames() {
        let m = sample_message();
        let frame = m.encode();
        for cut in [0, 1, 5, frame.len() - 1] {
            assert!(WireMessage::decode(&frame[..cut]).is_none(), "cut at {cut}");
        }
        assert!(WireMessage::decode(&[]).is_none());
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        let mut frame = sample_message().encode().to_vec();
        frame[0] = 99;
        assert!(WireMessage::decode(&frame).is_none());
    }

    #[test]
    fn payload_ref_accessors() {
        let p = Payload::from("zz");
        assert_eq!(PayloadRef::Inline(p.clone()).payload(), Some(&p));
        assert_eq!(PayloadRef::Inline(p.clone()).local_id(), None);
        assert_eq!(
            PayloadRef::Announce {
                local_id: 4,
                payload: p.clone()
            }
            .local_id(),
            Some(4)
        );
        assert_eq!(PayloadRef::Local(8).payload(), None);
        assert_eq!(PayloadRef::Local(8).local_id(), Some(8));
    }

    #[test]
    fn message_kind_tags_roundtrip() {
        for kind in MessageKind::ALL {
            assert_eq!(MessageKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(MessageKind::from_tag(200), None);
    }

    #[test]
    fn batch_roundtrips_including_empty_and_single() {
        for frames in [
            vec![],
            vec![Bytes::from_static(b"only")],
            vec![
                Bytes::from_static(b""),
                Bytes::from_static(b"a"),
                Bytes::from_static(b"frame-two"),
            ],
        ] {
            let batch = encode_batch(&frames);
            let split = split_batch(&batch).expect("well-formed batch splits");
            assert_eq!(split, frames);
        }
    }

    #[test]
    fn split_batch_rejects_truncation_and_trailing_bytes() {
        let frames = vec![Bytes::from_static(b"abc"), Bytes::from_static(b"defg")];
        let batch = encode_batch(&frames);
        for cut in 0..batch.len() {
            assert!(
                split_batch(&batch.slice(..cut)).is_none(),
                "truncation at {cut} must be rejected"
            );
        }
        let mut extended = batch.to_vec();
        extended.push(0);
        assert!(split_batch(&Bytes::from(extended)).is_none());
    }

    #[test]
    fn arena_seals_bursts_into_zero_copy_slices() {
        let mut arena = WireArena::new();
        assert_eq!(arena.frames(), 0);
        arena.push_with(|buf| buf.put_slice(b"first"));
        arena.push_with(|_| {});
        arena.push_with(|buf| buf.put_slice(b"third"));
        assert_eq!(arena.frames(), 3);
        let frames = arena.seal();
        assert_eq!(frames.len(), 3);
        assert_eq!(&frames[0][..], b"first");
        assert!(frames[1].is_empty());
        assert_eq!(&frames[2][..], b"third");
        // The arena resets for the next burst.
        assert_eq!(arena.frames(), 0);
        arena.push_with(|buf| buf.put_slice(b"next"));
        assert_eq!(&arena.seal()[0][..], b"next");
    }

    #[test]
    fn arena_frames_batch_and_split_back() {
        let mut arena = WireArena::new();
        let encoded = sample_message().encode();
        arena.push_with(|buf| buf.put_slice(&encoded));
        arena.push_with(|buf| buf.put_slice(&encoded));
        let frames = arena.seal();
        let batch = encode_batch(&frames);
        for frame in split_batch(&batch).unwrap() {
            assert_eq!(WireMessage::decode(&frame).unwrap(), sample_message());
        }
    }
}
