//! TCP socket deployment of Byzantine reliable broadcast on partially connected networks.
//!
//! The evaluation of *Practical Byzantine Reliable Broadcast on Partially Connected
//! Networks* (ICDCS 2021) runs its C++ implementation with one node per Docker container
//! on a single desktop, connected by TCP sockets that act as the authenticated channels of
//! the system model (Sec. 7.1). This crate is the corresponding deployment back end of the
//! Rust reproduction: one protocol thread per process inside a single OS process, and one
//! real TCP connection over the loopback interface per edge of the communication graph.
//!
//! The deployment is **stack-generic** and **transport-generic**: [`TcpDeployment::start`]
//! takes a [`brb_core::stack::StackSpec`] and spawns one shared
//! [`brb_transport::NodeDriver`] per process over a [`deployment::TcpTransport`] — the
//! exact event loop the channel runtime (`brb-runtime`) spawns over crossbeam links — so
//! every protocol stack of `brb-core` runs over real sockets with the same engines, wire
//! formats, byte accounting, Byzantine fault decorators and wall-clock delay models used
//! by the other backends (configure them through [`brb_transport::DriverOptions`]).
//!
//! * [`frame`] — length-prefixed framing and the connection handshake;
//! * [`endpoint`] — listener/connection establishment and per-link reader threads;
//! * [`deployment`] — the [`TcpDeployment`] driver and the [`run_tcp_broadcast`]
//!   convenience wrapper.
//!
//! # Example
//!
//! ```no_run
//! use std::time::Duration;
//! use brb_core::{config::Config, stack::StackSpec, types::Payload};
//! use brb_graph::generate;
//! use brb_net::run_tcp_broadcast;
//!
//! # fn main() -> std::io::Result<()> {
//! let graph = generate::figure1_example();
//! let report = run_tcp_broadcast(
//!     &graph,
//!     Config::bdopt_mbd1(10, 1),
//!     StackSpec::Bd,
//!     Payload::from("over real sockets"),
//!     0,
//!     &[],
//!     Duration::from_secs(10),
//! )?;
//! assert!(report.all_delivered(&(0..10).collect::<Vec<_>>(), 1));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod endpoint;
pub mod frame;

pub use brb_transport::DriverOptions;
pub use deployment::{
    run_tcp_broadcast, run_tcp_consensus, run_tcp_workload, TcpDeployment, TcpTransport,
};
pub use endpoint::{bind_endpoints, connect_mesh, Endpoint, NodeLinks};
