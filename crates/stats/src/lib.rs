//! Summary statistics for the PBRB experiment harnesses.
//!
//! The paper reports, for every modification MBD.1–12, the distribution of its relative
//! impact on broadcast latency and on the number of bits transmitted (Figs. 7–10 show
//! box plots with the 95% interval, the quartiles and the median; Table 1 shows observed
//! ranges). This crate provides the small statistics toolbox those reports need:
//!
//! * [`Summary`] — mean / min / max / count over a sample;
//! * [`Accumulator`] — a streaming, mergeable counterpart of [`Summary`] used by the
//!   parallel sweep engine to aggregate partial results;
//! * [`FiveNumber`] — the box-plot row used in Figs. 7–10 (2.5th percentile, first
//!   quartile, median, third quartile, 97.5th percentile);
//! * [`LogHistogram`] — a mergeable log-bucketed histogram with `p50`/`p90`/`p99`
//!   quantiles, used by the workload engine to aggregate per-broadcast delivery
//!   latencies across sweep workers (its merge is associative and exact, so parallel
//!   aggregation is bit-identical to serial);
//! * [`relative_variation`] — the `(new - baseline) / baseline` percentage used throughout
//!   Table 1 and Figs. 6–10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Basic summary of a sample: count, mean, min, max and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Minimum value (0 for an empty sample).
    pub min: f64,
    /// Maximum value (0 for an empty sample).
    pub max: f64,
    /// Population standard deviation (0 for an empty sample).
    pub std_dev: f64,
}

impl Summary {
    /// Computes the summary of a sample.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                std_dev: 0.0,
            };
        }
        let count = values.len();
        let mean = values.iter().sum::<f64>() / count as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / count as f64;
        Self {
            count,
            mean,
            min,
            max,
            std_dev: var.sqrt(),
        }
    }
}

/// A streaming, mergeable summary accumulator (Welford / Chan parallel moments).
///
/// The parallel sweep engine (`brb-sim::sweep`) aggregates partial results per chunk and
/// merges the partials in a deterministic order; `Accumulator` is the merge-friendly
/// counterpart of [`Summary`]: it carries count, mean, the centered second moment, min and
/// max, and two accumulators can be [`Accumulator::merge`]d without revisiting samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Accumulator {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Accumulator {
    fn default() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Accumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in (Welford's online update).
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator in (Chan et al.'s parallel combination).
    ///
    /// Merging is exact on counts/min/max and numerically stable on mean/variance; the
    /// result depends on the merge *order* only through floating-point rounding, which is
    /// why the sweep engine always merges partials in a canonical order.
    pub fn merge(&mut self, other: &Accumulator) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Minimum observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population standard deviation (0 when empty).
    pub fn std_dev(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0).sqrt()
        }
    }

    /// Converts into the plain [`Summary`] report.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            min: self.min(),
            max: self.max(),
            std_dev: self.std_dev(),
        }
    }
}

/// Number of sub-buckets per power of two in a [`LogHistogram`]: 16, bounding the
/// relative quantization error at `1/16` (6.25%) while keeping the whole `u64` range in
/// under a thousand buckets.
const HISTOGRAM_SUB_BUCKET_BITS: u32 = 4;

/// A mergeable histogram over `u64` observations with log-linear buckets.
///
/// Values below 16 get exact unit buckets; above, each power of two is split into 16
/// linear sub-buckets, so any recorded value is attributed to a bucket whose bounds are
/// within 6.25% of it. This is the latency-distribution container of the workload
/// engine: per-run histograms of microsecond delivery latencies are merged across sweep
/// points (and sweep workers) and queried for `p50`/`p90`/`p99`.
///
/// Merging adds bucket counts element-wise, which makes it **exact, associative and
/// commutative** — the property the parallel sweep aggregation relies on: folding any
/// partition of the observations in any grouping yields byte-identical histograms.
/// (`tests/histogram_properties.rs` pins this with a proptest suite.)
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct LogHistogram {
    /// `counts[i]` is the number of observations in bucket `i`; trailing zero buckets are
    /// never stored, so equal distributions compare equal structurally.
    counts: Vec<u64>,
    /// Total number of observations (the sum of `counts`).
    total: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of a value.
    fn bucket_index(value: u64) -> usize {
        let sub_buckets = 1u64 << HISTOGRAM_SUB_BUCKET_BITS; // 16
        if value < sub_buckets {
            return value as usize;
        }
        let exponent = 63 - u64::from(value.leading_zeros());
        let shift = exponent - u64::from(HISTOGRAM_SUB_BUCKET_BITS);
        let sub = (value >> shift) - sub_buckets;
        ((exponent - u64::from(HISTOGRAM_SUB_BUCKET_BITS) + 1) * sub_buckets + sub) as usize
    }

    /// Inclusive lower bound of bucket `index` (the smallest value mapped to it).
    fn bucket_low(index: usize) -> u64 {
        let sub_buckets = 1usize << HISTOGRAM_SUB_BUCKET_BITS;
        if index < sub_buckets {
            return index as u64;
        }
        let block = index / sub_buckets; // >= 1
        let sub = (index % sub_buckets) as u64;
        (sub_buckets as u64 + sub) << (block - 1)
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `count` identical observations.
    pub fn record_n(&mut self, value: u64, count: u64) {
        if count == 0 {
            return;
        }
        let index = Self::bucket_index(value);
        if self.counts.len() <= index {
            self.counts.resize(index + 1, 0);
        }
        self.counts[index] += count;
        self.total += count;
    }

    /// Merges another histogram in by element-wise bucket addition (exact, associative,
    /// commutative).
    pub fn merge(&mut self, other: &LogHistogram) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The value at quantile `q` in `[0, 1]`: the lower bound of the bucket holding the
    /// `ceil(q * count)`-th smallest observation (so `quantile(0.5)` of a single
    /// observation returns that observation's bucket). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= target {
                return Some(Self::bucket_low(index));
            }
        }
        // Unreachable while `total` equals the sum of `counts`; be defensive anyway.
        Some(Self::bucket_low(self.counts.len().saturating_sub(1)))
    }

    /// Median (50th percentile) bucket bound.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th percentile bucket bound.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th percentile bucket bound.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Largest non-empty bucket's lower bound (an upper-tail witness). `None` when empty.
    pub fn max_bucket_low(&self) -> Option<u64> {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(Self::bucket_low)
    }
}

/// The five numbers reported by the paper's box plots (Figs. 7–10): the 95% interval
/// bounds, the quartiles, and the median.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// 2.5th percentile (lower bound of the 95% interval).
    pub p2_5: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// 97.5th percentile (upper bound of the 95% interval).
    pub p97_5: f64,
}

impl FiveNumber {
    /// Computes the five-number summary of a sample.
    ///
    /// Returns `None` for an empty sample.
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
        Some(Self {
            p2_5: percentile_sorted(&sorted, 2.5),
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q3: percentile_sorted(&sorted, 75.0),
            p97_5: percentile_sorted(&sorted, 97.5),
        })
    }

    /// Formats the five numbers in the bracketed style used on the side of Figs. 7–10,
    /// e.g. `[-51 -34 -29 -22 -6]`.
    pub fn to_bracket_string(&self) -> String {
        format!(
            "[{:.1} {:.1} {:.1} {:.1} {:.1}]",
            self.p2_5, self.q1, self.median, self.q3, self.p97_5
        )
    }
}

/// Linear-interpolation percentile of an **already sorted** sample; `pct` in `[0, 100]`.
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let pct = pct.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Percentile of an unsorted sample (sorts a copy).
///
/// # Panics
///
/// Panics if the sample is empty or contains NaN.
pub fn percentile(values: &[f64], pct: f64) -> f64 {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    percentile_sorted(&sorted, pct)
}

/// Median of a sample.
///
/// # Panics
///
/// Panics if the sample is empty.
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Arithmetic mean, or 0 for an empty sample.
pub fn mean(values: &[f64]) -> f64 {
    Summary::of(values).mean
}

/// Relative variation `(value - baseline) / baseline`, expressed in percent — the quantity
/// Table 1 and Figs. 6–10 report ("Lat. var. %", "# bits var.").
///
/// Returns 0 when the baseline is 0 and the value is also 0, and `f64::INFINITY` /
/// `f64::NEG_INFINITY` when only the baseline is 0.
pub fn relative_variation(baseline: f64, value: f64) -> f64 {
    if baseline == 0.0 {
        if value == 0.0 {
            0.0
        } else if value > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        (value - baseline) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_sample_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn summary_of_constant_sample() {
        let s = Summary::of(&[4.0, 4.0, 4.0]);
        assert_eq!(s.mean, 4.0);
        assert_eq!(s.min, 4.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn summary_mean_and_bounds() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn five_number_of_empty_is_none() {
        assert!(FiveNumber::of(&[]).is_none());
    }

    #[test]
    fn five_number_of_uniform_ramp() {
        let values: Vec<f64> = (0..=100).map(|v| v as f64).collect();
        let f = FiveNumber::of(&values).unwrap();
        assert!((f.median - 50.0).abs() < 1e-9);
        assert!((f.q1 - 25.0).abs() < 1e-9);
        assert!((f.q3 - 75.0).abs() < 1e-9);
        assert!((f.p2_5 - 2.5).abs() < 1e-9);
        assert!((f.p97_5 - 97.5).abs() < 1e-9);
    }

    #[test]
    fn five_number_bracket_string_format() {
        let f = FiveNumber::of(&[1.0, 2.0, 3.0]).unwrap();
        let s = f.to_bracket_string();
        assert!(s.starts_with('['));
        assert!(s.ends_with(']'));
        assert_eq!(s.split_whitespace().count(), 5);
    }

    #[test]
    fn percentile_of_singleton() {
        assert_eq!(percentile(&[7.0], 90.0), 7.0);
    }

    #[test]
    fn percentile_interpolates() {
        assert!((percentile(&[0.0, 10.0], 50.0) - 5.0).abs() < 1e-12);
        assert!((percentile(&[0.0, 10.0], 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        assert_eq!(percentile(&[1.0, 2.0, 3.0], -5.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 150.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_of_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert!((median(&[1.0, 2.0, 3.0, 4.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn relative_variation_basic() {
        assert!((relative_variation(100.0, 50.0) + 50.0).abs() < 1e-12);
        assert!((relative_variation(100.0, 197.0) - 97.0).abs() < 1e-12);
        assert_eq!(relative_variation(0.0, 0.0), 0.0);
        assert_eq!(relative_variation(0.0, 1.0), f64::INFINITY);
        assert_eq!(relative_variation(0.0, -1.0), f64::NEG_INFINITY);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn accumulator_matches_bulk_summary() {
        let values = [3.0, 1.5, 4.25, -2.0, 9.0, 0.0, 7.5];
        let mut acc = Accumulator::new();
        for &v in &values {
            acc.push(v);
        }
        let bulk = Summary::of(&values);
        let streamed = acc.summary();
        assert_eq!(streamed.count, bulk.count);
        assert!((streamed.mean - bulk.mean).abs() < 1e-12);
        assert_eq!(streamed.min, bulk.min);
        assert_eq!(streamed.max, bulk.max);
        assert!((streamed.std_dev - bulk.std_dev).abs() < 1e-12);
    }

    #[test]
    fn accumulator_merge_matches_single_pass() {
        let values: Vec<f64> = (0..40).map(|i| (i as f64) * 1.37 - 11.0).collect();
        let mut whole = Accumulator::new();
        for &v in &values {
            whole.push(v);
        }
        let mut merged = Accumulator::new();
        for chunk in values.chunks(7) {
            let mut part = Accumulator::new();
            for &v in chunk {
                part.push(v);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-9);
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
        assert!((merged.std_dev() - whole.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn accumulator_merge_with_empty_sides() {
        let mut a = Accumulator::new();
        a.push(5.0);
        let empty = Accumulator::new();
        let mut b = a;
        b.merge(&empty);
        assert_eq!(b, a, "merging an empty accumulator is a no-op");
        let mut c = Accumulator::new();
        c.merge(&a);
        assert_eq!(c, a, "merging into an empty accumulator copies");
    }

    #[test]
    fn histogram_buckets_are_exact_below_sixteen() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 16);
        for v in 0..16u64 {
            assert_eq!(LogHistogram::bucket_index(v), v as usize);
            assert_eq!(LogHistogram::bucket_low(v as usize), v);
        }
    }

    #[test]
    fn histogram_bucket_bounds_are_contiguous_and_monotonic() {
        // Every value maps to the bucket whose [low, next_low) range contains it.
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            50_000,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let index = LogHistogram::bucket_index(v);
            let low = LogHistogram::bucket_low(index);
            assert!(low <= v, "low {low} > value {v}");
            if index + 1 < LogHistogram::bucket_index(u64::MAX) {
                let next = LogHistogram::bucket_low(index + 1);
                assert!(v < next, "value {v} >= next bucket low {next}");
            }
            // Relative quantization error is bounded by 1/16.
            assert!(
                (v - low) as f64 <= v as f64 / 16.0 + 1.0,
                "bucket low {low} too far below {v}"
            );
        }
    }

    #[test]
    fn histogram_quantiles_on_a_known_sample() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        // Exact below 16; bucketed (<= 6.25% low) above.
        let p50 = h.p50().unwrap();
        assert!((47..=50).contains(&p50), "p50 {p50}");
        let p90 = h.p90().unwrap();
        assert!((85..=90).contains(&p90), "p90 {p90}");
        let p99 = h.p99().unwrap();
        assert!((93..=99).contains(&p99), "p99 {p99}");
        assert_eq!(h.quantile(0.0).unwrap(), 1);
        let p100 = h.quantile(1.0).unwrap();
        assert!((93..=100).contains(&p100), "p100 {p100}");
    }

    #[test]
    fn histogram_single_observation_is_its_own_quantile() {
        let mut h = LogHistogram::new();
        h.record(7);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(7));
        }
        assert_eq!(h.max_bucket_low(), Some(7));
    }

    #[test]
    fn histogram_merge_equals_single_pass() {
        let values: Vec<u64> = (0..500).map(|i| i * i % 90_000).collect();
        let mut whole = LogHistogram::new();
        for &v in &values {
            whole.record(v);
        }
        let mut merged = LogHistogram::new();
        for chunk in values.chunks(13) {
            let mut part = LogHistogram::new();
            for &v in chunk {
                part.record(v);
            }
            merged.merge(&part);
        }
        assert_eq!(whole, merged, "merge must be exact");
    }

    #[test]
    fn histogram_merge_with_empty_is_identity() {
        let mut h = LogHistogram::new();
        h.record_n(42, 3);
        let snapshot = h.clone();
        h.merge(&LogHistogram::new());
        assert_eq!(h, snapshot);
        let mut empty = LogHistogram::new();
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn empty_histogram_reports_none() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p99(), None);
        assert_eq!(h.max_bucket_low(), None);
    }

    #[test]
    fn histogram_record_n_zero_is_a_no_op() {
        let mut h = LogHistogram::new();
        h.record_n(5, 0);
        assert!(h.is_empty());
        assert_eq!(h, LogHistogram::new(), "no trailing zero buckets appear");
    }

    #[test]
    fn empty_accumulator_reports_zeroes() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.min(), 0.0);
        assert_eq!(acc.max(), 0.0);
        assert_eq!(acc.std_dev(), 0.0);
        assert_eq!(acc.summary(), Summary::of(&[]));
    }
}
