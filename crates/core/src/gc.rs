//! Watermark-based instance garbage collection for long-lived engines.
//!
//! Every protocol engine keys per-broadcast state by [`BroadcastId`] (or by
//! [`crate::types::Content`], which embeds one) and, without intervention, keeps it
//! forever: under continuous traffic the Sec. 7.3 `state_bytes`/`stored_paths` proxies
//! grow linearly. This module provides the shared retirement machinery: a [`GcPolicy`]
//! says *when* a delivered instance may be reclaimed, and a [`GcState`] tracks which
//! instances are *retired* so that late or replayed frames for them are dropped
//! deterministically instead of resurrecting state.
//!
//! The life of an instance under GC:
//!
//! 1. **live** — the engine holds quorum/path state for it;
//! 2. **delivered** — the engine delivered it locally; [`GcState::on_delivered`] starts
//!    the retention window, during which the instance keeps serving late frames (and the
//!    engine keeps relaying for neighbors that have not delivered yet);
//! 3. **retired** — the window elapsed ([`GcState::due`] returned the id); the engine
//!    prunes the instance's state, and [`GcState::is_retired`] makes every later frame
//!    for it a deterministic no-op.
//!
//! Retired markers must themselves stay bounded. Because a correct source allocates its
//! [`BroadcastSeq`]s sequentially, retirements per source are near-contiguous, so markers
//! compact into a per-source *watermark* (`every seq below this is retired`) plus a small
//! exception set for out-of-order retirements; [`GcPolicy::max_retired`] caps the
//! exceptions with a force-compaction safety valve.
//!
//! # Example
//!
//! ```
//! use brb_core::gc::{GcPolicy, GcState};
//! use brb_core::types::BroadcastId;
//!
//! // Retire a delivered instance after 4 further engine events.
//! let mut gc = GcState::new(GcPolicy::after_events(4));
//! let id = BroadcastId::new(0, 0);
//!
//! gc.on_delivered(id);
//! assert!(!gc.is_retired(id), "retention window still open");
//! for _ in 0..4 {
//!     assert!(gc.due().is_empty());
//!     gc.on_event();
//! }
//! // The window elapsed: the id comes due exactly once, then stays retired forever.
//! assert_eq!(gc.due(), vec![id]);
//! assert!(gc.is_retired(id));
//! assert_eq!(gc.retired_count(), 1);
//! ```

use std::collections::{BTreeSet, HashMap, VecDeque};

use serde::{Deserialize, Serialize};

use crate::types::{seq_local, seq_namespace, BroadcastId, BroadcastSeq, ProcessId};

/// When a delivered broadcast instance may be retired.
///
/// The default policy is fully disabled (no retirement ever), which preserves the
/// historical behavior of every engine; enable GC by setting a retention window. Both
/// windows may be set at once, in which case whichever elapses first retires the
/// instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GcPolicy {
    /// Retire a delivered instance once the engine has processed this many further
    /// events (broadcasts or inbound messages). Event counts are engine-local and
    /// deterministic in the simulator, which is what the conformance tests pin.
    pub retention_events: Option<u64>,
    /// Retire a delivered instance once this many milliseconds passed since its
    /// delivery, per the clock the host feeds through `note_time` (virtual time in the
    /// simulator, wall clock in the live deployments).
    pub retention_time_ms: Option<u64>,
    /// Upper bound on out-of-order retirement markers kept per engine. When exceeded,
    /// the oldest markers are force-compacted into the per-source watermark — which may
    /// retire not-yet-delivered older instances early (a memory-safety valve trading
    /// liveness of stragglers for bounded marker state). The default is 1024, far above
    /// what sequential per-source sequence numbers produce in practice.
    pub max_retired: usize,
}

/// Default exception-marker cap (see [`GcPolicy::max_retired`]).
pub const DEFAULT_MAX_RETIRED: usize = 1024;

impl GcPolicy {
    /// GC disabled: no instance is ever retired (the historical engine behavior).
    pub const DISABLED: GcPolicy = GcPolicy {
        retention_events: None,
        retention_time_ms: None,
        max_retired: DEFAULT_MAX_RETIRED,
    };

    /// Retire delivered instances after `events` further engine events.
    pub fn after_events(events: u64) -> Self {
        Self {
            retention_events: Some(events),
            ..Self::DISABLED
        }
    }

    /// Retire delivered instances after `ms` milliseconds of host time.
    pub fn after_time_ms(ms: u64) -> Self {
        Self {
            retention_time_ms: Some(ms),
            ..Self::DISABLED
        }
    }

    /// Returns a copy with the exception-marker cap replaced.
    pub fn with_max_retired(mut self, max_retired: usize) -> Self {
        self.max_retired = max_retired;
        self
    }

    /// Whether any retention window is configured (i.e. GC can ever retire anything).
    pub fn enabled(&self) -> bool {
        self.retention_events.is_some() || self.retention_time_ms.is_some()
    }
}

/// Compact retired-marker set over one sequential `u32` identifier space: a watermark
/// (every identifier below it is retired) plus the out-of-order exceptions above it.
///
/// Used per source for [`BroadcastId`] sequence numbers, and reused by the Bracha–Dolev
/// engine per peer for retired MBD.1 link-local payload identifiers (also sequential).
#[derive(Debug, Clone, Default)]
pub(crate) struct RetiredSet {
    watermark: BroadcastSeq,
    exceptions: BTreeSet<BroadcastSeq>,
}

impl RetiredSet {
    pub(crate) fn insert(&mut self, seq: BroadcastSeq) {
        if seq < self.watermark {
            return;
        }
        self.exceptions.insert(seq);
        // Absorb a now-contiguous prefix into the watermark.
        while self.exceptions.remove(&self.watermark) {
            self.watermark += 1;
        }
    }

    pub(crate) fn contains(&self, seq: BroadcastSeq) -> bool {
        seq < self.watermark || self.exceptions.contains(&seq)
    }

    /// Force-compacts the lowest exceptions into the watermark until at most `keep`
    /// remain. Sequence numbers in the gaps become retired without having been
    /// delivered — the caller only invokes this as the `max_retired` safety valve.
    pub(crate) fn force_compact(&mut self, keep: usize) {
        while self.exceptions.len() > keep {
            if let Some(&lowest) = self.exceptions.iter().next() {
                self.exceptions.remove(&lowest);
                self.watermark = self.watermark.max(lowest + 1);
                while self.exceptions.remove(&self.watermark) {
                    self.watermark += 1;
                }
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.exceptions.len()
    }
}

/// Per-engine retirement tracker: the retention clock, the instances whose window is
/// open, and the compact markers of everything already retired.
///
/// Engines own one `GcState` (plus one per substrate layer in composed stacks), call
/// [`GcState::on_event`] / [`GcState::note_time`] from their event handlers,
/// [`GcState::on_delivered`] when they deliver, and drain [`GcState::due`] to learn
/// which instances to prune. [`GcState::is_retired`] is the drop check that must guard
/// every state-creating path.
#[derive(Debug, Clone)]
pub struct GcState {
    policy: GcPolicy,
    /// Engine-local event counter (the `retention_events` clock).
    events: u64,
    /// Latest host time observed (the `retention_time_ms` clock).
    now_ms: u64,
    /// Delivered instances whose retention window is still open, in delivery order
    /// (windows are uniform, so the deque front always comes due first).
    pending: VecDeque<(BroadcastId, u64, u64)>,
    /// Retired markers, keyed per `(source, client-instance namespace)` over the
    /// namespace-*local* sequence numbers. Keying per source alone would mix the
    /// namespaces into one `RetiredSet`: a consensus-namespace retirement (seq ≥ 2^24)
    /// would sit 2^24 above the workload watermark, and the `max_retired` force-compact
    /// valve could then jump the watermark across the gap, retiring every
    /// not-yet-delivered namespace-0 instance of that source in one stroke. Each
    /// namespace is sequential on its own, so per-namespace sets keep the compactness
    /// the watermark design assumes.
    retired: HashMap<(ProcessId, u32), RetiredSet>,
    retired_count: u64,
}

impl GcState {
    /// Creates a tracker with the given policy (use [`GcPolicy::DISABLED`] for the
    /// historical keep-everything behavior).
    pub fn new(policy: GcPolicy) -> Self {
        Self {
            policy,
            events: 0,
            now_ms: 0,
            pending: VecDeque::new(),
            retired: HashMap::new(),
            retired_count: 0,
        }
    }

    /// Replaces the policy. Already-retired markers are kept (they must be: pruned
    /// state would otherwise resurrect); already-pending windows adopt the new policy.
    pub fn set_policy(&mut self, policy: GcPolicy) {
        self.policy = policy;
    }

    /// The active policy.
    pub fn policy(&self) -> GcPolicy {
        self.policy
    }

    /// Advances the event clock by one engine event.
    pub fn on_event(&mut self) {
        self.events += 1;
    }

    /// Advances the time clock to `now_ms` (monotone: earlier observations are kept).
    pub fn note_time(&mut self, now_ms: u64) {
        self.now_ms = self.now_ms.max(now_ms);
    }

    /// Opens the retention window for a locally delivered instance. No-op while the
    /// policy is disabled.
    pub fn on_delivered(&mut self, id: BroadcastId) {
        if self.policy.enabled() {
            self.pending.push_back((id, self.events, self.now_ms));
        }
    }

    /// Whether `id` has been retired: frames for it must be dropped without creating
    /// state.
    pub fn is_retired(&self, id: BroadcastId) -> bool {
        self.retired
            .get(&(id.source, seq_namespace(id.seq)))
            .is_some_and(|set| set.contains(seq_local(id.seq)))
    }

    /// Drains the instances whose retention window elapsed, marking each retired. The
    /// caller prunes the returned ids from its state maps; the markers keep rejecting
    /// their frames forever after.
    pub fn due(&mut self) -> Vec<BroadcastId> {
        let mut out = Vec::new();
        while let Some(&(id, at_events, at_ms)) = self.pending.front() {
            let events_up = self
                .policy
                .retention_events
                .is_some_and(|window| self.events.saturating_sub(at_events) >= window);
            let time_up = self
                .policy
                .retention_time_ms
                .is_some_and(|window| self.now_ms.saturating_sub(at_ms) >= window);
            if !(events_up || time_up) {
                break;
            }
            self.pending.pop_front();
            let set = self
                .retired
                .entry((id.source, seq_namespace(id.seq)))
                .or_default();
            let local = seq_local(id.seq);
            if !set.contains(local) {
                set.insert(local);
                self.retired_count += 1;
                if set.len() > self.policy.max_retired {
                    set.force_compact(self.policy.max_retired);
                }
            }
            out.push(id);
        }
        out
    }

    /// Total number of instances retired so far (the `gc_retired` metric).
    pub fn retired_count(&self) -> u64 {
        self.retired_count
    }

    /// Number of delivered instances whose retention window is still open.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(source: ProcessId, seq: BroadcastSeq) -> BroadcastId {
        BroadcastId::new(source, seq)
    }

    #[test]
    fn disabled_policy_never_retires() {
        let mut gc = GcState::new(GcPolicy::DISABLED);
        gc.on_delivered(id(0, 0));
        for _ in 0..10_000 {
            gc.on_event();
        }
        gc.note_time(1 << 40);
        assert!(gc.due().is_empty());
        assert!(!gc.is_retired(id(0, 0)));
        assert_eq!(gc.pending_len(), 0, "disabled policies queue nothing");
    }

    #[test]
    fn event_window_retires_after_exactly_the_window() {
        let mut gc = GcState::new(GcPolicy::after_events(3));
        gc.on_delivered(id(2, 7));
        gc.on_event();
        gc.on_event();
        assert!(gc.due().is_empty(), "window not elapsed at 2 < 3 events");
        gc.on_event();
        assert_eq!(gc.due(), vec![id(2, 7)]);
        assert!(gc.is_retired(id(2, 7)));
        assert!(!gc.is_retired(id(2, 8)), "later seqs stay live");
        assert!(gc.due().is_empty(), "an id comes due once");
    }

    #[test]
    fn time_window_retires_on_note_time() {
        let mut gc = GcState::new(GcPolicy::after_time_ms(100));
        gc.note_time(50);
        gc.on_delivered(id(1, 0));
        gc.note_time(149);
        assert!(gc.due().is_empty());
        gc.note_time(150);
        assert_eq!(gc.due(), vec![id(1, 0)]);
    }

    #[test]
    fn watermark_compacts_sequential_retirements() {
        let mut gc = GcState::new(GcPolicy::after_events(0));
        for seq in 0..1000 {
            gc.on_delivered(id(4, seq));
            let _ = gc.due();
        }
        assert_eq!(gc.retired_count(), 1000);
        let set = gc.retired.get(&(4, 0)).unwrap();
        assert_eq!(set.watermark, 1000);
        assert_eq!(set.len(), 0, "contiguous seqs live in the watermark alone");
        assert!(gc.is_retired(id(4, 999)));
        assert!(!gc.is_retired(id(4, 1000)));
    }

    #[test]
    fn out_of_order_retirements_keep_exceptions_until_the_gap_fills() {
        let mut gc = GcState::new(GcPolicy::after_events(0));
        gc.on_delivered(id(0, 1));
        let _ = gc.due();
        assert!(gc.is_retired(id(0, 1)));
        assert!(!gc.is_retired(id(0, 0)), "the gap seq is not retired");
        gc.on_delivered(id(0, 0));
        let _ = gc.due();
        let set = gc.retired.get(&(0, 0)).unwrap();
        assert_eq!(set.watermark, 2, "filling the gap compacts both markers");
        assert_eq!(set.len(), 0);
    }

    #[test]
    fn force_compaction_never_crosses_client_instance_namespaces() {
        use crate::types::{namespaced_seq, NAMESPACE_CLIENT, NAMESPACE_CONSENSUS};
        let mut gc = GcState::new(GcPolicy::after_events(0).with_max_retired(2));
        // A consensus client retires sparse high-namespace instances — enough gaps to
        // trip the force-compact valve repeatedly.
        for local in [1, 3, 5, 7, 9, 11, 13] {
            gc.on_delivered(id(6, namespaced_seq(NAMESPACE_CONSENSUS, local)));
            let _ = gc.due();
        }
        // The same source's namespace-0 (workload) instances must stay live: with a
        // source-keyed set the compaction above would have swept the watermark past
        // every 24-bit client seq.
        for local in [0, 1, 2, 100, 1 << 20] {
            assert!(
                !gc.is_retired(id(6, namespaced_seq(NAMESPACE_CLIENT, local))),
                "namespace-0 seq {local} must not be retired by consensus GC"
            );
        }
        assert!(gc.is_retired(id(6, namespaced_seq(NAMESPACE_CONSENSUS, 1))));
    }

    #[test]
    fn max_retired_force_compacts_but_never_unretires() {
        let mut gc = GcState::new(GcPolicy::after_events(0).with_max_retired(4));
        // Retire odd seqs only: every one is an exception (gaps at the even seqs).
        for seq in [1, 3, 5, 7, 9, 11] {
            gc.on_delivered(id(0, seq));
            let _ = gc.due();
        }
        let set = gc.retired.get(&(0, 0)).unwrap();
        assert!(set.len() <= 4, "cap holds: {} exceptions", set.len());
        for seq in [1, 3, 5, 7, 9, 11] {
            assert!(gc.is_retired(id(0, seq)), "seq {seq} must stay retired");
        }
    }

    #[test]
    fn retirement_requires_delivery_first() {
        let mut gc = GcState::new(GcPolicy::after_events(1));
        for _ in 0..100 {
            gc.on_event();
        }
        assert!(gc.due().is_empty());
        assert!(!gc.is_retired(id(0, 0)), "undelivered ids never retire");
    }
}
