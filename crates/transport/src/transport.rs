//! The [`Transport`] abstraction: send/receive encoded frames over authenticated links.
//!
//! A transport is what a [`crate::NodeDriver`] plugs its protocol engine into. The
//! inbound side is uniform across every backend of this workspace — a crossbeam
//! [`Receiver`] of authenticated [`Frame`]s (the channel deployment's mailbox feeds it
//! directly, the TCP deployment's per-socket reader threads feed it from the wire) — so
//! the trait only abstracts the *outbound* side, which is where the backends genuinely
//! differ and where the [`crate::policy`] decorators interpose faults and delays.

use brb_core::types::ProcessId;
use brb_core::wire::encode_batch;
use bytes::Bytes;
use crossbeam::channel::Receiver;

use crate::link::{AuthenticatedSender, Frame, Mailbox};

/// One outbound frame of a same-destination burst handed to [`Transport::send_batch`]:
/// the encoded message and its Table 3 wire size (per-frame byte accounting must stay
/// exact through batching and through every decorator).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutFrame {
    /// The encoded message, ready for the link.
    pub frame: Bytes,
    /// Size of the message under the paper's Table 3 accounting.
    pub wire_size: usize,
}

impl OutFrame {
    /// Pairs an encoded frame with its accounted wire size.
    pub fn new(frame: Bytes, wire_size: usize) -> Self {
        Self { frame, wire_size }
    }
}

/// What a [`Transport::send_batch`] call actually put on the wire: the total copy count
/// across the burst's frames and the total accounted bytes (each transmitted copy
/// contributes its own frame's `wire_size`). Identical to what summing the per-frame
/// [`Transport::send`] results would report — batching changes the op count, never the
/// accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendReceipt {
    /// Number of frame copies put on the wire.
    pub copies: usize,
    /// Total Table 3 bytes across those copies.
    pub bytes: usize,
}

impl SendReceipt {
    /// Adds `copies` transmissions of a frame of `wire_size` bytes.
    pub fn record(&mut self, copies: usize, wire_size: usize) {
        self.copies += copies;
        self.bytes += copies * wire_size;
    }

    /// Merges another receipt into this one.
    pub fn merge(&mut self, other: SendReceipt) {
        self.copies += other.copies;
        self.bytes += other.bytes;
    }
}

/// An authenticated point-to-point transport between one process and its neighbors.
///
/// `send` returns the number of frames actually put on the wire for this request:
/// `1` for a plain transport with a link to `to`, `0` when no such link exists (the
/// engine addressed a non-neighbor, which the deployments tolerate silently, exactly as
/// the old per-backend node loops did), and any other count when a
/// [`crate::policy`] decorator drops or amplifies the frame. Drivers multiply
/// `wire_size` by the returned count for the paper's Table 3 byte accounting.
pub trait Transport: Send {
    /// The multiplexed inbound frame stream (every neighbor's traffic, tagged with the
    /// authenticated sender identity by trusted infrastructure).
    fn inbound(&self) -> &Receiver<Frame>;

    /// The neighbors this transport holds an outbound link to, in ascending order.
    /// Static for the lifetime of a deployment; decorators forward to the transport
    /// they wrap (asynchronous ones snapshot it at construction), so the accounting of
    /// [`Transport::send`] stays exact through any decorator stack.
    fn peers(&self) -> Vec<ProcessId>;

    /// Transmits one encoded frame to direct neighbor `to`; returns how many copies were
    /// put on the wire. `wire_size` is the Table 3 size of the frame (decorators may use
    /// it; plain transports ignore it).
    fn send(&mut self, to: ProcessId, frame: &Bytes, wire_size: usize) -> usize;

    /// Transmits a burst of frames to the same neighbor, coalescing the burst into as
    /// few channel ops / syscalls as the backend allows.
    ///
    /// Semantics are **per-frame**: each frame of the burst is subject to exactly the
    /// decisions [`Transport::send`] would make for it, in burst order (decorators
    /// apply loss, gating, behavior copies and delay sampling frame by frame, drawing
    /// from the same RNG streams in the same order), and the returned receipt reports
    /// the same copy/byte totals the frame-at-a-time path would. The default
    /// implementation simply loops `send`; backends override it to batch the channel
    /// op or syscall.
    fn send_batch(&mut self, to: ProcessId, frames: &[OutFrame]) -> SendReceipt {
        let mut receipt = SendReceipt::default();
        for f in frames {
            receipt.record(self.send(to, &f.frame, f.wire_size), f.wire_size);
        }
        receipt
    }
}

impl Transport for Box<dyn Transport> {
    fn inbound(&self) -> &Receiver<Frame> {
        (**self).inbound()
    }

    fn peers(&self) -> Vec<ProcessId> {
        (**self).peers()
    }

    fn send(&mut self, to: ProcessId, frame: &Bytes, wire_size: usize) -> usize {
        (**self).send(to, frame, wire_size)
    }

    fn send_batch(&mut self, to: ProcessId, frames: &[OutFrame]) -> SendReceipt {
        (**self).send_batch(to, frames)
    }
}

/// The in-process transport: crossbeam-channel authenticated links
/// (see [`crate::link::build_links`]). This is the backend `brb-runtime` deploys on.
pub struct ChannelTransport {
    mailbox: Mailbox,
    links: Vec<AuthenticatedSender>,
}

impl ChannelTransport {
    /// Wraps one process's mailbox and outgoing links.
    pub fn new(mailbox: Mailbox, links: Vec<AuthenticatedSender>) -> Self {
        Self { mailbox, links }
    }
}

impl Transport for ChannelTransport {
    fn inbound(&self) -> &Receiver<Frame> {
        self.mailbox.receiver()
    }

    fn peers(&self) -> Vec<ProcessId> {
        // build_links sorts each process's senders by peer.
        self.links.iter().map(|l| l.peer()).collect()
    }

    fn send(&mut self, to: ProcessId, frame: &Bytes, _wire_size: usize) -> usize {
        if let Some(link) = self.links.iter().find(|l| l.peer() == to) {
            // A failed send means the peer has shut down, which the protocols tolerate;
            // the frame still counts as transmitted (it left this process).
            let _ = link.send(frame.clone());
            1
        } else {
            0
        }
    }

    fn send_batch(&mut self, to: ProcessId, frames: &[OutFrame]) -> SendReceipt {
        let mut receipt = SendReceipt::default();
        let Some(link) = self.links.iter().find(|l| l.peer() == to) else {
            return receipt;
        };
        match frames {
            [] => {}
            [only] => {
                let _ = link.send(only.frame.clone());
                receipt.record(1, only.wire_size);
            }
            burst => {
                // One channel op for the whole burst: coalesce into the length-prefixed
                // batch framing; the receiving driver splits it back into messages.
                let bytes: Vec<Bytes> = burst.iter().map(|f| f.frame.clone()).collect();
                let _ = link.send_batch(encode_batch(&bytes));
                for f in burst {
                    receipt.record(1, f.wire_size);
                }
            }
        }
        receipt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::build_links;

    #[test]
    fn batched_send_accounts_identically_to_frame_at_a_time() {
        // The same burst through send() and through send_batch() must report the same
        // copy and byte totals, and the receiver must see the same messages.
        let frames: Vec<OutFrame> = (0..5)
            .map(|i| {
                let payload: Vec<u8> = vec![i as u8; 3 + i];
                OutFrame::new(Bytes::from(payload), 100 + i)
            })
            .collect();

        let (mut mailboxes, mut senders) = build_links(2, &[(0, 1)]);
        let _sink = mailboxes.pop().unwrap();
        let mut unbatched = ChannelTransport::new(mailboxes.pop().unwrap(), senders.remove(0));
        let mut per_frame = SendReceipt::default();
        for f in &frames {
            per_frame.record(unbatched.send(1, &f.frame, f.wire_size), f.wire_size);
        }

        let (mut mailboxes, mut senders) = build_links(2, &[(0, 1)]);
        let sink = mailboxes.pop().unwrap();
        let mut batched = ChannelTransport::new(mailboxes.pop().unwrap(), senders.remove(0));
        let receipt = batched.send_batch(1, &frames);

        assert_eq!(receipt, per_frame, "identical copy/byte accounting");
        assert_eq!(receipt.copies, 5);
        assert_eq!(receipt.bytes, (100..105).sum::<usize>());
        // The whole burst travelled as ONE channel op carrying the batch framing.
        let frame = sink.receiver().recv().unwrap();
        assert!(frame.batch, "burst arrives as a coalesced batch frame");
        let parts = brb_core::wire::split_batch(&frame.bytes).expect("valid batch framing");
        assert_eq!(parts.len(), 5);
        for (part, original) in parts.iter().zip(&frames) {
            assert_eq!(part, &original.frame);
        }
        assert!(sink.receiver().is_empty(), "exactly one channel op");
    }

    #[test]
    fn single_frame_and_empty_batches_avoid_the_batch_framing() {
        let (mut mailboxes, mut senders) = build_links(2, &[(0, 1)]);
        let sink = mailboxes.pop().unwrap();
        let mut t0 = ChannelTransport::new(mailboxes.pop().unwrap(), senders.remove(0));
        assert_eq!(t0.send_batch(1, &[]), SendReceipt::default());
        let one = [OutFrame::new(Bytes::from_static(b"solo"), 42)];
        let receipt = t0.send_batch(1, &one);
        assert_eq!(
            receipt,
            SendReceipt {
                copies: 1,
                bytes: 42
            }
        );
        let frame = sink.receiver().recv().unwrap();
        assert!(!frame.batch, "a one-frame burst travels as a plain frame");
        assert_eq!(&frame.bytes[..], b"solo");
        // A batch to a non-neighbor is silently accounted as zero, like send().
        assert_eq!(t0.send_batch(9, &one), SendReceipt::default());
    }

    #[test]
    fn channel_transport_routes_by_peer() {
        let (mut mailboxes, mut senders) = build_links(3, &[(0, 1), (0, 2)]);
        let mailbox2 = mailboxes.pop().unwrap();
        let mut t0 = ChannelTransport::new(mailboxes.swap_remove(0), senders.swap_remove(0));
        assert_eq!(t0.send(2, &Bytes::from_static(b"to two"), 6), 1);
        assert_eq!(t0.send(9, &Bytes::from_static(b"nobody"), 6), 0);
        let frame = mailbox2.receiver().recv().unwrap();
        assert_eq!(frame.from, 0);
        assert_eq!(&frame.bytes[..], b"to two");
        assert!(t0.inbound().is_empty());
    }
}
