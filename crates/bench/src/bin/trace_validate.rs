//! Validates emitted trace artifacts against the `brb-trace` event schema.
//!
//! CI runs `trace_study` (which writes a JSONL event stream and a Chrome trace-event
//! JSON file) and then this binary on the artifacts: every JSONL line must parse and
//! carry the typed event fields (`backend`, `node`, `source`, `seq`, `time_us`,
//! `kind`), and the Chrome trace must be a well-formed event array Perfetto accepts.
//! Exit code 1 with a diagnostic on the first violation.
//!
//! Usage: `cargo run --release -p brb-bench --bin trace_validate -- \
//!     --jsonl PATH [--chrome PATH]`

use brb_trace::{validate_chrome_trace, validate_jsonl};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let prefixed = format!("{flag}=");
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| {
            args.iter()
                .find_map(|a| a.strip_prefix(&prefixed).map(str::to_string))
        })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let jsonl_path = arg_value(&args, "--jsonl");
    let chrome_path = arg_value(&args, "--chrome");
    if jsonl_path.is_none() && chrome_path.is_none() {
        eprintln!("usage: trace_validate --jsonl PATH [--chrome PATH]");
        std::process::exit(2);
    }

    if let Some(path) = jsonl_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate_jsonl(&text) {
            Ok(events) => println!("OK: {path}: {events} events validate against the schema"),
            Err(e) => {
                eprintln!("FAIL: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = chrome_path {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate_chrome_trace(&text) {
            Ok(entries) => println!("OK: {path}: {entries} well-formed trace entries"),
            Err(e) => {
                eprintln!("FAIL: {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
