//! Thread-per-process deployment of the PBRB protocols.
//!
//! The paper evaluates a real C++ deployment in which every process runs in its own Docker
//! container and communicates over TCP sockets acting as authenticated channels. This
//! crate provides the equivalent *concurrent* deployment for the Rust reproduction: every
//! process runs the same [`brb_core::bd::BdProcess`] engine as the simulator, but in its
//! own OS thread, exchanging **binary-encoded** wire messages over crossbeam channels that
//! play the role of authenticated point-to-point links.
//!
//! The deployment is used by the integration tests and the examples to demonstrate that
//! the protocol engine is runtime-agnostic: the exact same state machine runs under the
//! deterministic simulator and under real concurrency with arbitrary interleavings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deployment;
pub mod link;

pub use deployment::{Deployment, DeploymentReport, NodeReport, RuntimeOptions};
