//! Running binary consensus over BRB inside the discrete-event simulator.
//!
//! The consensus engine ([`brb_consensus::ConsensusEngine`]) is a
//! [`DynEngine`](brb_core::stack::DynEngine) decorator, so the simulator runs it the
//! way it runs any non-default stack: wrapped in a [`DynStack`] moving encoded wire
//! frames — the exact bytes the socket deployments put on their links. The harness
//! here phase-steps the protocol: it injects `Propose` at virtual time 0, runs the
//! network to quiescence, then alternates `CloseBv(r)` / `CloseRound(r)` control
//! operations (each followed by a run to quiescence) until every honest process has
//! decided. Because each phase closes over a *global* BRB fixpoint, all honest
//! processes evaluate identical delivery sets and decide the same value in the same
//! round — deterministically, for a fixed `(params, spec)` pair, and identically to
//! the live backends driving the same schedule.

use brb_consensus::{
    close_bv_payload, close_round_payload, propose_payload, ConsensusEngine, ConsensusSpec,
    Decision, DecisionHandle,
};
use brb_core::stack::DynStack;
use brb_core::types::{seq_namespace, ProcessId, NAMESPACE_CONSENSUS};
use brb_graph::Graph;
use serde::{Deserialize, Serialize};

use crate::behavior::Behavior;
use crate::experiment::{ExperimentParams, ExperimentRecord, ExperimentResult};
use crate::sim::Simulation;

/// Aggregated outcome of one consensus run (what the sweep CSV rows report).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsensusStats {
    /// Number of honest processes (correct at the transport level and not flippers).
    pub honest: usize,
    /// Number of honest processes that decided.
    pub decided: usize,
    /// The decided value, when at least one honest process decided (lockstep phases
    /// make it unique).
    pub decision_value: Option<u8>,
    /// The round the honest processes decided in.
    pub decision_round: Option<u32>,
    /// Number of rounds the harness drove (bounded by the spec's `max_rounds`).
    pub rounds_driven: u32,
    /// Distinct BRB instances spawned in the consensus namespace (counted over
    /// delivered instance ids).
    pub instances: usize,
    /// Virtual time (ms) at which every honest process had decided.
    pub decision_time_ms: f64,
}

impl ConsensusStats {
    /// Whether every honest process decided.
    pub fn all_decided(&self) -> bool {
        self.decided == self.honest
    }
}

/// Per-process decisions of the honest processes, in the form the
/// [`brb_consensus::checks`] checkers consume.
pub fn honest_decisions(
    handles: &[DecisionHandle],
    honest: &[ProcessId],
) -> Vec<(ProcessId, Option<Decision>)> {
    honest.iter().map(|&p| (p, handles[p].get())).collect()
}

/// The honest processes of a consensus experiment: transport-level correct minus the
/// spec's consensus-level value-flippers.
pub fn honest_processes(correct: &[ProcessId], spec: &ConsensusSpec) -> Vec<ProcessId> {
    correct
        .iter()
        .copied()
        .filter(|p| !spec.flippers.contains(p))
        .collect()
}

/// Builds one consensus-wrapped engine per process over the experiment's stack and
/// returns the simulation plus one decision handle per process.
///
/// Every stack — including the default Bracha–Dolev — runs through the [`DynStack`]
/// wire-frame path here: consensus needs the seq-aware [`brb_core::stack::DynEngine`]
/// interface between itself and the protocol below.
pub fn build_consensus_sim(
    params: &ExperimentParams,
    graph: &Graph,
    spec: &ConsensusSpec,
) -> (Simulation<DynStack>, Vec<DecisionHandle>) {
    assert_eq!(graph.node_count(), params.n, "graph size must match N");
    let shared = std::sync::Arc::new(graph.clone());
    let mut handles = Vec::with_capacity(params.n);
    let engines: Vec<DynStack> = (0..params.n)
        .map(|i| {
            let inner = params.stack.build_shared(&params.config, &shared, i);
            let engine = ConsensusEngine::new(inner, params.n, params.f, spec);
            handles.push(engine.decision_handle());
            DynStack::new(Box::new(engine))
        })
        .collect();
    let mut sim = Simulation::new(engines, params.delay, params.seed);
    for offset in 0..params.crashed {
        sim.set_behavior(params.n - 1 - offset, Behavior::Crash);
    }
    for (process, behavior) in &params.behaviors {
        sim.set_behavior(*process, behavior.clone());
    }
    if let Some(churn) = &params.churn {
        // Link-level churn only: a NodeRestart would discard the consensus engine's
        // volatile round state, which the phase-stepped harness does not model.
        sim.set_churn(churn.compile(params.seed), graph.edges());
    }
    (sim, handles)
}

/// Phase-steps one consensus instance to termination (or the spec's round bound).
///
/// Control operations go through [`Simulation::client_op`], so they leave the
/// injection metrics untouched; round-message BRB traffic is accounted like any other
/// traffic. Returns the aggregated stats and records the decisions into the run's
/// [`crate::RunMetrics`] (`decisions` / `consensus_rounds`), where they become part
/// of the canonical text the determinism harness compares.
pub fn run_consensus(
    sim: &mut Simulation<DynStack>,
    spec: &ConsensusSpec,
    handles: &[DecisionHandle],
) -> ConsensusStats {
    let n = handles.len();
    let correct = sim.correct_processes();
    let honest = honest_processes(&correct, spec);
    for p in 0..n {
        sim.client_op(p, propose_payload());
    }
    sim.run_to_quiescence();
    let mut rounds_driven = 0;
    let mut decision_time = sim.now();
    while rounds_driven < spec.max_rounds {
        let round = rounds_driven;
        for op in [close_bv_payload(round), close_round_payload(round)] {
            for p in 0..n {
                sim.client_op(p, op.clone());
            }
            sim.run_to_quiescence();
        }
        rounds_driven += 1;
        decision_time = sim.now();
        if honest.iter().all(|&p| handles[p].get().is_some()) {
            break;
        }
    }
    sim.collect_gc_metrics();
    let decisions = honest_decisions(handles, &honest);
    for &(p, decision) in &decisions {
        if let Some(d) = decision {
            sim.metrics_mut().decisions.push((p, d.value, d.round));
        }
    }
    sim.metrics_mut().consensus_rounds = rounds_driven;
    let decided: Vec<Decision> = decisions.iter().filter_map(|&(_, d)| d).collect();
    let instances = sim
        .metrics()
        .delivery_times
        .keys()
        .map(|&(_, id)| id)
        .filter(|id| seq_namespace(id.seq) == NAMESPACE_CONSENSUS)
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    ConsensusStats {
        honest: honest.len(),
        decided: decided.len(),
        decision_value: decided.first().map(|d| d.value),
        decision_round: decided.first().map(|d| d.round),
        rounds_driven,
        instances,
        decision_time_ms: decision_time.as_micros() as f64 / 1_000.0,
    }
}

/// Runs one consensus experiment end to end on a caller-provided topology: builds the
/// wrapped engines, phase-steps to termination and returns the usual
/// [`ExperimentRecord`] with [`ExperimentResult::consensus`] filled.
pub fn run_consensus_recorded(params: &ExperimentParams, graph: &Graph) -> ExperimentRecord {
    run_consensus_sink(params, graph, None).record
}

/// [`run_consensus_recorded`] with an optional trace sink attached before the phases
/// start, returning the record plus the per-process drop accounting (the events end up
/// in the caller's sink; [`crate::experiment::run_experiment_traced`] drains them).
pub fn run_consensus_sink(
    params: &ExperimentParams,
    graph: &Graph,
    sink: Option<std::sync::Arc<dyn brb_trace::TraceSink>>,
) -> crate::experiment::TracedRecord {
    let spec = params
        .consensus
        .as_ref()
        .expect("run_consensus_recorded requires ExperimentParams::consensus");
    let (mut sim, handles) = build_consensus_sim(params, graph, spec);
    if let Some(sink) = sink {
        sim.set_trace_sink(sink);
    }
    let stats = run_consensus(&mut sim, spec, &handles);
    let correct = sim.correct_processes();
    let result = ExperimentResult {
        latency_ms: stats.all_decided().then_some(stats.decision_time_ms),
        bytes: sim.metrics().bytes_sent,
        messages: sim.metrics().messages_sent,
        delivered: stats.decided,
        correct: correct.len(),
        peak_state_bytes: sim.metrics().peak_state_bytes,
        peak_stored_paths: sim.metrics().peak_stored_paths,
        gc_retired: sim.metrics().gc_retired,
        retained_bytes: sim.metrics().retained_bytes,
        workload: None,
        consensus: Some(stats),
    };
    let drop_counts = sim.drop_counts().to_vec();
    crate::experiment::TracedRecord {
        record: ExperimentRecord {
            result,
            metrics: sim.into_metrics(),
        },
        events: Vec::new(),
        drop_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_consensus::checks::{check_agreement, check_termination, check_validity};
    use brb_consensus::ProposalPattern;
    use brb_core::config::Config;
    use brb_core::stack::StackSpec;

    use crate::experiment::experiment_graph;

    fn consensus_params(stack: StackSpec, spec: ConsensusSpec) -> ExperimentParams {
        ExperimentParams::new(14, 5, 2, Config::bdopt_mbd1(14, 2))
            .with_stack(stack)
            .with_consensus(spec)
    }

    #[test]
    fn unanimous_proposals_decide_their_value_on_bd() {
        let spec = ConsensusSpec::default().with_proposals(ProposalPattern::Unanimous(0));
        let params = consensus_params(StackSpec::Bd, spec.clone());
        let graph = experiment_graph(params.n, params.connectivity, params.seed);
        let record = run_consensus_recorded(&params, &graph);
        let stats = record.result.consensus.expect("consensus stats");
        assert!(stats.all_decided(), "{stats:?}");
        assert_eq!(stats.decision_value, Some(0), "validity");
        assert!(stats.instances > 0);
        assert!(record.result.latency_ms.unwrap() > 0.0);
        let text = record.metrics.canonical_text();
        assert!(text.contains("consensus_rounds="), "{text}");
        assert!(text.contains("decision p0 value=0"), "{text}");
    }

    #[test]
    fn split_proposals_with_a_flipper_satisfy_all_checkers() {
        let spec = ConsensusSpec::default()
            .with_proposals(ProposalPattern::Split)
            .with_flippers(vec![6]);
        let params = consensus_params(StackSpec::Bd, spec.clone());
        let graph = experiment_graph(params.n, params.connectivity, params.seed);
        let (mut sim, handles) = build_consensus_sim(&params, &graph, &spec);
        let stats = run_consensus(&mut sim, &spec, &handles);
        assert!(stats.all_decided(), "{stats:?}");
        let honest = honest_processes(&sim.correct_processes(), &spec);
        let decisions = honest_decisions(&handles, &honest);
        check_agreement(&decisions).unwrap();
        check_validity(&spec, &decisions).unwrap();
        check_termination(&decisions).unwrap();
    }

    #[test]
    fn decisions_are_deterministic_across_repeat_runs() {
        let spec = ConsensusSpec::default().with_proposals(ProposalPattern::Random(5));
        let params = consensus_params(StackSpec::BrachaRoutedDolev, spec);
        let graph = experiment_graph(params.n, params.connectivity, params.seed);
        let a = run_consensus_recorded(&params, &graph);
        let b = run_consensus_recorded(&params, &graph);
        assert_eq!(a.metrics.canonical_text(), b.metrics.canonical_text());
        assert_eq!(a.result.consensus, b.result.consensus);
    }
}
