//! High-level experiment runner used by the benchmark harnesses.
//!
//! One *experiment* reproduces one data point of the paper's evaluation: a protocol
//! stack ([`StackSpec`]), a `(N, k, f)` random regular topology, a protocol
//! configuration (a set of MD/MBD modifications), a payload size, a delay model and a
//! number of Byzantine (crashed) processes. The runner generates the topology, builds
//! one protocol instance per node, lets one source broadcast once, runs the
//! discrete-event simulation to quiescence and reports the metrics the paper plots:
//! latency, network consumption, message count and memory proxies.
//!
//! The default stack is the paper's Bracha–Dolev combination ([`BdProcess`]), which runs
//! on the typed fast path; every other [`StackSpec`] runs through the
//! [`brb_core::stack::DynStack`] adapter, which moves encoded wire frames through the
//! simulator — the exact bytes the socket deployments put on their links.

use brb_core::bd::BdProcess;
use brb_core::config::Config;
use brb_core::protocol::Protocol;
use brb_core::stack::StackSpec;
use brb_core::types::{BroadcastId, Payload, ProcessId};
use brb_graph::{generate, Graph, NeighborIndex};
use brb_workload::{WorkloadSpec, WorkloadStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::behavior::Behavior;
use crate::churn::ChurnSpec;
use crate::delay::DelayModel;
use crate::metrics::RunMetrics;
use crate::sim::Simulation;
use crate::workload::{run_workload, workload_stats};

/// Parameters of one experiment (one data point of a figure or table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Number of processes `N`.
    pub n: usize,
    /// Target vertex connectivity `k` of the random regular topology (also its degree).
    pub connectivity: usize,
    /// Fault threshold `f` the protocol is configured for.
    pub f: usize,
    /// Number of processes that actually crash during the run (at most `f`).
    pub crashed: usize,
    /// Payload size in bytes (the paper uses 16 B and 1024 B).
    pub payload_size: usize,
    /// Protocol configuration (which MD/MBD modifications are enabled).
    pub config: Config,
    /// Protocol stack the experiment runs ([`StackSpec::Bd`] reproduces the paper).
    pub stack: StackSpec,
    /// Link delay model.
    pub delay: DelayModel,
    /// Random seed (topology generation, delays, behaviours and the workload schedule).
    pub seed: u64,
    /// Multi-broadcast traffic to inject instead of the paper's single broadcast.
    /// `None` reproduces the paper: process 0 broadcasts once at time 0. `Some(spec)`
    /// expands the spec into a seeded schedule and drives it through the simulation
    /// (open or closed loop), filling [`ExperimentResult::workload`].
    #[serde(default)]
    pub workload: Option<WorkloadSpec>,
    /// Byzantine behaviour assignments, `(process, behavior)`, applied on top of the
    /// `crashed` count (and overriding it where they collide). The empty default
    /// reproduces the paper's all-correct-but-crashed runs; the live deployments accept
    /// the same assignments through `brb_transport::DriverOptions::behaviors`, so one
    /// scenario description drives every backend.
    #[serde(default)]
    pub behaviors: Vec<(ProcessId, Behavior)>,
    /// Churn schedule (link flaps, partitions, node restarts, per-link overrides)
    /// applied during the run. `None` — the default — reproduces the static networks of
    /// the paper; `Some(spec)` compiles the spec with the run seed and interleaves the
    /// events into the simulation ([`crate::Simulation::set_churn`]). The live
    /// deployments replay the same compiled schedule through
    /// `brb_transport::ChurnHandle`, so one scenario description drives every backend.
    #[serde(default)]
    pub churn: Option<ChurnSpec>,
    /// Binary consensus instance to run **instead of** broadcast traffic: the engines
    /// are wrapped in [`brb_consensus::ConsensusEngine`] and the run phase-steps
    /// proposals to decisions (see [`crate::consensus::run_consensus_recorded`]).
    /// `None` — the default — keeps the broadcast experiments exactly as before.
    #[serde(default)]
    pub consensus: Option<brb_consensus::ConsensusSpec>,
}

impl ExperimentParams {
    /// A convenient starting point matching the paper's default synchronous setting
    /// (Bracha–Dolev stack, 1024 B payload, 50 ms constant delays, no crash, seed 1).
    pub fn new(n: usize, connectivity: usize, f: usize, config: Config) -> Self {
        Self {
            n,
            connectivity,
            f,
            crashed: 0,
            payload_size: 1024,
            config,
            stack: StackSpec::Bd,
            delay: DelayModel::synchronous(),
            seed: 1,
            workload: None,
            behaviors: Vec::new(),
            churn: None,
            consensus: None,
        }
    }

    /// Returns a copy of the parameters with the protocol stack replaced.
    pub fn with_stack(mut self, stack: StackSpec) -> Self {
        self.stack = stack;
        self
    }

    /// Returns a copy of the parameters with a multi-broadcast workload installed.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Returns a copy of the parameters with the given Byzantine behaviour assignments.
    pub fn with_behaviors(mut self, behaviors: Vec<(ProcessId, Behavior)>) -> Self {
        self.behaviors = behaviors;
        self
    }

    /// Returns a copy of the parameters with a churn schedule installed.
    pub fn with_churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = Some(churn);
        self
    }

    /// Returns a copy of the parameters with a consensus instance installed.
    pub fn with_consensus(mut self, consensus: brb_consensus::ConsensusSpec) -> Self {
        self.consensus = Some(consensus);
        self
    }
}

/// Result of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Time in milliseconds from the first injection until **all correct processes
    /// delivered every injected broadcast** (for the paper's single-broadcast runs this
    /// is the broadcast latency), or `None` if some correct process missed some
    /// broadcast.
    pub latency_ms: Option<f64>,
    /// Total network consumption in bytes.
    pub bytes: usize,
    /// Total number of messages transmitted.
    pub messages: usize,
    /// Number of correct processes that delivered.
    pub delivered: usize,
    /// Number of correct processes.
    pub correct: usize,
    /// Peak protocol-state size (bytes) over all processes (Sec. 7.3 memory proxy).
    pub peak_state_bytes: usize,
    /// Peak number of stored transmission paths over all processes.
    pub peak_stored_paths: usize,
    /// Multi-broadcast measurements (throughput, latency percentiles) when the
    /// experiment ran a [`WorkloadSpec`]; `None` for the paper's single-broadcast runs.
    #[serde(default)]
    pub workload: Option<WorkloadStats>,
    /// Broadcast instances retired through watermark GC across all processes (0 when
    /// [`Config::gc`](brb_core::config::Config) is disabled).
    #[serde(default)]
    pub gc_retired: u64,
    /// Protocol-state bytes still held across all processes at the end of the run.
    #[serde(default)]
    pub retained_bytes: usize,
    /// Consensus outcome (decision value/round, rounds driven, instances spawned)
    /// when the experiment ran a [`brb_consensus::ConsensusSpec`]; `None` for
    /// broadcast experiments.
    #[serde(default)]
    pub consensus: Option<crate::consensus::ConsensusStats>,
}

impl ExperimentResult {
    /// Network consumption in kilobytes, the unit used by Figs. 4b/5b.
    pub fn kilobytes(&self) -> f64 {
        self.bytes as f64 / 1_000.0
    }

    /// Whether every correct process delivered the broadcast.
    pub fn complete(&self) -> bool {
        self.delivered == self.correct
    }
}

/// Generates the topology for an experiment: a random `k`-regular graph over `n` nodes.
///
/// Connectivity is not re-verified for every seed (random regular graphs are almost
/// surely `k`-connected); harnesses that need a certificate use
/// [`brb_graph::generate::random_regular_connected`] directly.
pub fn experiment_graph(n: usize, connectivity: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate::random_regular_graph(n, connectivity, &mut rng)
        .expect("the (n, k) combinations used in experiments admit regular graphs")
}

/// An [`ExperimentResult`] together with the full [`RunMetrics`] of the underlying
/// simulation run, as returned by [`run_experiment_recorded`].
///
/// The determinism harness compares the canonical rendering of `metrics` against golden
/// snapshots, which would be impossible from the aggregated [`ExperimentResult`] alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// The aggregated per-run result (what the figures and tables consume).
    pub result: ExperimentResult,
    /// The raw simulator metrics of the run.
    pub metrics: RunMetrics,
}

/// Runs one experiment and returns its metrics.
///
/// The source is process 0; the `crashed` Byzantine processes are chosen among the highest
/// identifiers so that the source itself stays correct.
pub fn run_experiment(params: &ExperimentParams) -> ExperimentResult {
    let graph = experiment_graph(params.n, params.connectivity, params.seed);
    run_experiment_on_graph(params, &graph)
}

/// Runs one experiment on a caller-provided topology (used when several configurations
/// must be compared on the *same* graph, as in Table 1 and Figs. 4–10).
pub fn run_experiment_on_graph(params: &ExperimentParams, graph: &Graph) -> ExperimentResult {
    run_experiment_recorded(params, graph).result
}

/// Runs one experiment on a caller-provided topology and returns both the aggregated
/// result and the full run metrics.
pub fn run_experiment_recorded(params: &ExperimentParams, graph: &Graph) -> ExperimentRecord {
    run_experiment_sink(params, graph, None).record
}

/// An [`ExperimentRecord`] together with the structured trace and the per-process drop
/// accounting captured during the run, as returned by [`run_experiment_traced`].
#[derive(Debug, Clone)]
pub struct TracedRecord {
    /// The record an untraced run would have produced ([`RunMetrics`] included —
    /// attaching the sink never changes them; `tests/trace_observer.rs` pins this).
    pub record: ExperimentRecord,
    /// Every [`brb_trace::TraceEvent`] the run emitted, in emission order.
    pub events: Vec<brb_trace::TraceEvent>,
    /// Send-time drop accounting per process (churn gating, link loss, behaviour).
    pub drop_counts: Vec<brb_trace::DropCounts>,
}

/// [`run_experiment_recorded`] with a [`brb_trace::VecSink`] attached: same metrics,
/// plus the full event trace and the per-process drop counters.
pub fn run_experiment_traced(params: &ExperimentParams, graph: &Graph) -> TracedRecord {
    let sink = std::sync::Arc::new(brb_trace::VecSink::new());
    let mut traced = run_experiment_sink(params, graph, Some(sink.clone()));
    traced.events = sink.take();
    traced
}

/// Shared body of [`run_experiment_recorded`] / [`run_experiment_traced`]: runs the
/// experiment with an optional trace sink attached to the simulation.
fn run_experiment_sink(
    params: &ExperimentParams,
    graph: &Graph,
    sink: Option<std::sync::Arc<dyn brb_trace::TraceSink>>,
) -> TracedRecord {
    assert_eq!(graph.node_count(), params.n, "graph size must match N");
    assert!(
        params.crashed <= params.f,
        "cannot crash more than f processes"
    );
    // A consensus experiment replaces the broadcast traffic entirely and always runs
    // through the DynStack wire-frame path (consensus needs the seq-aware DynEngine
    // interface between itself and the stack below), whatever the stack.
    if params.consensus.is_some() {
        return crate::consensus::run_consensus_sink(params, graph, sink);
    }
    match params.stack {
        // The paper's stack keeps its typed fast path: no frame encoding, no boxing.
        StackSpec::Bd => {
            // Flatten the adjacency once per run; every process then copies its own
            // (sorted) neighbor slice instead of walking the graph's per-node tree sets.
            let index = NeighborIndex::new(graph);
            let processes: Vec<BdProcess> = (0..params.n)
                .map(|i| BdProcess::new(i, params.config, index.neighbors(i).to_vec()))
                .collect();
            let config = params.config;
            let restart_index = NeighborIndex::new(graph);
            record_run(
                params,
                graph,
                processes,
                move |i| BdProcess::new(i, config, restart_index.neighbors(i).to_vec()),
                sink,
            )
        }
        // Every other stack goes through the boxed engine + wire codec, the same code
        // path the socket deployments drive. Topology-aware stacks share one graph copy.
        stack => {
            let shared = std::sync::Arc::new(graph.clone());
            let processes: Vec<_> = (0..params.n)
                .map(|i| stack.build_protocol_shared(&params.config, &shared, i))
                .collect();
            let config = params.config;
            record_run(
                params,
                graph,
                processes,
                move |i| stack.build_protocol_shared(&config, &shared, i),
                sink,
            )
        }
    }
}

/// Simulates the experiment's traffic — the paper's single broadcast from process 0, or
/// the full multi-broadcast workload when [`ExperimentParams::workload`] is set — over
/// prebuilt protocol instances and collects the metrics.
fn record_run<P: Protocol>(
    params: &ExperimentParams,
    graph: &Graph,
    processes: Vec<P>,
    restart_builder: impl FnMut(ProcessId) -> P + 'static,
    sink: Option<std::sync::Arc<dyn brb_trace::TraceSink>>,
) -> TracedRecord
where
    P::Message: Eq,
{
    let mut sim = Simulation::new(processes, params.delay, params.seed);
    if let Some(sink) = sink {
        sim.set_trace_sink(sink);
    }
    // Crash the `crashed` highest-numbered processes (never the source, process 0).
    for offset in 0..params.crashed {
        let victim = params.n - 1 - offset;
        sim.set_behavior(victim, Behavior::Crash);
    }
    // Explicit behaviour assignments come last, so they can refine the crash set.
    for (process, behavior) in &params.behaviors {
        sim.set_behavior(*process, behavior.clone());
    }
    if let Some(spec) = &params.churn {
        // Same compile seed as the run: one (params, seed) pair fully determines the
        // schedule, exactly like the workload expansion below.
        sim.set_churn(spec.compile(params.seed), graph.edges());
        sim.set_restart_builder(restart_builder);
    }
    match &params.workload {
        None => {
            let source: ProcessId = 0;
            sim.broadcast(source, Payload::filled(0xAB, params.payload_size));
            sim.run_to_quiescence();
        }
        Some(spec) => {
            // The schedule is a pure function of (spec, n, seed): sweep workers and
            // other backends expanding the same triple inject the same traffic.
            let schedule = spec.schedule(params.n, params.seed);
            run_workload(&mut sim, &schedule, spec.mode);
        }
    }

    let correct = sim.correct_processes();
    let stats = workload_stats(sim.metrics(), &correct);
    // A process counts as `delivered` when it delivered *every* injected broadcast; the
    // makespan is only reported when every correct process did. For single-broadcast
    // runs both definitions coincide with the paper's. A run that injected nothing
    // (e.g. a workload whose only source crashed) delivered nothing — report 0, not a
    // vacuous full count.
    let injected_ids: Vec<BroadcastId> = sim.metrics().injection_times.keys().copied().collect();
    let delivered = if injected_ids.is_empty() {
        0
    } else {
        correct
            .iter()
            .filter(|&&p| {
                injected_ids
                    .iter()
                    .all(|id| sim.metrics().delivery_times.contains_key(&(p, *id)))
            })
            .count()
    };
    let latency_ms =
        (stats.injected > 0 && stats.completed == stats.injected).then_some(stats.duration_ms);
    let peak_stored_paths = sim
        .processes()
        .iter()
        .map(|p| Protocol::stored_paths(p))
        .max()
        .unwrap_or(0)
        .max(sim.metrics().peak_stored_paths);
    let peak_state_bytes = sim
        .processes()
        .iter()
        .map(|p| p.state_bytes())
        .max()
        .unwrap_or(0)
        .max(sim.metrics().peak_state_bytes);
    let result = ExperimentResult {
        latency_ms,
        bytes: sim.metrics().bytes_sent,
        messages: sim.metrics().messages_sent,
        delivered,
        correct: correct.len(),
        peak_state_bytes,
        peak_stored_paths,
        gc_retired: sim.metrics().gc_retired,
        retained_bytes: sim.metrics().retained_bytes,
        workload: params.workload.is_some().then_some(stats),
        consensus: None,
    };
    let drop_counts = sim.drop_counts().to_vec();
    TracedRecord {
        record: ExperimentRecord {
            result,
            metrics: sim.into_metrics(),
        },
        events: Vec::new(),
        drop_counts,
    }
}

/// Runs the same experiment over several seeds and returns every result (the paper reports
/// averages of at least 5 runs per point).
pub fn run_experiment_repeated(params: &ExperimentParams, runs: usize) -> Vec<ExperimentResult> {
    (0..runs)
        .map(|i| {
            let mut p = params.clone();
            p.seed = params.seed.wrapping_add(i as u64);
            run_experiment(&p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(config: Config) -> ExperimentParams {
        ExperimentParams {
            n: 16,
            connectivity: 5,
            f: 2,
            crashed: 0,
            payload_size: 64,
            config,
            stack: StackSpec::Bd,
            delay: DelayModel::synchronous(),
            seed: 11,
            workload: None,
            behaviors: Vec::new(),
            churn: None,
            consensus: None,
        }
    }

    #[test]
    fn experiment_delivers_everywhere() {
        let r = run_experiment(&params(Config::bdopt_mbd1(16, 2)));
        assert!(r.complete());
        assert_eq!(r.correct, 16);
        assert!(r.latency_ms.unwrap() >= 100.0);
        assert!(r.bytes > 0);
        assert!(r.kilobytes() > 0.0);
        assert!(r.peak_state_bytes > 0);
    }

    #[test]
    fn experiment_with_crashes_still_delivers_to_correct_processes() {
        let mut p = params(Config::bdopt_mbd1(16, 2));
        p.crashed = 2;
        let r = run_experiment(&p);
        assert_eq!(r.correct, 14);
        assert!(
            r.complete(),
            "correct processes must deliver despite crashes"
        );
    }

    #[test]
    fn bandwidth_preset_reduces_bytes_on_same_graph() {
        let p_base = params(Config::bdopt_mbd1(16, 2));
        let graph = experiment_graph(16, 5, 3);
        let base = run_experiment_on_graph(&p_base, &graph);
        let p_bdw = params(Config::bandwidth_preset(16, 2));
        let bdw = run_experiment_on_graph(&p_bdw, &graph);
        assert!(base.complete() && bdw.complete());
        assert!(
            bdw.bytes <= base.bytes,
            "bdw. preset should not increase bytes: {} vs {}",
            bdw.bytes,
            base.bytes
        );
    }

    #[test]
    fn mbd1_reduces_bytes_vs_bdopt_on_same_graph() {
        let graph = experiment_graph(16, 5, 5);
        let mut p0 = params(Config::bdopt(16, 2));
        p0.payload_size = 1024;
        let mut p1 = params(Config::bdopt_mbd1(16, 2));
        p1.payload_size = 1024;
        let base = run_experiment_on_graph(&p0, &graph);
        let opt = run_experiment_on_graph(&p1, &graph);
        assert!(base.complete() && opt.complete());
        assert!(
            (opt.bytes as f64) < 0.5 * base.bytes as f64,
            "MBD.1 should at least halve the bytes with 1 KiB payloads: {} vs {}",
            opt.bytes,
            base.bytes
        );
    }

    #[test]
    fn repeated_runs_use_distinct_seeds() {
        let results = run_experiment_repeated(&params(Config::bdopt_mbd1(16, 2)), 3);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(ExperimentResult::complete));
    }

    #[test]
    #[should_panic(expected = "cannot crash")]
    fn too_many_crashes_are_rejected() {
        let mut p = params(Config::bdopt_mbd1(16, 2));
        p.crashed = 3;
        run_experiment(&p);
    }

    #[test]
    fn behavior_assignments_apply_to_the_simulation() {
        let mut p = params(Config::bdopt_mbd1(16, 2));
        p.behaviors = vec![
            (3, Behavior::Lossy(0.3)),
            (9, Behavior::SilentTowards(vec![1])),
        ];
        let r = run_experiment(&p);
        assert_eq!(r.correct, 14, "byzantine processes leave the correct set");
        assert!(r.complete(), "correct processes deliver despite the faults");
        assert!(r.bytes > 0);
    }

    #[test]
    fn asynchronous_experiment_completes() {
        let mut p = params(Config::latency_preset(16, 2));
        p.delay = DelayModel::asynchronous();
        let r = run_experiment(&p);
        assert!(r.complete());
    }

    #[test]
    fn alternative_stacks_run_through_the_experiment_runner() {
        // Every non-default stack goes through the DynStack (encoded frames) path; the
        // ones whose assumptions hold on a 5-regular random graph with f = 2 must still
        // deliver everywhere. (Bracha sees the simulator as a complete network — the
        // simulator imposes no topology — which matches its system model.)
        for stack in [
            StackSpec::BrachaRoutedDolev,
            StackSpec::Dolev,
            StackSpec::RoutedDolev,
            StackSpec::Bracha,
        ] {
            let p = params(Config::bdopt_mbd1(16, 2)).with_stack(stack);
            let r = run_experiment(&p);
            assert!(r.complete(), "{stack} must deliver everywhere");
            assert!(r.bytes > 0, "{stack} reports Table 3 bytes");
            assert!(r.latency_ms.unwrap() > 0.0, "{stack} reports latency");
        }
    }

    #[test]
    fn stack_choice_changes_the_traffic_profile() {
        let graph = experiment_graph(16, 5, 3);
        let bd = run_experiment_on_graph(&params(Config::bdopt_mbd1(16, 2)), &graph);
        let routed = run_experiment_on_graph(
            &params(Config::bdopt_mbd1(16, 2)).with_stack(StackSpec::BrachaRoutedDolev),
            &graph,
        );
        assert!(bd.complete() && routed.complete());
        assert_ne!(
            bd.messages, routed.messages,
            "different stacks produce different message counts"
        );
    }

    #[test]
    fn workload_experiments_fill_workload_stats() {
        let mut p = params(Config::bdopt_mbd1(16, 2));
        p.workload = Some(brb_workload::WorkloadSpec::constant_rate(10_000, 8));
        let r = run_experiment(&p);
        assert!(r.complete(), "all 8 broadcasts reach all 16 processes");
        let stats = r.workload.expect("workload runs fill stats");
        assert_eq!(stats.injected, 8);
        assert!(stats.all_completed());
        assert!(r.latency_ms.unwrap() > 0.0, "makespan is reported");
        assert!(stats.throughput_per_sec() > 0.0);
    }

    #[test]
    fn workload_with_only_crashed_sources_reports_zero_delivered() {
        // Every injection targets the crash victim (the highest id), so nothing is ever
        // broadcast: the result must report 0 delivered, not a vacuous full count.
        let mut p = params(Config::bdopt_mbd1(16, 2));
        p.crashed = 1;
        p.workload = Some(
            brb_workload::WorkloadSpec::constant_rate(1_000, 4)
                .with_sources(brb_workload::SourceSelection::Single { source: 15 }),
        );
        let r = run_experiment(&p);
        assert_eq!(r.delivered, 0);
        assert_eq!(r.correct, 15);
        assert!(!r.complete());
        assert_eq!(r.latency_ms, None);
        let stats = r.workload.expect("workload runs fill stats");
        assert_eq!(stats.injected, 0, "crashed-source injections are no-ops");
    }

    #[test]
    fn rc_only_stacks_report_their_memory_proxies() {
        let p = params(Config::bdopt(16, 2)).with_stack(StackSpec::Dolev);
        let r = run_experiment(&p);
        assert!(r.complete());
        assert!(r.peak_state_bytes > 0, "Dolev tracks per-content state");
    }
}
