//! Checkers for the BRB properties over finished executions.
//!
//! The paper's Sec. 3 defines Byzantine Reliable Broadcast through four properties —
//! BRB-Validity, BRB-No duplication, BRB-Integrity and BRB-Agreement. The integration and
//! property tests of this repository drive a protocol to quiescence (in the simulator, the
//! threaded runtime or the TCP deployment) and then hand the per-process delivery logs to
//! the checkers of this module, which either certify the execution or return a precise
//! [`Violation`] describing which property broke, where.
//!
//! The checkers are deliberately independent from the protocol implementations: they look
//! only at what was broadcast by correct processes ([`BroadcastRecord`]) and what each
//! process delivered, so the same functions validate the flooding Bracha–Dolev engine, the
//! routed variant, Bracha–CPA, and any future protocol added to the repository.

use std::collections::{HashMap, HashSet};

use brb_core::types::{BroadcastId, Delivery, Payload, ProcessId};

/// A broadcast performed by a *correct* process during the execution under test.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastRecord {
    /// The correct process that broadcast.
    pub source: ProcessId,
    /// The broadcast identifier it used.
    pub id: BroadcastId,
    /// The payload it broadcast.
    pub payload: Payload,
}

impl BroadcastRecord {
    /// Creates a record of a correct broadcast.
    pub fn new(source: ProcessId, id: BroadcastId, payload: Payload) -> Self {
        Self {
            source,
            id,
            payload,
        }
    }
}

/// A violation of one of the BRB properties.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// BRB-Validity: a correct process broadcast `id` but correct process `missing_at`
    /// never delivered it.
    Validity {
        /// The violated broadcast.
        id: BroadcastId,
        /// The correct process that failed to deliver it.
        missing_at: ProcessId,
    },
    /// BRB-No duplication: correct process `process` delivered `id` more than once.
    Duplication {
        /// The duplicated broadcast.
        id: BroadcastId,
        /// The process that delivered it twice.
        process: ProcessId,
        /// How many times it was delivered.
        count: usize,
    },
    /// BRB-Integrity: correct process `process` delivered a payload for `id`, whose source
    /// is correct, that the source never broadcast.
    Integrity {
        /// The forged broadcast identifier.
        id: BroadcastId,
        /// The process that delivered the forged payload.
        process: ProcessId,
    },
    /// BRB-Agreement: correct processes `a` and `b` disagree on `id` — either only one of
    /// them delivered it, or they delivered different payloads.
    Agreement {
        /// The broadcast the two processes disagree on.
        id: BroadcastId,
        /// First process.
        a: ProcessId,
        /// Second process.
        b: ProcessId,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Validity { id, missing_at } => {
                write!(f, "validity violated: correct broadcast {id} never delivered at process {missing_at}")
            }
            Violation::Duplication { id, process, count } => {
                write!(
                    f,
                    "no-duplication violated: process {process} delivered {id} {count} times"
                )
            }
            Violation::Integrity { id, process } => {
                write!(f, "integrity violated: process {process} delivered a payload for {id} that its correct source never broadcast")
            }
            Violation::Agreement { id, a, b } => {
                write!(
                    f,
                    "agreement violated: processes {a} and {b} disagree on {id}"
                )
            }
        }
    }
}

/// The delivery logs of an execution: `deliveries[p]` lists what process `p` delivered, in
/// order. Only the entries of correct processes are examined.
pub type DeliveryLogs<'a> = &'a [&'a [Delivery]];

/// Checks BRB-Validity: every broadcast performed by a correct process was delivered by
/// every correct process.
///
/// # Errors
///
/// Returns the first [`Violation::Validity`] found.
pub fn check_validity(
    logs: DeliveryLogs<'_>,
    correct: &[ProcessId],
    broadcasts: &[BroadcastRecord],
) -> Result<(), Violation> {
    for record in broadcasts {
        for &p in correct {
            let found = logs[p]
                .iter()
                .any(|d| d.id == record.id && d.payload == record.payload);
            if !found {
                return Err(Violation::Validity {
                    id: record.id,
                    missing_at: p,
                });
            }
        }
    }
    Ok(())
}

/// Checks BRB-No duplication: no correct process delivered the same broadcast identifier
/// more than once.
///
/// # Errors
///
/// Returns the first [`Violation::Duplication`] found.
pub fn check_no_duplication(
    logs: DeliveryLogs<'_>,
    correct: &[ProcessId],
) -> Result<(), Violation> {
    for &p in correct {
        let mut counts: HashMap<BroadcastId, usize> = HashMap::new();
        for d in logs[p] {
            *counts.entry(d.id).or_default() += 1;
        }
        if let Some((&id, &count)) = counts.iter().find(|(_, &c)| c > 1) {
            return Err(Violation::Duplication {
                id,
                process: p,
                count,
            });
        }
    }
    Ok(())
}

/// Checks BRB-Integrity for correct sources: if a correct process delivered a payload for a
/// broadcast whose source is correct, then that source did broadcast exactly that payload.
/// (For Byzantine sources the property is vacuous — any payload may be attributed to them.)
///
/// # Errors
///
/// Returns the first [`Violation::Integrity`] found.
pub fn check_integrity(
    logs: DeliveryLogs<'_>,
    correct: &[ProcessId],
    broadcasts: &[BroadcastRecord],
) -> Result<(), Violation> {
    let correct_set: HashSet<ProcessId> = correct.iter().copied().collect();
    for &p in correct {
        for d in logs[p] {
            if !correct_set.contains(&d.id.source) {
                continue;
            }
            let legitimate = broadcasts
                .iter()
                .any(|r| r.id == d.id && r.payload == d.payload);
            if !legitimate {
                return Err(Violation::Integrity {
                    id: d.id,
                    process: p,
                });
            }
        }
    }
    Ok(())
}

/// Checks BRB-Agreement: for every broadcast identifier delivered by some correct process,
/// every correct process delivered it, with the same payload.
///
/// # Errors
///
/// Returns the first [`Violation::Agreement`] found.
pub fn check_agreement(logs: DeliveryLogs<'_>, correct: &[ProcessId]) -> Result<(), Violation> {
    // Collect, for each id, the payload delivered by each correct process.
    let mut per_id: HashMap<BroadcastId, Vec<(ProcessId, &Payload)>> = HashMap::new();
    for &p in correct {
        for d in logs[p] {
            per_id.entry(d.id).or_default().push((p, &d.payload));
        }
    }
    for (id, deliveries) in &per_id {
        let (first_p, first_payload) = deliveries[0];
        for &(p, payload) in &deliveries[1..] {
            if payload != first_payload {
                return Err(Violation::Agreement {
                    id: *id,
                    a: first_p,
                    b: p,
                });
            }
        }
        if deliveries.len() != correct.len() {
            let delivered: HashSet<ProcessId> = deliveries.iter().map(|(p, _)| *p).collect();
            let missing = correct
                .iter()
                .copied()
                .find(|p| !delivered.contains(p))
                .expect("some correct process is missing");
            return Err(Violation::Agreement {
                id: *id,
                a: first_p,
                b: missing,
            });
        }
    }
    Ok(())
}

/// Checks all four BRB properties at once.
///
/// # Errors
///
/// Returns the first violation found, checking validity, no-duplication, integrity and
/// agreement in that order.
pub fn check_brb(
    logs: DeliveryLogs<'_>,
    correct: &[ProcessId],
    broadcasts: &[BroadcastRecord],
) -> Result<(), Violation> {
    check_validity(logs, correct, broadcasts)?;
    check_no_duplication(logs, correct)?;
    check_integrity(logs, correct, broadcasts)?;
    check_agreement(logs, correct)
}

/// Convenience: collects the delivery slices of a set of protocol instances and runs
/// [`check_brb`] on them.
///
/// # Errors
///
/// Returns the first violation found.
pub fn check_brb_processes<P: brb_core::protocol::Protocol>(
    processes: &[P],
    correct: &[ProcessId],
    broadcasts: &[BroadcastRecord],
) -> Result<(), Violation> {
    let logs: Vec<&[Delivery]> = processes.iter().map(|p| p.deliveries()).collect();
    check_brb(&logs, correct, broadcasts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delivery(source: ProcessId, seq: u32, payload: &str) -> Delivery {
        Delivery {
            id: BroadcastId::new(source, seq),
            payload: Payload::from(payload),
        }
    }

    #[test]
    fn clean_execution_passes_all_checks() {
        let logs_owned = [
            vec![delivery(0, 0, "m")],
            vec![delivery(0, 0, "m")],
            vec![delivery(0, 0, "m")],
        ];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let correct = [0, 1, 2];
        let broadcasts = [BroadcastRecord::new(
            0,
            BroadcastId::new(0, 0),
            Payload::from("m"),
        )];
        assert_eq!(check_brb(&logs, &correct, &broadcasts), Ok(()));
    }

    #[test]
    fn missing_delivery_violates_validity() {
        let logs_owned = [vec![delivery(0, 0, "m")], vec![], vec![delivery(0, 0, "m")]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let correct = [0, 1, 2];
        let broadcasts = [BroadcastRecord::new(
            0,
            BroadcastId::new(0, 0),
            Payload::from("m"),
        )];
        let err = check_validity(&logs, &correct, &broadcasts).unwrap_err();
        assert_eq!(
            err,
            Violation::Validity {
                id: BroadcastId::new(0, 0),
                missing_at: 1
            }
        );
        assert!(err.to_string().contains("validity"));
    }

    #[test]
    fn double_delivery_violates_no_duplication() {
        let logs_owned = [vec![delivery(0, 0, "m"), delivery(0, 0, "m")]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let err = check_no_duplication(&logs, &[0]).unwrap_err();
        assert_eq!(
            err,
            Violation::Duplication {
                id: BroadcastId::new(0, 0),
                process: 0,
                count: 2
            }
        );
        assert!(err.to_string().contains("no-duplication"));
    }

    #[test]
    fn forged_payload_from_correct_source_violates_integrity() {
        // Process 1 delivers a payload for (0, 0) that correct process 0 never broadcast.
        let logs_owned = [vec![], vec![delivery(0, 0, "forged")]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let correct = [0, 1];
        let broadcasts = [BroadcastRecord::new(
            0,
            BroadcastId::new(0, 0),
            Payload::from("real"),
        )];
        let err = check_integrity(&logs, &correct, &broadcasts).unwrap_err();
        assert_eq!(
            err,
            Violation::Integrity {
                id: BroadcastId::new(0, 0),
                process: 1
            }
        );
        assert!(err.to_string().contains("integrity"));
    }

    #[test]
    fn integrity_is_vacuous_for_byzantine_sources() {
        // The source (process 9) is not in the correct set, so any delivered payload
        // attributed to it is acceptable from the integrity standpoint.
        let logs_owned = [
            vec![delivery(9, 0, "whatever")],
            vec![delivery(9, 0, "whatever")],
        ];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let correct = [0, 1];
        assert_eq!(check_integrity(&logs, &correct, &[]), Ok(()));
    }

    #[test]
    fn partial_delivery_violates_agreement() {
        // Byzantine source 9: only process 0 delivers. Agreement requires all or none.
        let logs_owned = [vec![delivery(9, 0, "m")], vec![]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let err = check_agreement(&logs, &[0, 1]).unwrap_err();
        assert_eq!(
            err,
            Violation::Agreement {
                id: BroadcastId::new(9, 0),
                a: 0,
                b: 1
            }
        );
        assert!(err.to_string().contains("agreement"));
    }

    #[test]
    fn conflicting_payloads_violate_agreement() {
        let logs_owned = [vec![delivery(9, 0, "m1")], vec![delivery(9, 0, "m2")]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let err = check_agreement(&logs, &[0, 1]).unwrap_err();
        assert!(matches!(err, Violation::Agreement { .. }));
    }

    #[test]
    fn wrong_payload_for_correct_broadcast_violates_validity() {
        // Every correct process delivered *something* for (0, 0), but process 1 delivered
        // the wrong payload: validity demands the broadcast payload itself.
        let logs_owned = [vec![delivery(0, 0, "m")], vec![delivery(0, 0, "other")]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let correct = [0, 1];
        let broadcasts = [BroadcastRecord::new(
            0,
            BroadcastId::new(0, 0),
            Payload::from("m"),
        )];
        let err = check_validity(&logs, &correct, &broadcasts).unwrap_err();
        assert_eq!(
            err,
            Violation::Validity {
                id: BroadcastId::new(0, 0),
                missing_at: 1
            }
        );
    }

    #[test]
    fn triple_delivery_reports_exact_count() {
        let logs_owned = [vec![
            delivery(4, 2, "m"),
            delivery(4, 2, "m"),
            delivery(4, 2, "m"),
        ]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let err = check_no_duplication(&logs, &[0]).unwrap_err();
        assert_eq!(
            err,
            Violation::Duplication {
                id: BroadcastId::new(4, 2),
                process: 0,
                count: 3
            }
        );
    }

    #[test]
    fn duplication_check_distinguishes_broadcast_ids() {
        // Two deliveries with the same source but different sequence numbers are two
        // different broadcasts, not a duplication.
        let logs_owned = [vec![delivery(0, 0, "a"), delivery(0, 1, "b")]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        assert_eq!(check_no_duplication(&logs, &[0]), Ok(()));
    }

    #[test]
    fn integrity_accepts_only_the_exact_broadcast_payload() {
        // A forged *sequence number* from a correct source is an integrity violation even
        // if the payload bytes match some other legitimate broadcast.
        let logs_owned = [vec![delivery(0, 7, "real")], vec![]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let correct = [0, 1];
        let broadcasts = [BroadcastRecord::new(
            0,
            BroadcastId::new(0, 0),
            Payload::from("real"),
        )];
        let err = check_integrity(&logs, &correct, &broadcasts).unwrap_err();
        assert_eq!(
            err,
            Violation::Integrity {
                id: BroadcastId::new(0, 7),
                process: 0
            }
        );
    }

    #[test]
    fn check_brb_reports_properties_in_documented_order() {
        // An execution violating validity AND agreement must surface validity first,
        // matching check_brb's documented checking order.
        let logs_owned = [vec![delivery(0, 0, "m")], vec![]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let correct = [0, 1];
        let broadcasts = [BroadcastRecord::new(
            0,
            BroadcastId::new(0, 0),
            Payload::from("m"),
        )];
        let err = check_brb(&logs, &correct, &broadcasts).unwrap_err();
        assert!(matches!(err, Violation::Validity { .. }), "got {err:?}");
        // For a Byzantine source (9 is not in the correct set) integrity is vacuous, so a
        // partial delivery surfaces as an agreement violation.
        let logs_owned = [vec![delivery(9, 0, "m")], vec![]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let err = check_brb(&logs, &correct, &[]).unwrap_err();
        assert!(matches!(err, Violation::Agreement { .. }), "got {err:?}");
    }

    #[test]
    fn empty_execution_trivially_satisfies_everything() {
        let logs_owned: Vec<Vec<Delivery>> = vec![vec![], vec![]];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        assert_eq!(check_brb(&logs, &[0, 1], &[]), Ok(()));
        // No correct processes at all: all properties are vacuous.
        assert_eq!(check_brb(&logs, &[], &[]), Ok(()));
    }

    #[test]
    fn all_violation_variants_have_distinct_display_messages() {
        let variants = [
            Violation::Validity {
                id: BroadcastId::new(0, 0),
                missing_at: 1,
            },
            Violation::Duplication {
                id: BroadcastId::new(0, 0),
                process: 1,
                count: 2,
            },
            Violation::Integrity {
                id: BroadcastId::new(0, 0),
                process: 1,
            },
            Violation::Agreement {
                id: BroadcastId::new(0, 0),
                a: 0,
                b: 1,
            },
        ];
        let messages: std::collections::BTreeSet<String> =
            variants.iter().map(|v| v.to_string()).collect();
        assert_eq!(messages.len(), variants.len());
    }

    #[test]
    fn check_brb_processes_collects_engine_logs() {
        // Drive two real Bracha engines to a hand-built violating state: only one of them
        // delivers, which check_brb_processes must flag as an agreement violation.
        use brb_core::bracha::BrachaProcess;
        use brb_core::protocol::Protocol;

        let mut a = BrachaProcess::new(0, 4, 1);
        let b = BrachaProcess::new(1, 4, 1);
        let actions = a.broadcast(Payload::from("m"));
        assert!(!actions.is_empty());
        // Feed process 0's own echo/ready rounds back to itself via three echoing peers so
        // that it delivers while process 1 hears nothing.
        let mut queue: Vec<_> = actions;
        let mut steps = 0;
        while let Some(action) = queue.pop() {
            if let brb_core::types::Action::Send { to: _, message } = action {
                for sender in 1..4 {
                    queue.extend(a.handle_message(sender, message.clone()));
                }
            }
            steps += 1;
            assert!(steps < 10_000, "bracha engine failed to quiesce");
        }
        assert_eq!(a.deliveries().len(), 1, "process 0 must deliver");
        let processes = [a, b];
        let broadcasts = [BroadcastRecord::new(
            0,
            BroadcastId::new(0, 0),
            Payload::from("m"),
        )];
        let outcome = check_brb_processes(&processes, &[0, 1], &broadcasts);
        assert!(outcome.is_err(), "partial delivery must be rejected");
    }

    #[test]
    fn byzantine_process_logs_are_ignored() {
        // Process 2 (Byzantine) has a nonsensical log; the correct processes agree.
        let logs_owned = [
            vec![delivery(0, 0, "m")],
            vec![delivery(0, 0, "m")],
            vec![delivery(0, 0, "junk"), delivery(0, 0, "junk")],
        ];
        let logs: Vec<&[Delivery]> = logs_owned.iter().map(Vec::as_slice).collect();
        let correct = [0, 1];
        let broadcasts = [BroadcastRecord::new(
            0,
            BroadcastId::new(0, 0),
            Payload::from("m"),
        )];
        assert_eq!(check_brb(&logs, &correct, &broadcasts), Ok(()));
    }
}
