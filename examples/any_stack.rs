//! Any stack, any backend: the `brb_core::stack` API in one example.
//!
//! Picks a protocol stack by name (`--stack NAME`, or every stack when omitted) and runs
//! the *same* broadcast through the three execution back ends — the deterministic
//! discrete-event simulator, the thread-per-process channel runtime, and real TCP sockets
//! over loopback — printing the delivery count and Table 3 byte accounting of each.
//!
//! Run with: `cargo run --release --example any_stack -- --stack bracha-routed-dolev`

use std::time::Duration;

use brb_core::config::Config;
use brb_core::stack::{DynStack, StackSpec};
use brb_core::types::Payload;
use brb_graph::generate;
use brb_net::run_tcp_broadcast;
use brb_runtime::deployment::run_threaded_broadcast;
use brb_sim::{DelayModel, Simulation};

fn main() -> std::io::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let chosen: Vec<StackSpec> = match args.iter().position(|a| a == "--stack") {
        Some(i) => {
            let name = args.get(i + 1).expect("--stack takes a name");
            vec![name.parse().unwrap_or_else(|e| panic!("{e}"))]
        }
        None => StackSpec::ALL.to_vec(),
    };

    let n = 10;
    println!("stack                 backend   delivered   messages      bytes");
    println!("--------------------------------------------------------------");
    for stack in chosen {
        // Bracha's system model needs a fully connected topology; every other stack runs
        // on the paper's Figure 1 example graph (3-connected, 10 processes).
        let graph = if stack.requires_full_connectivity() {
            generate::complete(n)
        } else {
            generate::figure1_example()
        };
        // The CPA stacks reuse `f` as the local fault bound `t`; t = 0 floods.
        let config = match stack {
            StackSpec::Cpa | StackSpec::BrachaCpa => Config::plain(n, 0),
            StackSpec::Bracha => Config::plain(n, 3),
            _ => Config::bdopt_mbd1(n, 1),
        };
        let payload = Payload::filled(0x5A, 256);

        // Simulator: the boxed engine behind the Protocol adapter.
        let processes: Vec<DynStack> = (0..n)
            .map(|i| stack.build_protocol(&config, &graph, i))
            .collect();
        let mut sim = Simulation::new(processes, DelayModel::synchronous(), 1);
        sim.broadcast(0, payload.clone());
        sim.run_to_quiescence();
        let delivered = sim
            .processes()
            .iter()
            .filter(|p| !brb_core::Protocol::deliveries(*p).is_empty())
            .count();
        println!(
            "{:<21} {:<9} {:>9}   {:>8} {:>10}",
            stack.name(),
            "sim",
            delivered,
            sim.metrics().messages_sent,
            sim.metrics().bytes_sent
        );

        // Channel runtime: one OS thread per process.
        let report = run_threaded_broadcast(
            &graph,
            config,
            stack,
            payload.clone(),
            0,
            &[],
            Duration::from_secs(20),
        );
        println!(
            "{:<21} {:<9} {:>9}   {:>8} {:>10}",
            stack.name(),
            "runtime",
            report
                .nodes
                .iter()
                .filter(|node| !node.deliveries.is_empty())
                .count(),
            report.total_messages(),
            report.total_bytes()
        );

        // TCP deployment: real loopback sockets.
        let report = run_tcp_broadcast(
            &graph,
            config,
            stack,
            payload.clone(),
            0,
            &[],
            Duration::from_secs(20),
        )?;
        println!(
            "{:<21} {:<9} {:>9}   {:>8} {:>10}",
            stack.name(),
            "tcp",
            report
                .nodes
                .iter()
                .filter(|node| !node.deliveries.is_empty())
                .count(),
            report.total_messages(),
            report.total_bytes()
        );
    }
    println!("\nOne engine API, three backends: every stack is one flag away.");
    Ok(())
}
