//! Cross-backend integration test: the same protocol engine and configuration deliver the
//! same broadcast on all three execution back ends — the deterministic discrete-event
//! simulator, the thread-per-process channel runtime, and the TCP socket deployment.
//!
//! The paper's evaluation runs on one back end only (containers + TCP); keeping the three
//! back ends in agreement is what justifies reading the simulator's latency and bandwidth
//! figures as predictions for the deployed system.

use std::time::Duration;

use brb_core::config::Config;
use brb_core::types::{BroadcastId, Payload};
use brb_core::BdProcess;
use brb_graph::generate;
use brb_net::run_tcp_broadcast;
use brb_runtime::deployment::run_threaded_broadcast;
use brb_sim::{DelayModel, Simulation};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn all_three_backends_deliver_the_same_broadcast() {
    let (n, k, f) = (12, 5, 2);
    let mut rng = StdRng::seed_from_u64(2021);
    let graph = generate::random_regular_connected(n, k, 2 * f + 1, &mut rng).unwrap();
    let config = Config::bandwidth_preset(n, f);
    let payload = Payload::from("one engine, three backends");
    let source = 4;
    let id = BroadcastId::new(source, 0);

    // 1. Discrete-event simulator.
    let processes: Vec<BdProcess> = (0..n)
        .map(|i| BdProcess::new(i, config, graph.neighbors_vec(i)))
        .collect();
    let mut sim = Simulation::new(processes, DelayModel::synchronous(), 1);
    sim.broadcast(source, payload.clone());
    sim.run_to_quiescence();
    let correct = sim.correct_processes();
    assert_eq!(sim.metrics().delivered_count(id, &correct), n);

    // 2. Thread-per-process runtime over crossbeam channels.
    let threaded = run_threaded_broadcast(
        &graph,
        config,
        payload.clone(),
        source,
        &[],
        Duration::from_secs(20),
    );
    let everyone: Vec<usize> = (0..n).collect();
    assert!(threaded.all_delivered(&everyone, 1));

    // 3. TCP sockets over loopback.
    let tcp = run_tcp_broadcast(
        &graph,
        config,
        payload.clone(),
        source,
        &[],
        Duration::from_secs(20),
    )
    .expect("TCP deployment starts");
    assert!(tcp.all_delivered(&everyone, 1));

    // Every backend attributes the delivery to the same broadcast identifier and payload.
    for node in threaded.nodes.iter().chain(tcp.nodes.iter()) {
        assert_eq!(node.deliveries[0].id, id);
        assert_eq!(node.deliveries[0].payload, payload);
    }
}

#[test]
fn tcp_backend_tolerates_a_crashed_process_like_the_simulator() {
    let (n, f) = (10, 1);
    let graph = generate::figure1_example();
    let config = Config::latency_preset(n, f);
    let payload = Payload::filled(0x7E, 512);
    let crashed = vec![6usize];

    // Simulator prediction: all correct processes deliver.
    let processes: Vec<BdProcess> = (0..n)
        .map(|i| BdProcess::new(i, config, graph.neighbors_vec(i)))
        .collect();
    let mut sim = Simulation::new(processes, DelayModel::synchronous(), 4);
    sim.set_behavior(6, brb_sim::Behavior::Crash);
    sim.broadcast(0, payload.clone());
    sim.run_to_quiescence();
    let sim_correct = sim.correct_processes();
    assert_eq!(
        sim.metrics()
            .delivered_count(BroadcastId::new(0, 0), &sim_correct),
        n - 1
    );

    // TCP deployment observation.
    let report = run_tcp_broadcast(
        &graph,
        config,
        payload.clone(),
        0,
        &crashed,
        Duration::from_secs(20),
    )
    .expect("TCP deployment starts");
    let correct: Vec<usize> = (0..n).filter(|p| !crashed.contains(p)).collect();
    assert!(report.all_delivered(&correct, 1));
    assert!(report.nodes[6].deliveries.is_empty());
    assert!(report.total_bytes() > 0);
}
