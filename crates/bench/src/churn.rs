//! The churn experiment axis: scheduled link/partition/restart events as sweep rows.
//!
//! The paper evaluates BRB on *static* partially connected topologies; this harness adds
//! the dynamic counterpart — every [`ChurnSpec`] scenario (link flap, partition/heal,
//! node restart, per-link delay override) replayed against the paper's single-broadcast
//! experiment, plus the same mixed schedule on the non-regular topology families
//! (planar grid, geometric random graph, bounded-degree expander) that model the
//! deployments where churn actually happens.
//!
//! Every row runs on the discrete-event simulator: the scenario rows go through the
//! parallel sweep engine (so they are worker-count invariant and the CI smoke job can
//! byte-diff the CSV between 1 and 4 workers), the family rows through
//! [`run_experiment_recorded`] on deterministically generated graphs. The schedules are
//! placed so that completeness is topology-guaranteed — a downed edge always leaves the
//! `f + 1` disjoint paths the Dolev layer needs — which is what makes `delivered` a
//! deterministic column rather than a race.

use brb_core::stack::StackSpec;
use brb_graph::connectivity::is_k_connected;
use brb_graph::{families, Graph};
use brb_sim::churn::{ChurnAction, ChurnSpec};
use brb_sim::experiment::{experiment_graph, run_experiment_recorded};
use brb_sim::{run_sweep, DelayModel, ExperimentSpec};

use crate::{experiment, Scale};

use brb_core::config::Config;

/// One row of the churn matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPoint {
    /// Scenario name (e.g. `"flap"`), the CSV `behavior` column.
    pub scenario: String,
    /// Topology label (`"regular"` for the scenario rows, the family name otherwise).
    pub label: String,
    /// Number of processes.
    pub n: usize,
    /// Correct processes that delivered the broadcast.
    pub delivered: usize,
    /// Number of correct processes.
    pub correct: usize,
    /// Total messages transmitted.
    pub messages: usize,
    /// Total bytes transmitted.
    pub bytes: usize,
    /// Number of churn events the run applied.
    pub churn_events: usize,
}

/// The scenario list: one schedule per churn action family, timed so the single
/// broadcast (injected at `t = 0`, quiescent within ~100 ms of virtual time) meets the
/// flap and the delay override in flight, and the partition/heal/restart afterwards.
fn scenarios(flaky: (usize, usize), n: usize) -> Vec<(&'static str, Option<ChurnSpec>)> {
    let (a, b) = flaky;
    vec![
        ("none", None),
        (
            "flap",
            Some(ChurnSpec::new().flap(a, b, 5_000, 40_000, 10_000, 2)),
        ),
        (
            "partition-heal",
            Some(
                ChurnSpec::new()
                    .at(
                        500_000,
                        ChurnAction::Partition {
                            side: (0..n / 3).collect(),
                        },
                    )
                    .at(600_000, ChurnAction::Heal),
            ),
        ),
        (
            "restart",
            Some(ChurnSpec::new().at(700_000, ChurnAction::NodeRestart { process: n - 1 })),
        ),
        (
            "link-delay",
            Some(ChurnSpec::new().at(
                0,
                ChurnAction::SetLinkDelay {
                    from: a,
                    to: b,
                    extra_micros: 5_000,
                },
            )),
        ),
    ]
}

/// The mixed schedule the family rows replay: a flap riding the dissemination, then a
/// partition/heal cycle and a restart in the quiescent tail (the same shape as the
/// committed `bd_planar_grid_churn` golden).
fn mixed_spec(flaky: (usize, usize), n: usize) -> ChurnSpec {
    ChurnSpec::new()
        .flap(flaky.0, flaky.1, 5_000, 40_000, 10_000, 1)
        .at(
            500_000,
            ChurnAction::Partition {
                side: (0..n / 4).collect(),
            },
        )
        .at(550_000, ChurnAction::Heal)
        .at(600_000, ChurnAction::NodeRestart { process: n - 1 })
}

/// The non-regular topology families, generated as pure functions of the seed. The
/// random families are re-seeded deterministically until 3-connected, so the flap
/// (which costs one edge) always leaves the two disjoint paths `f = 1` needs.
fn family_graphs(seed: u64) -> Vec<(&'static str, Graph)> {
    let geometric = (0..)
        .map(|i| families::geometric_random_graph(20, 0.35, seed + i))
        .find(|g| is_k_connected(g, 3))
        .expect("some seed yields a 3-connected geometric graph");
    let expander = (0..)
        .map(|i| {
            families::bounded_degree_expander(20, 4, seed + i)
                .expect("n = 20, d = 4 is a feasible expander")
        })
        .find(|g| is_k_connected(g, 3))
        .expect("some seed yields a 3-connected expander");
    vec![
        ("planar-grid", families::planar_grid(5, 5)),
        ("geometric", geometric),
        ("expander", expander),
    ]
}

/// Runs the churn matrix: every scenario on the paper's random regular topology through
/// the sweep engine, then the mixed schedule on each topology family.
pub fn run_churn_matrix(
    scale: Scale,
    asynchronous: bool,
    workers: usize,
    stack: StackSpec,
) -> Vec<ChurnPoint> {
    let (n, k, f) = match scale {
        Scale::Quick => (10, 4, 1),
        Scale::Paper => (20, 7, 2),
    };
    let graph_seed = 29_000 + (n * k) as u64;
    let delay = if asynchronous {
        DelayModel::asynchronous()
    } else {
        DelayModel::synchronous()
    };
    let config = Config::bdopt_mbd1(n, f);
    let payload = 64;
    let flaky = experiment_graph(n, k, graph_seed).edges()[0];

    // Scenario rows, through the sweep engine (bit-identical for any worker count).
    let named = scenarios(flaky, n);
    let specs: Vec<ExperimentSpec> = named
        .iter()
        .map(|(name, churn)| {
            let mut params = experiment(n, k, f, payload, config, delay, 1).with_stack(stack);
            if let Some(spec) = churn {
                params = params.with_churn(spec.clone());
            }
            ExperimentSpec::new((*name).to_string(), graph_seed, params)
        })
        .collect();
    let mut points: Vec<ChurnPoint> = scenarios(flaky, n)
        .into_iter()
        .zip(run_sweep(&specs, workers))
        .map(|((name, _), outcome)| {
            let r = &outcome.record.result;
            ChurnPoint {
                scenario: name.to_string(),
                label: "regular".to_string(),
                n,
                delivered: r.delivered,
                correct: r.correct,
                messages: r.messages,
                bytes: r.bytes,
                churn_events: outcome.record.metrics.churn_events.len(),
            }
        })
        .collect();

    // Family rows: the mixed schedule on each deterministic non-regular topology,
    // always at f = 1 (the families fix their own sizes and connectivity floors).
    for (family, graph) in family_graphs(graph_seed) {
        let fn_ = graph.node_count();
        let fconfig = Config::bdopt_mbd1(fn_, 1);
        let fflaky = graph.edges()[0];
        let params = experiment(fn_, 3, 1, payload, fconfig, delay, 1)
            .with_stack(stack)
            .with_churn(mixed_spec(fflaky, fn_));
        let record = run_experiment_recorded(&params, &graph);
        let r = &record.result;
        points.push(ChurnPoint {
            scenario: "mixed".to_string(),
            label: family.to_string(),
            n: fn_,
            delivered: r.delivered,
            correct: r.correct,
            messages: r.messages,
            bytes: r.bytes,
            churn_events: record.metrics.churn_events.len(),
        });
    }

    print_points(
        &format!("Churn matrix — stack={stack}, N={n}, k={k}, f={f}, one broadcast/point"),
        &points,
    );
    points
}

fn print_points(title: &str, points: &[ChurnPoint]) {
    println!("# {title}");
    println!(
        "{:<16} {:<12} {:>4} {:>10} {:>8} {:>10} {:>12} {:>7}",
        "scenario", "topology", "n", "delivered", "correct", "messages", "bytes", "events"
    );
    for p in points {
        println!(
            "{:<16} {:<12} {:>4} {:>10} {:>8} {:>10} {:>12} {:>7}",
            p.scenario, p.label, p.n, p.delivered, p.correct, p.messages, p.bytes, p.churn_events
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_churn_matrix_delivers_everywhere() {
        let points = run_churn_matrix(Scale::Quick, false, 2, StackSpec::Bd);
        assert_eq!(points.len(), 5 + 3, "5 scenarios + 3 topology families");
        for p in &points {
            assert_eq!(
                p.delivered, p.correct,
                "{} on {}: every correct process must deliver",
                p.scenario, p.label
            );
            assert!(p.messages > 0, "{}", p.scenario);
            if p.scenario == "none" {
                assert_eq!(p.churn_events, 0);
            } else {
                assert!(p.churn_events > 0, "{} must apply events", p.scenario);
            }
        }
    }

    #[test]
    fn churn_matrix_is_worker_count_invariant() {
        let a = run_churn_matrix(Scale::Quick, false, 1, StackSpec::Bd);
        let b = run_churn_matrix(Scale::Quick, false, 4, StackSpec::Bd);
        assert_eq!(a, b);
    }
}
