//! Quorum arithmetic of Bracha's protocol and the MBD.11 role assignment.

use crate::types::ProcessId;

/// Maximum number of Byzantine processes tolerated by Bracha's protocol for `n` processes
/// (`f < n/3`, i.e. `f <= ⌊(n-1)/3⌋`).
pub fn max_faults(n: usize) -> usize {
    if n == 0 {
        0
    } else {
        (n - 1) / 3
    }
}

/// Number of ECHO messages required before a process sends its READY message:
/// `⌈(N + f + 1) / 2⌉`.
pub fn echo_quorum(n: usize, f: usize) -> usize {
    (n + f + 1).div_ceil(2)
}

/// Number of READY messages required before a process delivers: `2f + 1`.
pub fn ready_quorum(f: usize) -> usize {
    2 * f + 1
}

/// Number of READY messages that allow a process to send its own READY even without an
/// ECHO quorum (`f + 1`, the classic Ready amplification).
pub fn ready_amplification(f: usize) -> usize {
    f + 1
}

/// Number of ECHO messages that allow a process to send its own ECHO (`f + 1`, the Echo
/// amplification introduced alongside MBD.2, Sec. 6.2).
pub fn echo_amplification(f: usize) -> usize {
    f + 1
}

/// Number of processes that generate ECHO messages under MBD.11:
/// `⌈(N + f + 1)/2⌉ + f`.
pub fn echoer_count(n: usize, f: usize) -> usize {
    (echo_quorum(n, f) + f).min(n)
}

/// Number of processes that generate READY messages under MBD.11: `3f + 1`.
pub fn readier_count(n: usize, f: usize) -> usize {
    (3 * f + 1).min(n)
}

/// Whether `process` is allowed to generate ECHO messages for a broadcast initiated by
/// `source` under MBD.11 (the `echoer_count` processes with the smallest IDs after the
/// source's, modulo `n`).
pub fn is_echoer(n: usize, f: usize, source: ProcessId, process: ProcessId) -> bool {
    rank_after(n, source, process) < echoer_count(n, f)
}

/// Whether `process` is allowed to generate READY messages for a broadcast initiated by
/// `source` under MBD.11.
pub fn is_readier(n: usize, f: usize, source: ProcessId, process: ProcessId) -> bool {
    rank_after(n, source, process) < readier_count(n, f)
}

/// Rank of `process` in the circular order starting right after `source` (the source
/// itself has the largest rank `n - 1`).
fn rank_after(n: usize, source: ProcessId, process: ProcessId) -> usize {
    debug_assert!(n > 0 && source < n && process < n);
    (process + n - source - 1) % n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_faults_thresholds() {
        assert_eq!(max_faults(0), 0);
        assert_eq!(max_faults(1), 0);
        assert_eq!(max_faults(3), 0);
        assert_eq!(max_faults(4), 1);
        assert_eq!(max_faults(10), 3);
        assert_eq!(max_faults(50), 16);
    }

    #[test]
    fn quorums_for_paper_parameters() {
        // N = 50, f = 5: echo quorum = ceil(56/2) = 28, ready quorum = 11.
        assert_eq!(echo_quorum(50, 5), 28);
        assert_eq!(ready_quorum(5), 11);
        assert_eq!(ready_amplification(5), 6);
        assert_eq!(echo_amplification(5), 6);
    }

    #[test]
    fn echo_quorum_rounds_up() {
        // N = 10, f = 2: ceil(13/2) = 7.
        assert_eq!(echo_quorum(10, 2), 7);
        // N = 9, f = 2: ceil(12/2) = 6.
        assert_eq!(echo_quorum(9, 2), 6);
    }

    #[test]
    fn mbd11_counts_match_paper() {
        // Sec. 6.5: echoers = ceil((N+f+1)/2) + f, readiers = 3f + 1.
        assert_eq!(echoer_count(50, 9), 39);
        assert_eq!(readier_count(50, 9), 28);
        // When N = 3f + 1 every process participates in every phase.
        assert_eq!(echoer_count(10, 3), 10);
        assert_eq!(readier_count(10, 3), 10);
    }

    #[test]
    fn role_assignment_rotates_with_source() {
        let (n, f) = (10, 2);
        // Echoer count = ceil(13/2) + 2 = 9; readier count = 7.
        assert_eq!(echoer_count(n, f), 9);
        assert_eq!(readier_count(n, f), 7);
        // Source 0: processes 1..=9 ranked 0..=8, so 1..=9 are echoers, 1..=7 readiers.
        assert!(is_echoer(n, f, 0, 1));
        assert!(is_echoer(n, f, 0, 9));
        assert!(!is_echoer(n, f, 0, 0), "the source has the largest rank");
        assert!(is_readier(n, f, 0, 7));
        assert!(!is_readier(n, f, 0, 8));
        // Source 5: ranks rotate.
        assert!(is_readier(n, f, 5, 6));
        assert!(is_readier(n, f, 5, 2)); // rank 6
        assert!(!is_readier(n, f, 5, 3)); // rank 7
    }

    #[test]
    fn quorum_safety_inequalities() {
        // For all admissible (n, f): 2 * echo_quorum - n >= f + 1 (quorum intersection on
        // correct processes) and ready_quorum > 2 * f.
        for n in 4..60 {
            for f in 0..=max_faults(n) {
                assert!(2 * echo_quorum(n, f) > n + f);
                assert!(ready_quorum(f) == 2 * f + 1);
                assert!(echoer_count(n, f) >= echo_quorum(n, f));
                assert!(readier_count(n, f) >= ready_quorum(f));
            }
        }
    }
}
