//! Thread-per-process deployment of the PBRB protocols.
//!
//! The paper evaluates a real C++ deployment in which every process runs in its own Docker
//! container and communicates over TCP sockets acting as authenticated channels. This
//! crate provides the equivalent *concurrent* deployment for the Rust reproduction: every
//! process runs in its own OS thread, exchanging **binary-encoded** wire messages over
//! crossbeam channels that play the role of authenticated point-to-point links.
//!
//! The deployment is **stack-generic** and **transport-generic**: [`Deployment::start`]
//! takes a [`brb_core::stack::StackSpec`] and spawns one shared
//! [`brb_transport::NodeDriver`] per process over a
//! [`brb_transport::ChannelTransport`] — the exact same event loop the TCP deployment
//! (`brb-net`) runs over real sockets, and the exact same engines the deterministic
//! simulator (`brb-sim`) drives, which is what lets the integration tests compare the
//! backends event for event. Byzantine fault injection and the paper's delay regimes are
//! configured through [`brb_transport::DriverOptions`] (per-process
//! [`brb_sim::Behavior`]s, wall-clock-scaled [`brb_sim::DelayModel`]s) and applied as
//! transport decorators; see `brb_transport::policy`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consensus;
pub mod deployment;
pub mod workload;

pub use brb_transport::link;
pub use brb_transport::DriverOptions;
pub use consensus::{
    build_consensus_engines, drive_consensus, receiving_processes, run_threaded_consensus,
    ConsensusRun,
};
pub use deployment::{Deployment, DeploymentReport, NodeReport};
pub use workload::{drive_workload, Pacing, WorkloadRun};
