//! The Byzantine-placement experiment axis: one behavior scenario, every backend.
//!
//! The paper's evaluation runs its real TCP nodes under controlled Byzantine placements
//! (Sec. 7); this harness is the in-repository version of that matrix. Each scenario
//! assigns one [`Behavior`] to a fixed non-source process and runs the *same* single
//! broadcast on the three backends — the discrete-event simulator (through the parallel
//! sweep engine, so the rows are worker-count invariant), the channel runtime and the
//! TCP deployment (through the shared `brb-transport` node driver with the behavior
//! applied as a `FaultyLink` decorator).
//!
//! Every reported value is deterministic: the live backends report only the
//! delivery counts that the BRB guarantees pin down (all correct processes deliver for
//! any placement of at most `f` Byzantine processes), while the simulator rows
//! additionally report their exact message/byte totals. This is what lets the CI smoke
//! job byte-diff a lossy-run CSV between 1 and 4 sweep workers, like the other matrices.

use std::time::Duration;

use brb_core::config::Config;
use brb_core::stack::StackSpec;
use brb_core::types::{Payload, ProcessId};
use brb_net::TcpDeployment;
use brb_runtime::Deployment;
use brb_sim::{run_sweep, Behavior, DelayModel, ExperimentSpec};
use brb_transport::DriverOptions;

use crate::{experiment, Scale};

/// One row of the behavior matrix: a scenario on one backend.
#[derive(Debug, Clone)]
pub struct BehaviorPoint {
    /// Scenario name (e.g. `"lossy-0.2"`), the CSV `behavior` column.
    pub scenario: String,
    /// Backend the row was measured on: `"sim"`, `"runtime"` or `"tcp"`.
    pub backend: &'static str,
    /// Number of processes.
    pub n: usize,
    /// Correct processes that delivered the broadcast.
    pub delivered: usize,
    /// Number of correct (non-Byzantine) processes.
    pub correct: usize,
    /// Total messages transmitted — deterministic on the simulator only, `None` on the
    /// live backends (thread interleavings move duplicate-suppression races).
    pub messages: Option<usize>,
    /// Total bytes transmitted (simulator rows only, like `messages`).
    pub bytes: Option<usize>,
}

/// The Byzantine process every scenario targets (never the source, process 0).
const BYZANTINE: ProcessId = 3;

/// The scenario list: every [`Behavior`] of the simulator's vocabulary, assigned to
/// process [`BYZANTINE`].
fn scenarios() -> Vec<(&'static str, Vec<(ProcessId, Behavior)>)> {
    vec![
        ("correct", vec![]),
        ("lossy-0.2", vec![(BYZANTINE, Behavior::Lossy(0.2))]),
        (
            "silent-towards-1-5",
            vec![(BYZANTINE, Behavior::SilentTowards(vec![1, 5]))],
        ),
        ("replayer", vec![(BYZANTINE, Behavior::Replayer)]),
        ("flooder-3", vec![(BYZANTINE, Behavior::Flooder(3))]),
        (
            "fails-after-20",
            vec![(BYZANTINE, Behavior::FailsAfter(20))],
        ),
        ("crash", vec![(BYZANTINE, Behavior::Crash)]),
    ]
}

/// Runs the behavior matrix: every scenario on sim + channel runtime + TCP, one
/// broadcast each, on the same generated topology.
pub fn run_behavior_matrix(
    scale: Scale,
    asynchronous: bool,
    workers: usize,
    stack: StackSpec,
) -> Vec<BehaviorPoint> {
    let (n, k, f) = match scale {
        Scale::Quick => (10, 4, 1),
        Scale::Paper => (20, 7, 2),
    };
    let graph_seed = 23_000 + (n * k) as u64;
    let delay = if asynchronous {
        DelayModel::asynchronous()
    } else {
        DelayModel::synchronous()
    };
    let config = Config::bdopt_mbd1(n, f);
    let payload = 64;

    // Simulator rows, through the sweep engine (bit-identical for any worker count).
    let specs: Vec<ExperimentSpec> = scenarios()
        .into_iter()
        .map(|(name, behaviors)| {
            let params = experiment(n, k, f, payload, config, delay, 1)
                .with_stack(stack)
                .with_behaviors(behaviors);
            ExperimentSpec::new(name.to_string(), graph_seed, params)
        })
        .collect();
    let outcomes = run_sweep(&specs, workers);

    let graph = brb_sim::experiment::experiment_graph(n, k, graph_seed);
    let mut points = Vec::new();
    for ((name, behaviors), outcome) in scenarios().into_iter().zip(&outcomes) {
        let r = &outcome.record.result;
        points.push(BehaviorPoint {
            scenario: name.to_string(),
            backend: "sim",
            n,
            delivered: r.delivered,
            correct: r.correct,
            messages: Some(r.messages),
            bytes: Some(r.bytes),
        });

        let byzantine: Vec<ProcessId> = behaviors.iter().map(|(p, _)| *p).collect();
        let correct: Vec<ProcessId> = (0..n).filter(|p| !byzantine.contains(p)).collect();
        // Every process except the crashed ones delivers (the other Byzantine ones
        // still receive everything), so the live runs can await the count
        // deterministically.
        let expected = n - behaviors.iter().filter(|(_, b)| !b.receives()).count();
        let options = DriverOptions::default().with_behaviors(behaviors);
        // One measurement procedure for both live backends: broadcast, await the
        // deterministic delivery count, and report how many correct processes delivered.
        let measure_live =
            |backend: &'static str, report: brb_runtime::DeploymentReport| BehaviorPoint {
                scenario: name.to_string(),
                backend,
                n,
                delivered: correct
                    .iter()
                    .filter(|&&p| !report.nodes[p].deliveries.is_empty())
                    .count(),
                correct: correct.len(),
                messages: None,
                bytes: None,
            };

        let deployment = Deployment::start(&graph, config, stack, options.clone(), &[]);
        deployment.broadcast(0, Payload::filled(0xAB, payload));
        deployment.await_deliveries(expected, Duration::from_secs(60));
        points.push(measure_live("runtime", deployment.shutdown()));

        let deployment = TcpDeployment::start(&graph, config, stack, options, &[])
            .expect("TCP deployment starts");
        deployment.broadcast(0, Payload::filled(0xAB, payload));
        deployment.await_deliveries(expected, Duration::from_secs(60));
        points.push(measure_live("tcp", deployment.shutdown()));
    }

    print_points(
        &format!("Behavior matrix — stack={stack}, N={n}, k={k}, f={f}, one broadcast/point"),
        &points,
    );
    points
}

fn print_points(title: &str, points: &[BehaviorPoint]) {
    println!("# {title}");
    println!(
        "{:<20} {:>8} {:>10} {:>8} {:>10} {:>12}",
        "behavior", "backend", "delivered", "correct", "messages", "bytes"
    );
    for p in points {
        let fmt_opt = |v: Option<usize>| v.map_or("-".to_string(), |v| v.to_string());
        println!(
            "{:<20} {:>8} {:>10} {:>8} {:>10} {:>12}",
            p.scenario,
            p.backend,
            p.delivered,
            p.correct,
            fmt_opt(p.messages),
            fmt_opt(p.bytes),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_behavior_matrix_delivers_everywhere_on_every_backend() {
        let points = run_behavior_matrix(Scale::Quick, false, 2, StackSpec::Bd);
        assert_eq!(points.len(), 7 * 3, "7 scenarios x 3 backends");
        for p in &points {
            assert_eq!(
                p.delivered, p.correct,
                "{} on {}: all correct processes must deliver",
                p.scenario, p.backend
            );
            if p.backend == "sim" {
                assert!(p.messages.unwrap() > 0, "{}", p.scenario);
            }
        }
    }

    #[test]
    fn behavior_matrix_is_worker_count_invariant() {
        let a = run_behavior_matrix(Scale::Quick, false, 1, StackSpec::Bd);
        let b = run_behavior_matrix(Scale::Quick, false, 4, StackSpec::Bd);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.scenario, y.scenario);
            assert_eq!(x.backend, y.backend);
            assert_eq!((x.delivered, x.correct), (y.delivered, y.correct));
            assert_eq!((x.messages, x.bytes), (y.messages, y.bytes));
        }
    }
}
