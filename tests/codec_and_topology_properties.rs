//! Property-based tests of the wire codec and of the topology substrate.
//!
//! * The binary codec must never panic on attacker-controlled bytes (a Byzantine neighbor
//!   can put arbitrary frames on an authenticated link) and must round-trip every message
//!   the protocols can produce.
//! * The graph generators must deliver the structural guarantees the protocols rely on:
//!   exact connectivity for Harary graphs, `k >= 2f+1` verification for random regular
//!   graphs, and disjoint-path extraction consistent with Menger's bound.

use brb_core::bracha::{BrachaKind, BrachaMessage};
use brb_core::bracha_rc::{decode_bracha, encode_bracha};
use brb_core::types::{BroadcastId, Payload};
use brb_core::wire::WireMessage;
use brb_graph::connectivity::{is_k_connected, local_connectivity, vertex_connectivity};
use brb_graph::paths::vertex_disjoint_paths;
use brb_graph::{analysis, families, generate};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    // Fully pinned runner configuration: the case count, the base RNG seed and the
    // failure-persistence file are all committed, so this suite generates the same 64
    // inputs on every machine (see tests/README.md).
    #![proptest_config(ProptestConfig::with_cases(64)
        .with_rng_seed(0xB0B0_0002_C0DE_0002)
        .with_failure_persistence(FileFailurePersistence::SourceParallel("proptest-regressions")))]

    /// Decoding attacker-controlled bytes must never panic, and whenever it succeeds,
    /// re-encoding must reproduce an equally decodable message.
    #[test]
    fn wire_decode_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        if let Some(message) = WireMessage::decode(&bytes) {
            let reencoded = message.encode();
            let again = WireMessage::decode(&reencoded);
            prop_assert!(again.is_some(), "re-encoded message must decode");
        }
    }

    /// The batch wire framing round-trips every burst — empty, single-frame and
    /// multi-frame, with frame sizes crossing every small chunk boundary — and the
    /// split is a zero-copy view of the batch buffer. Truncating the batch at ANY byte
    /// boundary, or appending trailing garbage, must be rejected (a Byzantine peer owns
    /// the whole batch buffer).
    #[test]
    fn batch_framing_roundtrips_at_every_chunk_boundary(
        sizes in proptest::collection::vec(0usize..70, 0..12),
        trailer in any::<u8>(),
    ) {
        use brb_core::wire::{encode_batch, split_batch};
        let frames: Vec<bytes::Bytes> = sizes
            .iter()
            .enumerate()
            .map(|(i, &len)| bytes::Bytes::from(vec![i as u8; len]))
            .collect();
        let batch = encode_batch(&frames);
        let parts = split_batch(&batch);
        prop_assert_eq!(parts.as_ref(), Some(&frames), "lossless round-trip");

        // Strictness: every proper prefix fails, and so does any trailing byte.
        for cut in 0..batch.len() {
            prop_assert!(
                split_batch(&batch.slice(0..cut)).is_none(),
                "truncation at byte {} must be rejected",
                cut
            );
        }
        let mut extended = batch.to_vec();
        extended.push(trailer);
        prop_assert!(
            split_batch(&bytes::Bytes::from(extended)).is_none(),
            "trailing bytes must be rejected"
        );
    }

    /// The Bracha-over-RC codec round-trips every well-formed message and never panics on
    /// arbitrary payload bytes.
    #[test]
    fn bracha_rc_codec_roundtrip(
        kind in 0u8..3,
        source in 0usize..64,
        seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let kind = match kind {
            0 => BrachaKind::Send,
            1 => BrachaKind::Echo,
            _ => BrachaKind::Ready,
        };
        let message = BrachaMessage {
            kind,
            id: BroadcastId::new(source, seq),
            payload: Payload::new(payload),
        };
        prop_assert_eq!(decode_bracha(&encode_bracha(&message)), Some(message));
    }

    #[test]
    fn bracha_rc_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_bracha(&Payload::new(bytes));
    }

    /// Harary graphs are exactly k-connected with ⌈k·n/2⌉ edges, for every feasible (k, n).
    #[test]
    fn harary_graphs_have_exact_connectivity(k in 2usize..6, extra in 0usize..6) {
        let n = 2 * k + 1 + extra;
        let g = families::harary(k, n).expect("feasible parameters");
        prop_assert_eq!(vertex_connectivity(&g), k);
        prop_assert_eq!(g.edge_count(), (k * n).div_ceil(2));
    }

    /// Random regular connected graphs satisfy the requested degree and connectivity, and
    /// the disjoint-path extractor agrees with Menger's local connectivity between random
    /// endpoint pairs.
    #[test]
    fn random_regular_graphs_support_disjoint_path_extraction(seed in any::<u64>()) {
        let (n, d, k) = (14usize, 5usize, 3usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::random_regular_connected(n, d, k, &mut rng).expect("generation succeeds");
        prop_assert!(g.nodes().all(|u| g.degree(u) == d));
        prop_assert!(is_k_connected(&g, k));

        let s = (seed as usize) % n;
        let t = (s + 1 + (seed as usize / 7) % (n - 1)) % n;
        prop_assume!(s != t);
        let paths = vertex_disjoint_paths(&g, s, t);
        prop_assert_eq!(paths.len(), local_connectivity(&g, s, t));
        // Internal disjointness and edge validity.
        let mut seen = std::collections::BTreeSet::new();
        for p in &paths {
            prop_assert_eq!(p[0], s);
            prop_assert_eq!(*p.last().unwrap(), t);
            for w in p.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]));
            }
            for &node in &p[1..p.len() - 1] {
                prop_assert!(seen.insert(node), "internal node reused");
            }
        }
    }

    /// Watts–Strogatz rewiring preserves the number of edges and node degrees' sum.
    #[test]
    fn watts_strogatz_preserves_edge_count(seed in any::<u64>(), beta in 0.0f64..1.0) {
        let (n, k) = (20usize, 4usize);
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::watts_strogatz(n, k, beta, &mut rng).expect("feasible parameters");
        prop_assert_eq!(g.edge_count(), n * k / 2);
    }

    /// Preferential attachment graphs stay connected and respect the minimum degree bound.
    #[test]
    fn barabasi_albert_graphs_are_connected(seed in any::<u64>(), m in 2usize..4) {
        let n = 30;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = families::barabasi_albert(n, m, &mut rng).expect("feasible parameters");
        prop_assert!(brb_graph::traversal::is_connected(&g));
        prop_assert!(g.nodes().all(|u| g.degree(u) >= m));
    }

    /// The articulation-point finder agrees with the brute-force definition on small
    /// random graphs: removing a reported cut vertex disconnects the graph, and removing a
    /// non-reported vertex of a connected graph keeps it connected.
    #[test]
    fn articulation_points_match_bruteforce(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate::gnp(12, 0.25, &mut rng);
        prop_assume!(brb_graph::traversal::is_connected(&g));
        let cuts = analysis::articulation_points(&g);
        for v in g.nodes() {
            let removed: std::collections::BTreeSet<_> = [v].into_iter().collect();
            let h = g.without_nodes(&removed);
            let components = brb_graph::traversal::connected_components(&h);
            let non_trivial: Vec<_> = components
                .into_iter()
                .filter(|c| !(c.len() == 1 && c[0] == v))
                .collect();
            let disconnects = non_trivial.len() > 1;
            prop_assert_eq!(
                cuts.contains(&v),
                disconnects,
                "vertex {} misclassified", v
            );
        }
    }
}

#[test]
fn analysis_metrics_are_consistent_on_the_papers_example_topology() {
    let g = generate::figure1_example();
    let stats = analysis::degree_stats(&g);
    assert!(stats.regular);
    assert_eq!(stats.min, 3);
    // The Petersen graph has girth 5: no triangles, clustering 0.
    assert_eq!(analysis::average_clustering(&g), 0.0);
    // Diameter 2, radius 2, average path length 1.666...
    assert_eq!(analysis::radius(&g), Some(2));
    let apl = analysis::average_path_length(&g).unwrap();
    assert!((apl - 5.0 / 3.0).abs() < 1e-9);
    assert!(analysis::articulation_points(&g).is_empty());
    assert!(analysis::bridges(&g).is_empty());
    assert_eq!(analysis::degeneracy(&g), 3);
    assert_eq!(vertex_connectivity(&g), 3);
}
