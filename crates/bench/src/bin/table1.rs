//! Regenerates Table 1 of the paper (and the asynchronous variant of Sec. 7.6 with
//! `--async`): the impact of each modification MBD.1–12 on latency and network consumption
//! for 16 B and 1024 B payloads over random regular graphs.
//!
//! Usage: `cargo run --release -p brb-bench --bin table1 [-- --quick] [-- --async] [-- --workers N] [-- --stack NAME]`

use brb_bench::{async_from_args, stack_from_args, table1::run_table1, workers_from_args, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    run_table1(
        Scale::from_args(&args),
        async_from_args(&args),
        workers_from_args(&args),
        stack_from_args(&args),
    );
}
