//! Property-based tests of the churn schedule subsystem (`brb_sim::churn`).
//!
//! The whole cross-backend churn story rests on three contracts, pinned here over
//! generated specs and link states:
//!
//! * **compile determinism** — [`ChurnSpec::compile`] is a pure function of
//!   `(spec, seed)`: the same pair yields the same schedule, the events come out in
//!   nondecreasing time order, and `seq` numbers their rank;
//! * **partition/heal exactness** — a [`ChurnAction::Partition`] followed by its
//!   [`ChurnAction::Heal`] restores the *exact* pre-partition link state: links that
//!   were already down stay down, links the partition cut come back, nothing else moves;
//! * **restart safety** — a [`ChurnAction::NodeRestart`] never resurrects a retired
//!   instance: every broadcast the GC watermark retired was, by construction, delivered,
//!   so it is in the durable [`RestartMemory`], and the memory suppresses any
//!   post-restart re-delivery.

use brb_core::gc::{GcPolicy, GcState};
use brb_core::types::BroadcastId;
use brb_sim::churn::{ChurnAction, ChurnSpec, LinkState, RestartMemory};
use proptest::prelude::*;

/// A generated churn action over at most `n` processes (restarts excluded: they do not
/// touch the link state, which these properties are about).
fn action_strategy(n: usize) -> impl Strategy<Value = ChurnAction> {
    let p = 0..n;
    prop_oneof![
        (p.clone(), 0..n).prop_map(|(a, b)| ChurnAction::LinkDown { a, b }),
        (p.clone(), 0..n).prop_map(|(a, b)| ChurnAction::LinkUp { a, b }),
        proptest::collection::vec(p.clone(), 0..n).prop_map(|side| ChurnAction::Partition { side }),
        Just(ChurnAction::Heal),
        (p.clone(), 0..n, 0u64..1_000_000).prop_map(|(from, to, extra_micros)| {
            ChurnAction::SetLinkDelay {
                from,
                to,
                extra_micros,
            }
        }),
        (p, 0..n, 0.0f64..1.0).prop_map(|(from, to, probability)| ChurnAction::SetLinkLoss {
            from,
            to,
            probability,
        }),
    ]
}

/// A generated spec: a mix of fixed-time clauses and jittered flaps.
fn spec_strategy() -> impl Strategy<Value = ChurnSpec> {
    let at = (0u64..5_000_000, action_strategy(8)).prop_map(|(t, a)| (None, t, a));
    let flap = (
        0usize..8,
        0usize..8,
        0u64..1_000_000,
        1u64..500_000,
        1u64..500_000,
        1u32..5,
        0u64..50_000,
    )
        .prop_map(|(a, b, start, down, up, cycles, jitter)| {
            (
                Some((a, b, start, down, up, cycles, jitter)),
                0,
                ChurnAction::Heal,
            )
        });
    proptest::collection::vec(prop_oneof![at, flap], 0..12).prop_map(|clauses| {
        let mut spec = ChurnSpec::new();
        for (flap, t, action) in clauses {
            spec = match flap {
                Some((a, b, start, down, up, cycles, jitter)) => {
                    spec.flap_jittered(a, b, start, down, up, cycles, jitter)
                }
                None => spec.at(t, action),
            };
        }
        spec
    })
}

/// An undirected edge list over `n` processes (self-loops filtered out).
fn edges_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0..n, 0..n), 0..20)
        .prop_map(|pairs| pairs.into_iter().filter(|(u, v)| u != v).collect())
}

proptest! {
    // Fully pinned runner configuration (see tests/README.md at the repository root):
    // committed case count, base seed and failure-persistence file make this suite
    // generate the same inputs on every machine.
    #![proptest_config(ProptestConfig::with_cases(64)
        .with_rng_seed(0xC4C4_0B5E_55ED_5EED)
        .with_failure_persistence(FileFailurePersistence::SourceParallel("proptest-regressions")))]

    #[test]
    fn compile_is_reproducible_and_time_ordered(spec in spec_strategy(), seed in any::<u64>()) {
        let a = spec.compile(seed);
        let b = spec.compile(seed);
        prop_assert_eq!(&a, &b, "compile must be a pure function of (spec, seed)");
        for window in a.windows(2) {
            prop_assert!(
                window[0].at_micros <= window[1].at_micros,
                "events must be in nondecreasing time order"
            );
        }
        for (rank, event) in a.iter().enumerate() {
            prop_assert_eq!(event.seq as usize, rank, "seq numbers the sorted rank");
        }
    }

    #[test]
    fn partition_then_heal_restores_the_exact_prior_state(
        edges in edges_strategy(8),
        pre in proptest::collection::vec(action_strategy(8), 0..8),
        side in proptest::collection::vec(0usize..8, 0..8),
    ) {
        let mut state = LinkState::new();
        // An arbitrary history, then settle all open partitions so the snapshot below
        // is the only active cut.
        for action in &pre {
            state.apply(action, &edges);
        }
        state.apply(&ChurnAction::Heal, &edges);
        let before = state.clone();
        state.apply(&ChurnAction::Partition { side: side.clone() }, &edges);
        // While partitioned, every currently-up cross edge is down in both directions.
        for &(u, v) in &edges {
            if side.contains(&u) != side.contains(&v) {
                prop_assert!(!state.allows(u, v), "cross edge {u}->{v} must be cut");
                prop_assert!(!state.allows(v, u), "cross edge {v}->{u} must be cut");
            }
        }
        state.apply(&ChurnAction::Heal, &edges);
        prop_assert_eq!(state, before, "heal must restore the exact pre-partition state");
    }

    #[test]
    fn restart_never_resurrects_a_retired_instance(
        delivered in proptest::collection::vec((0usize..6, 0u32..6), 1..24),
        extra_events in 0u64..64,
    ) {
        let delivered: std::collections::BTreeSet<(usize, u32)> =
            delivered.into_iter().collect();
        // Deliver a batch of instances under an aggressive watermark policy, driving
        // the GC until some are retired...
        let mut gc = GcState::new(GcPolicy::after_events(1));
        let mut memory = RestartMemory::new();
        for &(source, seq) in &delivered {
            let id = BroadcastId::new(source, seq);
            gc.on_delivered(id);
            memory.note_delivered(id);
            gc.on_event();
        }
        for _ in 0..extra_events {
            gc.on_event();
        }
        let retired = gc.due();
        // ...then crash-recover: the volatile GcState is lost, the durable memory
        // survives. Every retired instance must be suppressed by the memory — the
        // watermark only ever retires delivered instances, so none can resurface as a
        // fresh delivery after the restart.
        for id in &retired {
            prop_assert!(
                memory.suppresses(*id),
                "retired instance {id} escaped the durable log"
            );
        }
        prop_assert!(retired.len() as u64 <= memory.len() as u64);
    }
}
