//! Thread-per-process deployment driving any [`StackSpec`]-selected protocol engine.
//!
//! Node threads run the shared [`brb_transport::NodeDriver`] over
//! [`brb_transport::ChannelTransport`]s (crossbeam-channel authenticated links): the
//! deployment itself is a thin constructor — wire the links, build the engines, spawn
//! one driver per process — and never touches a frame. Fault injection and the paper's
//! delay regimes come from [`DriverOptions`]: per-process [`brb_sim::Behavior`]s and a
//! wall-clock-scaled [`brb_sim::DelayModel`] are applied as transport decorators, the
//! same scenario vocabulary the discrete-event simulator uses.

use std::thread::JoinHandle;
use std::time::Duration;

use brb_core::config::Config;
use brb_core::stack::{DynEngine, StackSpec};
use brb_core::types::{Delivery, Payload, ProcessId};
use brb_graph::Graph;
use brb_transport::{build_links, ChannelTransport, Command, DriverOptions, NodeDriver};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

pub use brb_transport::{DeploymentReport, NodeReport};

/// A running thread-per-process deployment.
pub struct Deployment {
    handles: Vec<JoinHandle<NodeReport>>,
    commands: Vec<Sender<Command>>,
    deliveries: Receiver<(ProcessId, Delivery)>,
    n: usize,
}

impl Deployment {
    /// Spawns one thread per process of `graph`, each running the shared
    /// [`NodeDriver`] over the `stack` engine built from the given configuration.
    /// `crashed` processes are not spawned at all (their links are dead, which is
    /// indistinguishable from a silent Byzantine process for the others); for a crash
    /// that keeps the links up, assign [`brb_sim::Behavior::Crash`] through
    /// [`DriverOptions::behaviors`] instead.
    pub fn start(
        graph: &Graph,
        config: Config,
        stack: StackSpec,
        options: DriverOptions,
        crashed: &[ProcessId],
    ) -> Self {
        let n = graph.node_count();
        // Topology-aware stacks (routed Dolev) share one copy of the graph.
        let shared_graph = std::sync::Arc::new(graph.clone());
        let (mailboxes, senders) = build_links(n, &graph.edges());
        let (delivery_tx, delivery_rx) = unbounded();
        let mut commands = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (id, (mailbox, links)) in mailboxes.into_iter().zip(senders).enumerate() {
            let (cmd_tx, cmd_rx) = unbounded();
            commands.push(cmd_tx);
            if crashed.contains(&id) {
                continue;
            }
            let mut driver = NodeDriver::new(
                stack.build_shared(&config, &shared_graph, id),
                Box::new(ChannelTransport::new(mailbox, links)),
                cmd_rx,
                delivery_tx.clone(),
                &options,
            );
            if options.churn.is_some() {
                // NodeRestart events rebuild the engine with the same constructor the
                // node started from (same identity and topology view, fresh state).
                // Sharding is clamped off under churn: a restart rebuilds one engine,
                // not a pool.
                let shared_graph = shared_graph.clone();
                driver = driver
                    .with_engine_factory(move || stack.build_shared(&config, &shared_graph, id));
            } else if options.shard_workers > 1 {
                // Extra shard engines: same constructor, same identity; the driver
                // partitions broadcast instances across them by id hash.
                let extras = (1..options.shard_workers)
                    .map(|_| stack.build_shared(&config, &shared_graph, id))
                    .collect();
                driver = driver.with_shard_engines(extras);
            }
            handles.push(std::thread::spawn(move || driver.run()));
        }
        if let Some(churn) = &options.churn {
            // The pacer outlives this constructor; its schedule starts now. The join
            // handle is dropped — the thread exits once the schedule is exhausted.
            let _ = churn.spawn_pacer(commands.clone());
        }
        Self {
            handles,
            commands,
            deliveries: delivery_rx,
            n,
        }
    }

    /// Spawns one thread per process over caller-built engines — the hook decorator
    /// engines (e.g. [`brb_consensus::ConsensusEngine`]) come through: the caller
    /// constructs one boxed [`DynEngine`] per process (index = process id, exactly
    /// `graph.node_count()` of them), keeps whatever side handles it needs (decision
    /// handles, instrumentation), and hands the engines over.
    ///
    /// Unlike [`Deployment::start`], no engine factory is installed: a
    /// [`Command::Restart`] is a no-op, because rebuilding a decorator engine would
    /// discard its volatile state (for consensus, the round state) mid-protocol.
    /// Churn schedules still pace their link events.
    pub fn start_with_engines(
        graph: &Graph,
        engines: Vec<Box<dyn DynEngine>>,
        options: DriverOptions,
        crashed: &[ProcessId],
    ) -> Self {
        let n = graph.node_count();
        assert_eq!(engines.len(), n, "one engine per process required");
        let (mailboxes, senders) = build_links(n, &graph.edges());
        let (delivery_tx, delivery_rx) = unbounded();
        let mut commands = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (id, ((mailbox, links), engine)) in
            mailboxes.into_iter().zip(senders).zip(engines).enumerate()
        {
            let (cmd_tx, cmd_rx) = unbounded();
            commands.push(cmd_tx);
            if crashed.contains(&id) {
                continue;
            }
            let driver = NodeDriver::new(
                engine,
                Box::new(ChannelTransport::new(mailbox, links)),
                cmd_rx,
                delivery_tx.clone(),
                &options,
            );
            handles.push(std::thread::spawn(move || driver.run()));
        }
        if let Some(churn) = &options.churn {
            let _ = churn.spawn_pacer(commands.clone());
        }
        Self {
            handles,
            commands,
            deliveries: delivery_rx,
            n,
        }
    }

    /// Number of processes in the deployment (including crashed ones).
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// Asks `source` to broadcast `payload`.
    pub fn broadcast(&self, source: ProcessId, payload: Payload) {
        let _ = self.commands[source].send(Command::Broadcast(payload));
    }

    /// The shared delivery stream of the deployment, for drivers that track
    /// completion themselves (see [`crate::consensus::drive_consensus`]).
    pub fn deliveries(&self) -> &Receiver<(ProcessId, Delivery)> {
        &self.deliveries
    }

    /// Waits until at least `expected` deliveries have been observed in total, or until
    /// `timeout` elapses. Returns the number of deliveries observed.
    pub fn await_deliveries(&self, expected: usize, timeout: Duration) -> usize {
        let deadline = std::time::Instant::now() + timeout;
        let mut seen = 0usize;
        while seen < expected {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.deliveries.recv_timeout(remaining) {
                Ok(_) => seen += 1,
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        seen
    }

    /// Replays a workload schedule against the running deployment through the shared
    /// generator driver (see [`crate::workload::drive_workload`]): a generator thread
    /// fires the injections (honoring the closed-loop window), this thread tracks
    /// per-broadcast completion over the delivery stream.
    pub fn run_workload(
        &self,
        schedule: &[brb_workload::Injection],
        mode: brb_workload::LoopMode,
        pacing: crate::workload::Pacing,
        correct: &[ProcessId],
        timeout: Duration,
    ) -> crate::workload::WorkloadRun {
        crate::workload::drive_workload(
            |source, payload| self.broadcast(source, payload),
            &self.deliveries,
            schedule,
            mode,
            pacing,
            correct,
            timeout,
        )
    }

    /// Shuts every node down and collects the per-node reports.
    pub fn shutdown(self) -> DeploymentReport {
        for tx in &self.commands {
            let _ = tx.send(Command::Shutdown);
        }
        let mut nodes: Vec<NodeReport> = (0..self.n)
            .map(|id| NodeReport {
                id,
                deliveries: Vec::new(),
                messages_sent: 0,
                bytes_sent: 0,
                state_bytes: 0,
                gc_retired: 0,
                restarts: 0,
                drops_by_cause: brb_trace::DropCounts::new(),
                queue_depth_peak: 0,
                decision: None,
            })
            .collect();
        for handle in self.handles {
            if let Ok(report) = handle.join() {
                let id = report.id;
                nodes[id] = report;
            }
        }
        DeploymentReport { nodes }
    }
}

/// Convenience wrapper: runs one broadcast of the given stack on `graph` and returns the
/// deployment report once every correct process delivered (or the timeout expired).
pub fn run_threaded_broadcast(
    graph: &Graph,
    config: Config,
    stack: StackSpec,
    payload: Payload,
    source: ProcessId,
    crashed: &[ProcessId],
    timeout: Duration,
) -> DeploymentReport {
    let deployment = Deployment::start(graph, config, stack, DriverOptions::default(), crashed);
    deployment.broadcast(source, payload);
    let expected = graph.node_count() - crashed.len();
    deployment.await_deliveries(expected, timeout);
    deployment.shutdown()
}

/// Convenience wrapper: expands `spec` into its seeded schedule, firehoses the threaded
/// deployment with it (unpaced: only the injection order and the loop window matter at
/// wall-clock scale), and returns the deployment report together with what the driver
/// observed.
pub fn run_threaded_workload(
    graph: &Graph,
    config: Config,
    stack: StackSpec,
    spec: &brb_workload::WorkloadSpec,
    seed: u64,
    crashed: &[ProcessId],
    timeout: Duration,
) -> (DeploymentReport, crate::workload::WorkloadRun) {
    let n = graph.node_count();
    let deployment = Deployment::start(graph, config, stack, DriverOptions::default(), crashed);
    let schedule = spec.schedule(n, seed);
    let correct: Vec<ProcessId> = (0..n).filter(|p| !crashed.contains(p)).collect();
    let run = deployment.run_workload(
        &schedule,
        spec.mode,
        crate::workload::Pacing::Unpaced,
        &correct,
        timeout,
    );
    (deployment.shutdown(), run)
}

/// Shared collector used by examples that want to observe deliveries as they happen.
#[derive(Debug, Default)]
pub struct DeliveryLog {
    entries: Mutex<Vec<(ProcessId, Delivery)>>,
}

impl DeliveryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivery.
    pub fn record(&self, process: ProcessId, delivery: Delivery) {
        self.entries.lock().push((process, delivery));
    }

    /// Snapshot of the log.
    pub fn snapshot(&self) -> Vec<(ProcessId, Delivery)> {
        self.entries.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_graph::generate;
    use brb_sim::Behavior;
    use brb_transport::LinkDelay;

    #[test]
    fn threaded_broadcast_delivers_everywhere() {
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let report = run_threaded_broadcast(
            &graph,
            config,
            StackSpec::Bd,
            Payload::from("threaded hello"),
            0,
            &[],
            Duration::from_secs(10),
        );
        let everyone: Vec<ProcessId> = (0..10).collect();
        assert!(
            report.all_delivered(&everyone, 1),
            "every process must deliver"
        );
        assert!(report.total_messages() > 0);
        assert!(report.total_bytes() > 0);
        for node in &report.nodes {
            assert_eq!(node.deliveries[0].payload, Payload::from("threaded hello"));
        }
    }

    #[test]
    fn threaded_broadcast_with_crashed_process() {
        let graph = generate::circulant(13, 2); // 4-regular, supports f = 1
        let config = Config::latency_preset(13, 1);
        let crashed = [7usize];
        let report = run_threaded_broadcast(
            &graph,
            config,
            StackSpec::Bd,
            Payload::filled(5, 128),
            2,
            &crashed,
            Duration::from_secs(10),
        );
        let correct: Vec<ProcessId> = (0..13).filter(|p| !crashed.contains(p)).collect();
        assert!(report.all_delivered(&correct, 1));
        assert!(report.nodes[7].deliveries.is_empty());
    }

    #[test]
    fn threaded_broadcast_runs_non_bd_stacks() {
        // The routed-Dolev-based BRB stack has never run under real concurrency before
        // the stack API: one broadcast must deliver at every node.
        let graph = generate::figure1_example();
        let config = Config::plain(10, 1);
        let report = run_threaded_broadcast(
            &graph,
            config,
            StackSpec::BrachaRoutedDolev,
            Payload::from("routed over threads"),
            0,
            &[],
            Duration::from_secs(10),
        );
        let everyone: Vec<ProcessId> = (0..10).collect();
        assert!(report.all_delivered(&everyone, 1));
        assert!(report.total_bytes() > 0);
    }

    #[test]
    fn behavior_decorators_inject_faults_into_the_live_deployment() {
        // One process replays every frame, another drops everything towards two victims:
        // the sim's scenario vocabulary, running on the live channel backend through the
        // FaultyLink decorators. Every correct process still delivers (f = 1 per the
        // quorum margins; the two Byzantine nodes also deliver since their inbound links
        // are intact).
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let options = DriverOptions::default()
            .with_behaviors(vec![(4, Behavior::Replayer), (7, Behavior::Crash)]);
        let deployment = Deployment::start(&graph, config, StackSpec::Bd, options, &[]);
        deployment.broadcast(0, Payload::from("faulted"));
        deployment.await_deliveries(9, Duration::from_secs(10));
        let report = deployment.shutdown();
        let correct: Vec<ProcessId> = (0..10).filter(|&p| p != 4 && p != 7).collect();
        assert!(report.all_delivered(&correct, 1));
        assert!(
            report.nodes[7].deliveries.is_empty(),
            "behavior-crashed node delivers nothing"
        );
        assert_eq!(report.nodes[7].messages_sent, 0);
        assert!(
            report.nodes[4].messages_sent > 0,
            "the replayer transmits (twice per frame)"
        );
    }

    #[test]
    fn scaled_delay_model_runs_on_the_live_deployment() {
        // The paper's 50 ms synchronous regime compressed 100x: frames take ~0.5 ms per
        // hop, so the broadcast completes but measurably slower than the undelayed run.
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let options = DriverOptions::default().with_link_delay(LinkDelay::Scaled {
            model: brb_sim::DelayModel::synchronous(),
            scale: 0.01,
        });
        let deployment = Deployment::start(&graph, config, StackSpec::Bd, options, &[]);
        let start = std::time::Instant::now();
        deployment.broadcast(0, Payload::from("paced"));
        let seen = deployment.await_deliveries(10, Duration::from_secs(30));
        let elapsed = start.elapsed();
        let report = deployment.shutdown();
        assert_eq!(seen, 10);
        let everyone: Vec<ProcessId> = (0..10).collect();
        assert!(report.all_delivered(&everyone, 1));
        assert!(
            elapsed >= Duration::from_millis(1),
            "two 0.5 ms hops minimum, got {elapsed:?}"
        );
    }

    #[test]
    fn threaded_workload_firehoses_every_source() {
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let spec = brb_workload::WorkloadSpec::constant_rate(1_000, 20).with_payload_bytes(48);
        let (report, run) = run_threaded_workload(&graph, config, StackSpec::Bd, &spec, 7, &[], {
            Duration::from_secs(30)
        });
        assert_eq!(run.injected, 20);
        assert_eq!(run.effective, 20);
        assert!(run.all_completed(), "{run:?}");
        assert_eq!(
            run.broadcast_latencies.len(),
            20,
            "every completed broadcast reports a wall-clock latency"
        );
        let everyone: Vec<ProcessId> = (0..10).collect();
        // Every process delivers all 20 broadcasts.
        assert!(report.all_delivered(&everyone, 20));
    }

    #[test]
    fn threaded_closed_loop_workload_with_a_crashed_source_completes() {
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        // Window 3, one crashed process among the round-robin sources: its injections
        // are no-ops and must not clog the window.
        let spec = brb_workload::WorkloadSpec::constant_rate(0, 10).closed_loop(3);
        let crashed = [6usize];
        let (report, run) = run_threaded_workload(
            &graph,
            config,
            StackSpec::Bd,
            &spec,
            3,
            &crashed,
            Duration::from_secs(30),
        );
        assert_eq!(run.injected, 10);
        assert_eq!(run.effective, 9, "source 6's injection cannot complete");
        assert!(run.all_completed(), "{run:?}");
        let correct: Vec<ProcessId> = (0..10).filter(|p| !crashed.contains(p)).collect();
        // Nine effective broadcasts, each delivered by every correct process.
        assert!(report.all_delivered(&correct, 9));
        assert!(report.nodes[6].deliveries.is_empty());
    }

    #[test]
    fn delivery_log_collects_entries() {
        let log = DeliveryLog::new();
        assert!(log.snapshot().is_empty());
        log.record(
            3,
            Delivery {
                id: brb_core::types::BroadcastId::new(0, 0),
                payload: Payload::from("x"),
            },
        );
        assert_eq!(log.snapshot().len(), 1);
    }
}
