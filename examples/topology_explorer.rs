//! Topology explorer: characterises candidate communication graphs and checks whether they
//! can support Byzantine reliable broadcast for a given fault budget.
//!
//! Dolev's protocol (and therefore the Bracha–Dolev combination) needs the communication
//! network to be at least `2f+1`-vertex-connected. This example builds a handful of
//! topology families — the paper's random regular graphs, minimum-edge Harary graphs,
//! hub-and-spoke generalized wheels, small-world and preferential-attachment graphs — and
//! prints for each one the structural metrics that drive protocol cost (degrees, density,
//! path lengths, clustering), its vertex connectivity, the largest fault budget it
//! supports, and a sample of the disjoint routes the known-topology Dolev variant would
//! precompute.
//!
//! Run with: `cargo run --release --example topology_explorer`

use brb_graph::paths::k_disjoint_routes;
use brb_graph::{analysis, connectivity, families, generate, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn report(label: &str, graph: &Graph) {
    let kappa = connectivity::vertex_connectivity(graph);
    let max_f = if kappa == 0 { 0 } else { (kappa - 1) / 2 };
    let quorum_f = if graph.node_count() == 0 {
        0
    } else {
        (graph.node_count() - 1) / 3
    };
    let supported_f = max_f.min(quorum_f);
    println!("== {label}");
    println!("   {}", analysis::describe(graph));
    println!(
        "   vertex connectivity k = {kappa}; supports f <= {supported_f} \
         (connectivity allows {max_f}, quorums allow {quorum_f})"
    );
    let cuts = analysis::articulation_points(graph);
    if !cuts.is_empty() {
        println!(
            "   WARNING: articulation points {cuts:?} — a single Byzantine process can \
             partition this network"
        );
    }
    if graph.node_count() >= 2 && kappa > 0 {
        let routes = k_disjoint_routes(graph, 0, graph.node_count() - 1, kappa);
        println!(
            "   disjoint routes 0 -> {}: {:?}",
            graph.node_count() - 1,
            routes
        );
    }
    println!();
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    let random_regular = generate::random_regular_connected(20, 7, 7, &mut rng)
        .expect("a 7-connected 7-regular graph over 20 nodes exists");
    report(
        "Random 7-regular graph, N = 20 (the paper's family)",
        &random_regular,
    );

    report(
        "Petersen graph (Fig. 1 of the paper)",
        &generate::figure1_example(),
    );

    report(
        "Harary graph H_{5,20} (minimum edges for k = 5)",
        &families::harary(5, 20).expect("feasible"),
    );

    report(
        "Generalized wheel W(3, 17) (hub-and-spoke, k = 5)",
        &families::generalized_wheel(3, 17),
    );

    report("4x5 torus (k = 4)", &families::grid(4, 5, true));

    let small_world = families::watts_strogatz(20, 6, 0.15, &mut rng).expect("feasible");
    report(
        "Watts-Strogatz small world (N = 20, k = 6, beta = 0.15)",
        &small_world,
    );

    let scale_free = families::barabasi_albert(20, 3, &mut rng).expect("feasible");
    report(
        "Barabasi-Albert preferential attachment (N = 20, m = 3)",
        &scale_free,
    );

    report(
        "Star graph (unusable: hub is a single point of failure)",
        &families::star(20),
    );
}
