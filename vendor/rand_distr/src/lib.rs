//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr) crate.
//!
//! Provides the [`Normal`] distribution (Box–Muller transform) and re-exports the
//! [`Distribution`] trait from the vendored `rand`, which is all this workspace uses.

#![forbid(unsafe_code)]

use rand::RngCore;

pub use rand::distributions::Distribution;

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or NaN.
    StdDevTooSmall,
    /// The mean was NaN.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::StdDevTooSmall => write!(f, "standard deviation must be finite and >= 0"),
            NormalError::MeanTooSmall => write!(f, "mean must be finite"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::StdDevTooSmall);
        }
        Ok(Self { mean, std_dev })
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: two uniforms in (0, 1] -> one standard normal deviate.
        let u1 = ((rng.next_u64() >> 11) as f64 + 1.0) * (1.0 / (1u64 << 53) as f64);
        let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn sample_mean_and_spread_are_plausible() {
        let mut rng = StdRng::seed_from_u64(17);
        let normal = Normal::new(50.0, 10.0).unwrap();
        let samples: Vec<f64> = (0..4000).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 50.0).abs() < 1.0, "sample mean {mean}");
        let var =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
        assert!(
            (var.sqrt() - 10.0).abs() < 1.0,
            "sample std dev {}",
            var.sqrt()
        );
    }

    #[test]
    fn zero_std_dev_is_constant() {
        let mut rng = StdRng::seed_from_u64(3);
        let normal = Normal::new(5.0, 0.0).unwrap();
        for _ in 0..10 {
            assert_eq!(normal.sample(&mut rng), 5.0);
        }
    }
}
