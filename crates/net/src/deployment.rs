//! TCP deployment of any [`StackSpec`]-selected engine: one protocol thread per process,
//! real loopback sockets as authenticated links.
//!
//! This is the closest in-repository analogue of the paper's testbed (Sec. 7.1): the paper
//! runs one node per Docker container on a single desktop and connects them with TCP
//! sockets; we run one node per thread in a single OS process and connect them with TCP
//! sockets over the loopback interface. The node threads are the shared
//! [`brb_transport::NodeDriver`] — the exact event loop the channel runtime spawns — over
//! a [`TcpTransport`] (socket write halves + the reader threads' mailbox), so the
//! protocol engines, wire formats, byte accounting, fault decorators and delay models are
//! identical across the discrete-event simulator (`brb-sim`), the channel runtime
//! (`brb-runtime`) and this backend; the reports reuse the shared
//! [`NodeReport`] / [`DeploymentReport`] types for that reason.

use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::thread::JoinHandle;
use std::time::Duration;

use brb_core::config::Config;
use brb_core::stack::{DynEngine, StackSpec};
use brb_core::types::{Delivery, Payload, ProcessId};
use brb_graph::Graph;
use brb_transport::{
    Command, DeploymentReport, DriverOptions, Frame, NodeDriver, NodeReport, OutFrame,
    SendReceipt, Transport,
};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::endpoint::{bind_endpoints, connect_mesh, send_frame, spawn_link_reader};

/// The loopback-socket transport of one process: TCP write halves keyed by neighbor,
/// plus the mailbox its per-link reader threads feed ([`spawn_link_reader`]).
pub struct TcpTransport {
    writers: HashMap<ProcessId, TcpStream>,
    mailbox: Receiver<Frame>,
    /// Reusable coalescing buffer for [`Transport::send_batch`]: a same-destination
    /// burst is staged here (standard length-prefixed framing, unchanged on the wire)
    /// and written with one syscall; the buffer's capacity is retained across bursts, so
    /// steady-state batched sends allocate nothing.
    staging: Vec<u8>,
}

impl TcpTransport {
    /// Wraps one process's established write halves and its reader-thread mailbox.
    pub fn new(writers: HashMap<ProcessId, TcpStream>, mailbox: Receiver<Frame>) -> Self {
        Self {
            writers,
            mailbox,
            staging: Vec::new(),
        }
    }
}

impl Transport for TcpTransport {
    fn inbound(&self) -> &Receiver<Frame> {
        &self.mailbox
    }

    fn peers(&self) -> Vec<ProcessId> {
        let mut peers: Vec<ProcessId> = self.writers.keys().copied().collect();
        peers.sort_unstable();
        peers
    }

    fn send(&mut self, to: ProcessId, frame: &Bytes, _wire_size: usize) -> usize {
        if let Some(stream) = self.writers.get_mut(&to) {
            // A failed write means the peer crashed or shut down, which the protocols
            // tolerate; the frame still counts as transmitted.
            let _ = send_frame(stream, frame);
            1
        } else {
            0
        }
    }

    fn send_batch(&mut self, to: ProcessId, frames: &[OutFrame]) -> SendReceipt {
        let mut receipt = SendReceipt::default();
        let Some(stream) = self.writers.get_mut(&to) else {
            return receipt;
        };
        match frames {
            [] => {}
            [only] => {
                let _ = send_frame(stream, &only.frame);
                receipt.record(1, only.wire_size);
            }
            burst => {
                // One syscall for the whole burst: concatenate the standard
                // length-prefixed frames into the reusable staging buffer and write it
                // in one go. The wire format is unchanged — the peer's reader splits
                // the stream back frame by frame (and `read_frame_burst` drains the
                // whole burst into one pooled allocation).
                self.staging.clear();
                for f in burst {
                    receipt.record(1, f.wire_size);
                    if f.frame.len() > crate::frame::MAX_FRAME_BYTES {
                        // write_frame would refuse it; account it like a failed write.
                        continue;
                    }
                    self.staging
                        .extend_from_slice(&(f.frame.len() as u32).to_be_bytes());
                    self.staging.extend_from_slice(&f.frame);
                }
                let _ = stream
                    .write_all(&self.staging)
                    .and_then(|()| stream.flush());
            }
        }
        receipt
    }
}

/// A running TCP deployment.
pub struct TcpDeployment {
    handles: Vec<JoinHandle<NodeReport>>,
    commands: Vec<Sender<Command>>,
    deliveries: Receiver<(ProcessId, Delivery)>,
    /// One write-half clone per established link, used to shut the sockets down and
    /// unblock reader threads at the end of the run.
    all_streams: Vec<TcpStream>,
    n: usize,
}

impl TcpDeployment {
    /// Binds the endpoints, establishes the TCP mesh of `graph`, and spawns one shared
    /// [`NodeDriver`] per process, each running the `stack` engine built from the given
    /// configuration. `crashed` processes get endpoints and links (so their neighbors
    /// see an established connection, as for a process that crashes right after start-up)
    /// but no protocol thread; for a crash that keeps the protocol thread alive, assign
    /// [`brb_sim::Behavior::Crash`] through [`DriverOptions::behaviors`] instead.
    ///
    /// # Errors
    ///
    /// Returns any socket error raised while binding or connecting.
    pub fn start(
        graph: &Graph,
        config: Config,
        stack: StackSpec,
        options: DriverOptions,
        crashed: &[ProcessId],
    ) -> std::io::Result<Self> {
        let n = graph.node_count();
        // Topology-aware stacks (routed Dolev) share one copy of the graph.
        let shared_graph = std::sync::Arc::new(graph.clone());
        let endpoints = bind_endpoints(n)?;
        let links = connect_mesh(graph, &endpoints)?;
        let (delivery_tx, delivery_rx) = unbounded();
        let mut commands = Vec::with_capacity(n);
        let mut handles = Vec::new();
        let mut all_streams = Vec::new();

        for (id, node_links) in links.into_iter().enumerate() {
            let (cmd_tx, cmd_rx) = unbounded();
            commands.push(cmd_tx);
            for stream in node_links.writers.values() {
                if let Ok(clone) = stream.try_clone() {
                    all_streams.push(clone);
                }
            }
            if crashed.contains(&id) {
                // Keep the sockets open but run no protocol: a crash fault.
                continue;
            }
            let (mailbox_tx, mailbox_rx) = unbounded();
            for (peer, stream) in node_links.readers {
                spawn_link_reader(peer, stream, mailbox_tx.clone());
            }
            let mut driver = NodeDriver::new(
                stack.build_shared(&config, &shared_graph, id),
                Box::new(TcpTransport::new(node_links.writers, mailbox_rx)),
                cmd_rx,
                delivery_tx.clone(),
                &options,
            );
            if options.churn.is_some() {
                // NodeRestart events rebuild the engine with the same constructor the
                // node started from (same identity and topology view, fresh state);
                // the sockets and reader threads are untouched — only protocol state
                // is lost, like a process crash-recovering on a machine whose kernel
                // keeps the connections alive. Sharding is clamped off under churn: a
                // restart rebuilds one engine, not a pool.
                let shared_graph = shared_graph.clone();
                driver = driver
                    .with_engine_factory(move || stack.build_shared(&config, &shared_graph, id));
            } else if options.shard_workers > 1 {
                // Extra shard engines: same constructor, same identity; the driver
                // partitions broadcast instances across them by id hash.
                let extras = (1..options.shard_workers)
                    .map(|_| stack.build_shared(&config, &shared_graph, id))
                    .collect();
                driver = driver.with_shard_engines(extras);
            }
            handles.push(std::thread::spawn(move || driver.run()));
        }
        if let Some(churn) = &options.churn {
            // The pacer outlives this constructor; its schedule starts now. The join
            // handle is dropped — the thread exits once the schedule is exhausted.
            let _ = churn.spawn_pacer(commands.clone());
        }
        Ok(Self {
            handles,
            commands,
            deliveries: delivery_rx,
            all_streams,
            n,
        })
    }

    /// Binds the endpoints, establishes the TCP mesh of `graph`, and spawns one driver
    /// per process over caller-built engines — how decorator engines (e.g.
    /// [`brb_consensus::ConsensusEngine`]) run on real sockets: the caller constructs
    /// one boxed [`DynEngine`] per process (index = process id, exactly
    /// `graph.node_count()` of them), keeps its side handles, and hands the engines
    /// over. No engine factory is installed, so a restart command is a no-op
    /// (rebuilding a decorator engine would discard its volatile state mid-protocol);
    /// churn schedules still pace their link events.
    ///
    /// # Errors
    ///
    /// Returns any socket error raised while binding or connecting.
    pub fn start_with_engines(
        graph: &Graph,
        engines: Vec<Box<dyn DynEngine>>,
        options: DriverOptions,
        crashed: &[ProcessId],
    ) -> std::io::Result<Self> {
        let n = graph.node_count();
        assert_eq!(engines.len(), n, "one engine per process required");
        let endpoints = bind_endpoints(n)?;
        let links = connect_mesh(graph, &endpoints)?;
        let (delivery_tx, delivery_rx) = unbounded();
        let mut commands = Vec::with_capacity(n);
        let mut handles = Vec::new();
        let mut all_streams = Vec::new();

        for ((id, node_links), engine) in links.into_iter().enumerate().zip(engines) {
            let (cmd_tx, cmd_rx) = unbounded();
            commands.push(cmd_tx);
            for stream in node_links.writers.values() {
                if let Ok(clone) = stream.try_clone() {
                    all_streams.push(clone);
                }
            }
            if crashed.contains(&id) {
                // Keep the sockets open but run no protocol: a crash fault.
                continue;
            }
            let (mailbox_tx, mailbox_rx) = unbounded();
            for (peer, stream) in node_links.readers {
                spawn_link_reader(peer, stream, mailbox_tx.clone());
            }
            let driver = NodeDriver::new(
                engine,
                Box::new(TcpTransport::new(node_links.writers, mailbox_rx)),
                cmd_rx,
                delivery_tx.clone(),
                &options,
            );
            handles.push(std::thread::spawn(move || driver.run()));
        }
        if let Some(churn) = &options.churn {
            let _ = churn.spawn_pacer(commands.clone());
        }
        Ok(Self {
            handles,
            commands,
            deliveries: delivery_rx,
            all_streams,
            n,
        })
    }

    /// Number of processes in the deployment (including crashed ones).
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// Asks `source` to broadcast `payload`.
    pub fn broadcast(&self, source: ProcessId, payload: Payload) {
        let _ = self.commands[source].send(Command::Broadcast(payload));
    }

    /// The shared delivery stream of the deployment, for drivers that track
    /// completion themselves (see `brb_runtime::consensus::drive_consensus`).
    pub fn deliveries(&self) -> &Receiver<(ProcessId, Delivery)> {
        &self.deliveries
    }

    /// Waits until at least `expected` deliveries have been observed in total, or until
    /// `timeout` elapses. Returns the number of deliveries observed.
    pub fn await_deliveries(&self, expected: usize, timeout: Duration) -> usize {
        let deadline = std::time::Instant::now() + timeout;
        let mut seen = 0usize;
        while seen < expected {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.deliveries.recv_timeout(remaining) {
                Ok(_) => seen += 1,
                Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => break,
            }
        }
        seen
    }

    /// Replays a workload schedule against the running TCP deployment through the
    /// generator driver shared with the channel runtime
    /// (`brb_runtime::workload::drive_workload`): a generator thread fires the
    /// injections (honoring the closed-loop window), this thread tracks per-broadcast
    /// completion over the delivery stream.
    pub fn run_workload(
        &self,
        schedule: &[brb_workload::Injection],
        mode: brb_workload::LoopMode,
        pacing: brb_runtime::Pacing,
        correct: &[ProcessId],
        timeout: Duration,
    ) -> brb_runtime::WorkloadRun {
        brb_runtime::drive_workload(
            |source, payload| self.broadcast(source, payload),
            &self.deliveries,
            schedule,
            mode,
            pacing,
            correct,
            timeout,
        )
    }

    /// Shuts every node down, closes the sockets, and collects the per-node reports.
    pub fn shutdown(self) -> DeploymentReport {
        for tx in &self.commands {
            let _ = tx.send(Command::Shutdown);
        }
        let mut nodes: Vec<NodeReport> = (0..self.n)
            .map(|id| NodeReport {
                id,
                deliveries: Vec::new(),
                messages_sent: 0,
                bytes_sent: 0,
                state_bytes: 0,
                gc_retired: 0,
                restarts: 0,
                drops_by_cause: brb_trace::DropCounts::new(),
                queue_depth_peak: 0,
                decision: None,
            })
            .collect();
        for handle in self.handles {
            if let Ok(report) = handle.join() {
                let id = report.id;
                nodes[id] = report;
            }
        }
        // Unblock any reader thread still parked on a socket.
        for stream in &self.all_streams {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        DeploymentReport { nodes }
    }
}

/// Convenience wrapper: runs one broadcast of the given stack over TCP on `graph` and
/// returns the deployment report once every correct process delivered (or the timeout
/// expired).
///
/// # Errors
///
/// Returns any socket error raised while setting the deployment up.
pub fn run_tcp_broadcast(
    graph: &Graph,
    config: Config,
    stack: StackSpec,
    payload: Payload,
    source: ProcessId,
    crashed: &[ProcessId],
    timeout: Duration,
) -> std::io::Result<DeploymentReport> {
    let deployment = TcpDeployment::start(graph, config, stack, DriverOptions::default(), crashed)?;
    deployment.broadcast(source, payload);
    let expected = graph.node_count() - crashed.len();
    deployment.await_deliveries(expected, timeout);
    Ok(deployment.shutdown())
}

/// Convenience wrapper: runs one seeded consensus instance of the given stack over
/// real TCP sockets and returns the deployment report (with
/// [`NodeReport::decision`] patched in from the decision handles) together with what
/// the phase driver observed. The phase schedule, quiescence rule and decision logic
/// are the exact code the channel runtime runs
/// (`brb_runtime::consensus::drive_consensus`), so a fixed `(graph, config, stack,
/// spec)` tuple decides the same value in the same round on both live backends — and
/// on the simulator.
///
/// # Errors
///
/// Returns any socket error raised while setting the deployment up.
#[allow(clippy::too_many_arguments)]
pub fn run_tcp_consensus(
    graph: &Graph,
    config: Config,
    stack: StackSpec,
    spec: &brb_consensus::ConsensusSpec,
    f: usize,
    options: DriverOptions,
    crashed: &[ProcessId],
    timeout: Duration,
) -> std::io::Result<(DeploymentReport, brb_runtime::ConsensusRun)> {
    let n = graph.node_count();
    let grace = options.idle_shutdown;
    let (engines, handles) = brb_runtime::build_consensus_engines(graph, &config, stack, spec, f);
    let receiving = brb_runtime::receiving_processes(n, &options, crashed);
    let honest = brb_sim::honest_processes(&receiving, spec);
    let deployment = TcpDeployment::start_with_engines(graph, engines, options, crashed)?;
    let run = brb_runtime::drive_consensus(
        |source, payload| deployment.broadcast(source, payload),
        deployment.deliveries(),
        spec,
        &handles,
        &honest,
        receiving.len(),
        grace,
        timeout,
    );
    let mut report = deployment.shutdown();
    for (id, handle) in handles.iter().enumerate() {
        report.nodes[id].decision = handle.get();
    }
    Ok((report, run))
}

/// Convenience wrapper: expands `spec` into its seeded schedule, firehoses the TCP
/// deployment with it (unpaced), and returns the deployment report together with what
/// the driver observed.
///
/// # Errors
///
/// Returns any socket error raised while setting the deployment up.
pub fn run_tcp_workload(
    graph: &Graph,
    config: Config,
    stack: StackSpec,
    spec: &brb_workload::WorkloadSpec,
    seed: u64,
    crashed: &[ProcessId],
    timeout: Duration,
) -> std::io::Result<(DeploymentReport, brb_runtime::WorkloadRun)> {
    let n = graph.node_count();
    let deployment = TcpDeployment::start(graph, config, stack, DriverOptions::default(), crashed)?;
    let schedule = spec.schedule(n, seed);
    let correct: Vec<ProcessId> = (0..n).filter(|p| !crashed.contains(p)).collect();
    let run = deployment.run_workload(
        &schedule,
        spec.mode,
        brb_runtime::Pacing::Unpaced,
        &correct,
        timeout,
    );
    Ok((deployment.shutdown(), run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use brb_graph::generate;
    use brb_sim::Behavior;

    #[test]
    fn tcp_batched_send_accounts_identically_and_arrives_intact() {
        // A burst through TcpTransport::send_batch (one write syscall) must report the
        // same copy/byte totals as frame-at-a-time sends and deliver the same frames,
        // in order, through the standard length-prefixed reader.
        let graph = generate::complete(2);
        let endpoints = crate::endpoint::bind_endpoints(2).unwrap();
        let mut links = crate::endpoint::connect_mesh(&graph, &endpoints).unwrap();
        let (tx, rx) = unbounded();
        for (peer, stream) in links[1].readers.drain() {
            crate::endpoint::spawn_link_reader(peer, stream, tx.clone());
        }
        let (_unused_tx, node0_mailbox) = unbounded();
        let mut t0 = TcpTransport::new(std::mem::take(&mut links[0].writers), node0_mailbox);

        let frames: Vec<OutFrame> = (0..4)
            .map(|i| OutFrame::new(Bytes::from(vec![0xA0 + i as u8; 5 + i]), 200 + i))
            .collect();
        let mut per_frame = SendReceipt::default();
        for f in &frames {
            per_frame.record(1, f.wire_size); // send() returns 1 per linked neighbor
        }
        let receipt = t0.send_batch(1, &frames);
        assert_eq!(receipt, per_frame, "batched receipt equals per-frame totals");
        for f in &frames {
            let got = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(got.from, 0);
            assert_eq!(got.bytes, f.frame);
            assert!(!got.batch, "TCP bursts reframe as standard single frames");
        }
        // And a batch to a process without a link accounts zero, like send().
        assert_eq!(t0.send_batch(7, &frames), SendReceipt::default());
    }

    #[test]
    fn tcp_workload_firehoses_the_socket_deployment() {
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let spec = brb_workload::WorkloadSpec::constant_rate(1_000, 16)
            .with_payload_bytes(32)
            .closed_loop(8);
        let (report, run) = run_tcp_workload(
            &graph,
            config,
            StackSpec::Bd,
            &spec,
            11,
            &[],
            Duration::from_secs(30),
        )
        .expect("deployment starts");
        assert_eq!(run.injected, 16);
        assert!(run.all_completed(), "{run:?}");
        let everyone: Vec<ProcessId> = (0..10).collect();
        assert!(report.all_delivered(&everyone, 16));
        assert!(report.total_bytes() > 0);
    }

    #[test]
    fn tcp_broadcast_delivers_everywhere() {
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let report = run_tcp_broadcast(
            &graph,
            config,
            StackSpec::Bd,
            Payload::from("tcp hello"),
            0,
            &[],
            Duration::from_secs(20),
        )
        .expect("deployment starts");
        let everyone: Vec<ProcessId> = (0..10).collect();
        assert!(
            report.all_delivered(&everyone, 1),
            "every process must deliver"
        );
        assert!(report.total_messages() > 0);
        assert!(report.total_bytes() > 0);
        for node in &report.nodes {
            assert_eq!(node.deliveries[0].payload, Payload::from("tcp hello"));
        }
    }

    #[test]
    fn tcp_broadcast_with_crashed_process_still_delivers() {
        let graph = generate::circulant(13, 2); // 4-regular, supports f = 1
        let config = Config::bandwidth_preset(13, 1);
        let crashed = [4usize];
        let report = run_tcp_broadcast(
            &graph,
            config,
            StackSpec::Bd,
            Payload::filled(7, 256),
            0,
            &crashed,
            Duration::from_secs(20),
        )
        .expect("deployment starts");
        let correct: Vec<ProcessId> = (0..13).filter(|p| !crashed.contains(p)).collect();
        assert!(report.all_delivered(&correct, 1));
        assert!(report.nodes[4].deliveries.is_empty());
    }

    #[test]
    fn deployment_reports_process_count_and_handles_shutdown_without_broadcast() {
        let graph = generate::ring(4);
        let config = Config::plain(4, 0);
        let deployment =
            TcpDeployment::start(&graph, config, StackSpec::Bd, DriverOptions::default(), &[])
                .unwrap();
        assert_eq!(deployment.process_count(), 4);
        // No broadcast: awaiting deliveries times out at zero.
        assert_eq!(
            deployment.await_deliveries(1, Duration::from_millis(100)),
            0
        );
        let report = deployment.shutdown();
        assert_eq!(report.total_messages(), 0);
    }

    #[test]
    fn tcp_broadcast_runs_non_bd_stacks() {
        // Dolev's flooding protocol over real sockets: every node must RC-deliver the
        // broadcast of process 0 despite TCP-level interleavings.
        let graph = generate::figure1_example();
        let config = Config::bdopt(10, 1);
        let report = run_tcp_broadcast(
            &graph,
            config,
            StackSpec::Dolev,
            Payload::from("dolev over tcp"),
            0,
            &[],
            Duration::from_secs(20),
        )
        .expect("deployment starts");
        let everyone: Vec<ProcessId> = (0..10).collect();
        assert!(report.all_delivered(&everyone, 1));
    }

    #[test]
    fn behavior_decorators_run_over_real_sockets() {
        // A SilentTowards adversary on real TCP links: process 3 drops every frame
        // addressed to its victims, who still deliver through their other neighbors.
        let graph = generate::figure1_example();
        let config = Config::bdopt_mbd1(10, 1);
        let options =
            DriverOptions::default().with_behaviors(vec![(3, Behavior::SilentTowards(vec![2, 6]))]);
        let deployment = TcpDeployment::start(&graph, config, StackSpec::Bd, options, &[])
            .expect("deployment starts");
        deployment.broadcast(0, Payload::from("targeted over tcp"));
        deployment.await_deliveries(10, Duration::from_secs(20));
        let report = deployment.shutdown();
        let correct: Vec<ProcessId> = (0..10).filter(|&p| p != 3).collect();
        assert!(report.all_delivered(&correct, 1));
    }
}
