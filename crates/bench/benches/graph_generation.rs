//! Criterion microbenchmark of topology generation and connectivity verification, the
//! preprocessing step of every experiment (Sec. 7.1 of the paper uses NetworkX for this).

use brb_graph::{connectivity, generate};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_random_regular(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_regular_graph");
    for &(n, k) in &[(30usize, 9usize), (50, 25), (100, 21)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| {
                    let g = generate::random_regular_graph(black_box(n), black_box(k), &mut rng)
                        .unwrap();
                    black_box(g.edge_count())
                })
            },
        );
    }
    group.finish();
}

fn bench_vertex_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_connectivity");
    for &(n, k) in &[(20usize, 5usize), (30, 9)] {
        let mut rng = StdRng::seed_from_u64(3);
        let graph = generate::random_regular_graph(n, k, &mut rng).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &graph,
            |b, graph| b.iter(|| black_box(connectivity::vertex_connectivity(graph))),
        );
    }
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_random_regular, bench_vertex_connectivity
}
criterion_main!(benches);
