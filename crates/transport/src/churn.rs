//! Live-backend replay of a [`ChurnSpec`]: the simulator's churn schedule on real links.
//!
//! The simulator interleaves compiled [`ChurnEvent`]s into its virtual-time heaps; the
//! live backends replay the *same* compiled schedule at wall-clock-scaled times. Three
//! pieces make the two sides agree:
//!
//! * [`ChurnHandle`] — one shared, thread-safe [`LinkState`] per deployment plus the
//!   compiled event list. Every node's decorated transport consults it at **send time**
//!   (exactly where the simulator consults its own copy), so a frame on a downed link is
//!   dropped before it enters the network while frames already in flight still arrive;
//! * [`ChurnLink`] — the outermost transport decorator: a synchronous gate that drops
//!   frames on downed links (not counted as sent, like the simulator) and applies the
//!   per-directed-link loss overrides. The per-link *delay* overrides ride on the
//!   existing [`crate::policy::DelayedLink`] delay line (see
//!   [`crate::policy::DelayedLink::with_churn`]), which adds the scaled extra delay to
//!   each copy's own sampled delay — again matching the simulator's per-copy arithmetic;
//! * [`ChurnHandle::spawn_pacer`] — a detached scheduler thread that sleeps to each
//!   event's scaled deadline, mutates the shared link state, and routes
//!   [`ChurnAction::NodeRestart`] to the affected node's command channel as
//!   [`Command::Restart`] (the driver rebuilds its engine; see
//!   [`crate::NodeDriver::with_engine_factory`]).

use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use brb_core::types::ProcessId;
use brb_sim::churn::{ChurnAction, ChurnEvent, ChurnSpec, LinkState};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::driver::Command;
use crate::link::Frame;
use crate::transport::{OutFrame, SendReceipt, Transport};

/// The deployment-wide churn state every decorated transport consults.
#[derive(Debug)]
struct LiveChurn {
    /// The mutable link state, advanced by the pacer and read by every [`ChurnLink`].
    state: Mutex<LinkState>,
    /// The topology's undirected edge list (needed to expand a partition into its cut).
    edges: Vec<(ProcessId, ProcessId)>,
    /// The compiled schedule the pacer replays, in order.
    events: Vec<ChurnEvent>,
    /// Wall-clock seconds per virtual second (the same compression knob as
    /// [`crate::LinkDelay::Scaled`]): event times and delay overrides are multiplied
    /// by this factor.
    scale: f64,
}

/// Shared handle onto one deployment's churn schedule and its evolving link state.
///
/// Cheap to clone (an [`Arc`] inside); a deployment creates one from the scenario's
/// [`ChurnSpec`], installs it in [`crate::DriverOptions::with_churn`] so every node's
/// transport is gated by it, and spawns the pacer with the command senders.
#[derive(Debug, Clone)]
pub struct ChurnHandle {
    shared: Arc<LiveChurn>,
}

impl ChurnHandle {
    /// Compiles `spec` with `seed` (the same pure compilation the simulator uses, so
    /// both sides replay the identical event list) over the topology's undirected
    /// `edges`. `scale` converts virtual event times and delay overrides to wall-clock
    /// durations — `1.0` replays the schedule in real time.
    pub fn new(spec: &ChurnSpec, seed: u64, scale: f64, edges: &[(ProcessId, ProcessId)]) -> Self {
        Self {
            shared: Arc::new(LiveChurn {
                state: Mutex::new(LinkState::new()),
                edges: edges.to_vec(),
                events: spec.compile(seed),
                scale,
            }),
        }
    }

    /// The compiled schedule this handle replays.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.shared.events
    }

    /// Whether the schedule contains a [`ChurnAction::NodeRestart`] — deployments use
    /// this to decide whether the drivers need an engine factory.
    pub fn has_restarts(&self) -> bool {
        self.shared
            .events
            .iter()
            .any(|e| matches!(e.action, ChurnAction::NodeRestart { .. }))
    }

    /// Whether a frame `from -> to` may enter the network right now.
    pub fn allows(&self, from: ProcessId, to: ProcessId) -> bool {
        self.shared.state.lock().unwrap().allows(from, to)
    }

    /// The loss-probability override of the directed link `from -> to`, when set.
    pub fn loss_probability(&self, from: ProcessId, to: ProcessId) -> Option<f64> {
        self.shared.state.lock().unwrap().loss_probability(from, to)
    }

    /// The extra one-way delay of the directed link `from -> to` as a wall-clock
    /// duration (the virtual override scaled by the handle's scale factor; zero when no
    /// override is set).
    pub fn extra_delay(&self, from: ProcessId, to: ProcessId) -> Duration {
        let micros = self
            .shared
            .state
            .lock()
            .unwrap()
            .extra_delay_micros(from, to);
        if micros == 0 {
            Duration::ZERO
        } else {
            Duration::from_micros(micros).mul_f64(self.shared.scale)
        }
    }

    /// The directed links currently down (for assertions and diagnostics).
    pub fn down_links(&self) -> Vec<(ProcessId, ProcessId)> {
        self.shared.state.lock().unwrap().down_links()
    }

    /// Applies one action to the shared link state; returns the process to restart for
    /// [`ChurnAction::NodeRestart`] (which only the caller can carry out).
    pub fn apply(&self, action: &ChurnAction) -> Option<ProcessId> {
        self.shared
            .state
            .lock()
            .unwrap()
            .apply(action, &self.shared.edges)
    }

    /// Spawns the detached pacer thread: for each compiled event it sleeps until the
    /// event's scaled deadline (measured from the moment this method is called), applies
    /// the action to the shared link state, and sends [`Command::Restart`] on
    /// `commands[p]` for a restart of process `p`. Returns the join handle, which
    /// deployments may drop — the pacer exits once the schedule is exhausted.
    pub fn spawn_pacer(&self, commands: Vec<Sender<Command>>) -> std::thread::JoinHandle<()> {
        let handle = self.clone();
        std::thread::spawn(move || {
            let start = Instant::now();
            for event in handle.shared.events.clone() {
                let due =
                    start + Duration::from_micros(event.at_micros).mul_f64(handle.shared.scale);
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                if let Some(process) = handle.apply(&event.action) {
                    if let Some(tx) = commands.get(process) {
                        let _ = tx.send(Command::Restart);
                    }
                }
            }
        })
    }
}

/// The outermost link decorator of a churned deployment: consults the shared
/// [`ChurnHandle`] per outbound frame, exactly like the simulator consults its
/// [`LinkState`] per `Send` action.
///
/// A frame on a downed link is dropped *before* any inner decorator sees it — it is not
/// counted as sent, does not advance a [`crate::FaultyLink`]'s attempt counter and never
/// enters a delay line, mirroring the simulator's ordering (churn gate, then loss
/// override, then behavior, then delay). Loss overrides draw from this decorator's own
/// seeded RNG stream, so enabling churn does not shift any other decorator's draws.
pub struct ChurnLink<T> {
    inner: T,
    handle: ChurnHandle,
    /// The sending process (the `from` side of every gating decision).
    id: ProcessId,
    rng: StdRng,
    /// Drop accounting ([`brb_trace::DropCause::ChurnGate`] / `Loss`); `None` leaves
    /// drops unobserved.
    observer: Option<crate::policy::LinkObserver>,
}

impl<T: Transport> ChurnLink<T> {
    /// Wraps `inner` as process `id`'s outbound gate; `seed` fixes the loss-override
    /// draws.
    pub fn new(inner: T, handle: ChurnHandle, id: ProcessId, seed: u64) -> Self {
        Self {
            inner,
            handle,
            id,
            rng: StdRng::seed_from_u64(seed),
            observer: None,
        }
    }

    /// Routes this gate's drops into `observer`'s counter registry.
    #[must_use]
    pub fn with_observer(mut self, observer: crate::policy::LinkObserver) -> Self {
        self.observer = Some(observer);
        self
    }
}

impl<T: Transport> Transport for ChurnLink<T> {
    fn inbound(&self) -> &Receiver<Frame> {
        self.inner.inbound()
    }

    fn peers(&self) -> Vec<ProcessId> {
        self.inner.peers()
    }

    fn send(&mut self, to: ProcessId, frame: &Bytes, wire_size: usize) -> usize {
        if !self.handle.allows(self.id, to) {
            if let Some(observer) = &self.observer {
                observer.frame_dropped(to, brb_trace::DropCause::ChurnGate);
            }
            return 0;
        }
        if let Some(p) = self.handle.loss_probability(self.id, to) {
            if self.rng.gen_bool(p) {
                if let Some(observer) = &self.observer {
                    observer.frame_dropped(to, brb_trace::DropCause::Loss);
                }
                return 0;
            }
        }
        self.inner.send(to, frame, wire_size)
    }

    fn send_batch(&mut self, to: ProcessId, frames: &[OutFrame]) -> SendReceipt {
        // Per-frame semantics inside the batch: the gate is consulted and the loss
        // override drawn for each frame in burst order (same RNG stream as the
        // frame-at-a-time path); only the survivors travel on, still as one batch.
        let mut surviving: Vec<OutFrame> = Vec::with_capacity(frames.len());
        for f in frames {
            if !self.handle.allows(self.id, to) {
                if let Some(observer) = &self.observer {
                    observer.frame_dropped(to, brb_trace::DropCause::ChurnGate);
                }
                continue;
            }
            if let Some(p) = self.handle.loss_probability(self.id, to) {
                if self.rng.gen_bool(p) {
                    if let Some(observer) = &self.observer {
                        observer.frame_dropped(to, brb_trace::DropCause::Loss);
                    }
                    continue;
                }
            }
            surviving.push(f.clone());
        }
        if surviving.is_empty() {
            return SendReceipt::default();
        }
        self.inner.send_batch(to, &surviving)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::build_links;
    use crate::transport::ChannelTransport;

    fn pair() -> (ChannelTransport, ChannelTransport) {
        let (mut mailboxes, mut senders) = build_links(2, &[(0, 1)]);
        let t1 = ChannelTransport::new(mailboxes.pop().unwrap(), senders.pop().unwrap());
        let t0 = ChannelTransport::new(mailboxes.pop().unwrap(), senders.pop().unwrap());
        (t0, t1)
    }

    #[test]
    fn churn_link_drops_frames_on_downed_links_without_counting_them() {
        let (t0, t1) = pair();
        let handle = ChurnHandle::new(&ChurnSpec::new(), 1, 1.0, &[(0, 1)]);
        let mut link = ChurnLink::new(t0, handle.clone(), 0, 1);
        assert_eq!(link.send(1, &Bytes::from_static(b"up"), 2), 1);
        handle.apply(&ChurnAction::LinkDown { a: 0, b: 1 });
        assert_eq!(link.send(1, &Bytes::from_static(b"down"), 4), 0);
        handle.apply(&ChurnAction::LinkUp { a: 0, b: 1 });
        assert_eq!(link.send(1, &Bytes::from_static(b"back"), 4), 1);
        let mut frames: Vec<Frame> = Vec::new();
        while let Ok(frame) = t1.inbound().try_recv() {
            frames.push(frame);
        }
        assert_eq!(frames.len(), 2, "the downed-link frame never transmitted");
        assert_eq!(frames[0].bytes.as_ref(), b"up");
        assert_eq!(frames[1].bytes.as_ref(), b"back");
    }

    #[test]
    fn loss_override_drops_roughly_the_requested_fraction() {
        let (t0, t1) = pair();
        let handle = ChurnHandle::new(&ChurnSpec::new(), 1, 1.0, &[(0, 1)]);
        handle.apply(&ChurnAction::SetLinkLoss {
            from: 0,
            to: 1,
            probability: 0.5,
        });
        let mut link = ChurnLink::new(t0, handle, 0, 7);
        let sent: usize = (0..1000)
            .map(|_| link.send(1, &Bytes::from_static(b"x"), 1))
            .sum();
        assert!((300..700).contains(&sent), "sent {sent} of 1000");
        assert_eq!(t1.inbound().len(), sent);
    }

    #[test]
    fn pacer_replays_the_schedule_and_routes_restarts() {
        let spec = ChurnSpec::new()
            .at(0, ChurnAction::LinkDown { a: 0, b: 1 })
            .at(20_000, ChurnAction::NodeRestart { process: 1 })
            .at(40_000, ChurnAction::LinkUp { a: 0, b: 1 });
        let handle = ChurnHandle::new(&spec, 9, 1.0, &[(0, 1)]);
        assert!(handle.has_restarts());
        assert_eq!(handle.events().len(), 3);
        let (tx0, _rx0) = crossbeam::channel::unbounded();
        let (tx1, rx1) = crossbeam::channel::unbounded();
        let pacer = handle.spawn_pacer(vec![tx0, tx1]);
        pacer.join().unwrap();
        assert!(
            matches!(rx1.try_recv(), Ok(Command::Restart)),
            "the restart event reaches node 1's command channel"
        );
        assert!(handle.allows(0, 1), "the final LinkUp restored the link");
        assert!(handle.down_links().is_empty());
    }

    #[test]
    fn extra_delay_is_scaled_and_asymmetric() {
        let handle = ChurnHandle::new(&ChurnSpec::new(), 1, 0.5, &[(0, 1)]);
        handle.apply(&ChurnAction::SetLinkDelay {
            from: 0,
            to: 1,
            extra_micros: 100_000,
        });
        assert_eq!(handle.extra_delay(0, 1), Duration::from_millis(50));
        assert_eq!(handle.extra_delay(1, 0), Duration::ZERO, "asymmetric");
    }
}
