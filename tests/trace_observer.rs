//! Observer-effect freedom of the `brb-trace` layer, plus the pinned causal trace.
//!
//! Tracing must be purely observational: attaching a sink to a simulation may not
//! change a single byte of the run's canonical metrics. This suite re-runs the exact
//! scenarios behind every committed golden snapshot (`tests/golden/*.txt`, normally
//! exercised by `tests/determinism.rs` without tracing) with a `VecSink` attached and
//! compares `RunMetrics::canonical_text` against the committed files — so a divergence
//! points at a tracing hook that perturbed scheduling, RNG consumption or accounting.
//! A proptest widens the check across random quick-scale parameter tuples, and the
//! Figure-1 scenario's order-normalized causal event sequence is itself pinned as a
//! golden snapshot (`bd_fig1_trace`).
//!
//! Regenerate the trace snapshot after an intentional protocol change:
//!
//! ```sh
//! UPDATE_GOLDEN=1 cargo test -q -p brb --test trace_observer && \
//!     cargo test -q -p brb --test trace_observer
//! ```

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use brb_core::bracha::BrachaProcess;
use brb_core::config::Config;
use brb_core::stack::StackSpec;
use brb_core::types::Payload;
use brb_core::BdProcess;
use brb_graph::{generate, NeighborIndex};
use brb_sim::experiment::experiment_graph;
use brb_sim::workload::run_workload;
use brb_sim::{
    run_experiment_recorded, run_experiment_traced, Behavior, DelayModel, ExperimentParams,
    Simulation,
};
use brb_trace::{causal_sequence, render_causal_sequence, TraceSink, VecSink};
use brb_workload::{SourceSelection, WorkloadSpec};
use proptest::prelude::*;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

/// Reads the committed golden produced by `tests/determinism.rs`. This suite never
/// rewrites those snapshots — it asserts the traced re-run matches them byte for byte.
fn committed_golden(name: &str) -> String {
    fs::read_to_string(golden_path(name)).unwrap_or_else(|_| {
        panic!(
            "missing golden snapshot {name}; generate it first with \
             UPDATE_GOLDEN=1 cargo test -q -p brb --test determinism"
        )
    })
}

/// `check_golden` for the snapshots this suite owns (the pinned causal trace).
fn check_golden(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("tests/golden must be creatable");
        fs::write(&path, rendered).expect("golden snapshot must be writable");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden snapshot {name}; regenerate with UPDATE_GOLDEN=1")
    });
    assert_eq!(
        expected, rendered,
        "causal trace diverged from tests/golden/{name}.txt — if the protocol change is \
         intentional, regenerate with UPDATE_GOLDEN=1 and commit the diff"
    );
}

/// The Fig. 1 BD scenario of `bd_fig1_sync`/`bd_fig1_async`, run **with** a sink.
fn bd_fig1_traced(
    config: Config,
    delay: DelayModel,
    seed: u64,
    payload: usize,
) -> (String, Vec<brb_trace::TraceEvent>) {
    let graph = generate::figure1_example();
    let index = NeighborIndex::new(&graph);
    let processes: Vec<BdProcess> = (0..graph.node_count())
        .map(|i| BdProcess::new(i, config, index.neighbors(i).to_vec()))
        .collect();
    let mut sim = Simulation::new(processes, delay, seed);
    let sink = Arc::new(VecSink::new());
    sim.set_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    sim.broadcast(0, Payload::filled(1, payload));
    sim.run_to_quiescence();
    (sim.metrics().canonical_text(), sink.take())
}

#[test]
fn tracing_is_invisible_to_bd_fig1_goldens() {
    let (sync_text, sync_events) =
        bd_fig1_traced(Config::bdopt_mbd1(10, 1), DelayModel::synchronous(), 1, 16);
    assert!(!sync_events.is_empty(), "the sink must actually observe");
    assert_eq!(committed_golden("bd_fig1_sync"), sync_text);

    let (async_text, _) = bd_fig1_traced(
        Config::latency_preset(10, 1),
        DelayModel::asynchronous(),
        7,
        1024,
    );
    assert_eq!(committed_golden("bd_fig1_async"), async_text);
}

#[test]
fn tracing_is_invisible_to_bracha_golden() {
    let n = 7;
    let processes: Vec<BrachaProcess> = (0..n).map(|i| BrachaProcess::new(i, n, 2)).collect();
    let mut sim = Simulation::new(processes, DelayModel::synchronous(), 11);
    let sink = Arc::new(VecSink::new());
    sim.set_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    sim.broadcast(2, Payload::from("golden"));
    sim.run_to_quiescence();
    assert!(!sink.take().is_empty());
    assert_eq!(
        committed_golden("bracha_complete_n7"),
        sim.metrics().canonical_text()
    );
}

#[test]
fn tracing_is_invisible_to_byzantine_golden() {
    let graph = generate::figure1_example();
    let index = NeighborIndex::new(&graph);
    let config = Config::bdopt_mbd1(10, 1);
    let processes: Vec<BdProcess> = (0..graph.node_count())
        .map(|i| BdProcess::new(i, config, index.neighbors(i).to_vec()))
        .collect();
    let mut sim = Simulation::new(processes, DelayModel::asynchronous(), 13);
    let sink = Arc::new(VecSink::new());
    sim.set_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    sim.set_behavior(4, Behavior::Replayer);
    sim.set_behavior(7, Behavior::Lossy(0.3));
    sim.broadcast(0, Payload::filled(3, 256));
    sim.run_to_quiescence();
    assert_eq!(
        committed_golden("bd_fig1_byzantine"),
        sim.metrics().canonical_text()
    );
}

#[test]
fn tracing_is_invisible_to_experiment_goldens() {
    // bd_random_n16_crashed.
    let params = ExperimentParams {
        n: 16,
        connectivity: 5,
        f: 2,
        crashed: 2,
        payload_size: 64,
        config: Config::bandwidth_preset(16, 2),
        stack: StackSpec::Bd,
        delay: DelayModel::synchronous(),
        seed: 11,
        workload: None,
        behaviors: Vec::new(),
        churn: None,
        consensus: None,
    };
    let graph = experiment_graph(16, 5, 33);
    let traced = run_experiment_traced(&params, &graph);
    assert!(!traced.events.is_empty());
    assert_eq!(
        committed_golden("bd_random_n16_crashed"),
        traced.record.metrics.canonical_text()
    );

    // bd_planar_grid_churn.
    use brb_sim::churn::{ChurnAction, ChurnSpec};
    let graph = brb_graph::families::planar_grid(5, 5);
    let churn = ChurnSpec::new()
        .at(
            0,
            ChurnAction::SetLinkDelay {
                from: 0,
                to: 1,
                extra_micros: 5_000,
            },
        )
        .flap(0, 1, 10_000, 40_000, 10_000, 1)
        .at(
            500_000,
            ChurnAction::Partition {
                side: vec![0, 1, 2, 3, 4],
            },
        )
        .at(550_000, ChurnAction::Heal)
        .at(600_000, ChurnAction::NodeRestart { process: 24 });
    let params = ExperimentParams {
        n: 25,
        connectivity: 3,
        f: 1,
        crashed: 0,
        payload_size: 96,
        config: Config::bdopt_mbd1(25, 1),
        stack: StackSpec::Bd,
        delay: DelayModel::synchronous(),
        seed: 17,
        workload: None,
        behaviors: Vec::new(),
        churn: Some(churn),
        consensus: None,
    };
    let traced = run_experiment_traced(&params, &graph);
    assert_eq!(
        committed_golden("bd_planar_grid_churn"),
        traced.record.metrics.canonical_text()
    );
}

/// The sweep goldens (`sweep_matrix`, `workload_sweep_matrix`) concatenate per-spec
/// canonical texts; a sweep outcome for `(params, graph_seed)` is exactly
/// `run_experiment_*(params, experiment_graph(n, k, graph_seed))`, so the traced
/// re-run must reproduce every section of the committed files.
fn assert_traced_sections_match(golden: &str, sections: &[(String, u64, ExperimentParams)]) {
    let mut rendered = String::new();
    for (label, graph_seed, params) in sections {
        let graph = experiment_graph(params.n, params.connectivity, *graph_seed);
        let traced = run_experiment_traced(params, &graph);
        rendered.push_str("=== ");
        rendered.push_str(label);
        rendered.push('\n');
        rendered.push_str(&traced.record.metrics.canonical_text());
    }
    assert_eq!(golden, rendered);
}

#[test]
fn tracing_is_invisible_to_sweep_matrix_golden() {
    let mut sections = Vec::new();
    for &(n, k, f) in &[(10usize, 4usize, 1usize), (12, 5, 2), (16, 7, 3)] {
        for (tag, config) in [
            ("mbd1", Config::bdopt_mbd1(n, f)),
            ("bdw", Config::bandwidth_preset(n, f)),
        ] {
            for run in 0..2u64 {
                let mut params = ExperimentParams::new(n, k, f, config);
                params.payload_size = 128;
                params.seed = 21 + run;
                sections.push((
                    format!("matrix/n={n}/k={k}/{tag}/run={run}"),
                    4_000 + run,
                    params,
                ));
            }
        }
    }
    assert_traced_sections_match(&committed_golden("sweep_matrix"), &sections);
}

#[test]
fn tracing_is_invisible_to_workload_goldens() {
    // workload_fig1_64bc: the 64-broadcast overlapping workload on Fig. 1.
    let graph = generate::figure1_example();
    let index = NeighborIndex::new(&graph);
    let config = Config::bdopt_mbd1(10, 1);
    let processes: Vec<BdProcess> = (0..graph.node_count())
        .map(|i| BdProcess::new(i, config, index.neighbors(i).to_vec()))
        .collect();
    let mut sim = Simulation::new(processes, DelayModel::asynchronous(), 5);
    let sink = Arc::new(VecSink::new());
    sim.set_trace_sink(sink.clone() as Arc<dyn TraceSink>);
    let spec = WorkloadSpec::poisson(2_000, 64)
        .with_sources(SourceSelection::Zipf { exponent: 1.1 })
        .with_payload_bytes(128);
    let schedule = spec.schedule(10, 77);
    run_workload(&mut sim, &schedule, spec.mode);
    assert_eq!(
        committed_golden("workload_fig1_64bc"),
        sim.metrics().canonical_text()
    );

    // workload_sweep_matrix: arrival × source-selection shapes, two seeds each.
    let (n, k, f) = (16usize, 5usize, 2usize);
    let shapes: Vec<(&str, WorkloadSpec)> = vec![
        ("constant", WorkloadSpec::constant_rate(10_000, 20)),
        (
            "poisson-zipf",
            WorkloadSpec::poisson(10_000, 20).with_sources(SourceSelection::Zipf { exponent: 1.2 }),
        ),
        ("bursty", WorkloadSpec::bursty(5, 500, 40_000, 20)),
        ("closed", WorkloadSpec::constant_rate(0, 20).closed_loop(4)),
    ];
    let mut sections = Vec::new();
    for (tag, workload) in shapes {
        for run in 0..2u64 {
            let mut params = ExperimentParams::new(n, k, f, Config::bdopt_mbd1(n, f));
            params.payload_size = 64;
            params.seed = 31 + run;
            params.workload = Some(workload.clone());
            sections.push((format!("workload/{tag}/run={run}"), 6_000 + run, params));
        }
    }
    assert_traced_sections_match(&committed_golden("workload_sweep_matrix"), &sections);
}

#[test]
fn bd_fig1_causal_trace_matches_golden() {
    let (_, events) =
        bd_fig1_traced(Config::bdopt_mbd1(10, 1), DelayModel::synchronous(), 1, 16);
    let rendered = render_causal_sequence(&causal_sequence(&events));
    check_golden("bd_fig1_trace", &rendered);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Observer-effect freedom across random quick-scale parameter tuples: the traced
    /// run's canonical metrics equal the untraced run's, byte for byte.
    #[test]
    fn tracing_never_changes_canonical_metrics(
        n in 8usize..14,
        seed in 0u64..500,
        crashed in 0usize..2,
        payload in 16usize..128,
    ) {
        let (k, f) = (4usize, 1usize);
        let mut params = ExperimentParams::new(n, k, f, Config::bdopt_mbd1(n, f));
        params.seed = seed;
        params.crashed = crashed;
        params.payload_size = payload;
        let graph = experiment_graph(n, k, seed.wrapping_add(9_999));
        let plain = run_experiment_recorded(&params, &graph);
        let traced = run_experiment_traced(&params, &graph);
        prop_assert_eq!(
            plain.metrics.canonical_text(),
            traced.record.metrics.canonical_text()
        );
        prop_assert!(!traced.events.is_empty());
    }
}
