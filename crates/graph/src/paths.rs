//! Extraction of internally node-disjoint paths.
//!
//! [`crate::connectivity`] only *counts* disjoint paths (that is all Dolev's flooding
//! variant needs), but Dolev's **known-topology** variant routes every message along a
//! fixed set of `2f+1` internally node-disjoint routes computed in advance. This module
//! extracts those routes: [`vertex_disjoint_paths`] returns an explicit maximum set of
//! internally node-disjoint `s → t` paths by decomposing a unit-capacity node-split
//! max-flow.

use std::collections::VecDeque;

use crate::graph::{Graph, ProcessId};

/// Returns a maximum-cardinality set of internally node-disjoint paths from `s` to `t`.
///
/// Each returned path starts with `s`, ends with `t`, and lists every intermediate node in
/// order. A direct edge `{s, t}` yields the two-node path `[s, t]`. Distinct paths share no
/// intermediate node. The number of returned paths equals
/// [`crate::connectivity::local_connectivity`]`(g, s, t)`.
///
/// Paths are returned sorted by their node sequence so the output is deterministic.
///
/// # Panics
///
/// Panics if `s == t` or either endpoint is out of range.
pub fn vertex_disjoint_paths(g: &Graph, s: ProcessId, t: ProcessId) -> Vec<Vec<ProcessId>> {
    assert!(s != t, "disjoint paths are undefined for s == t");
    assert!(
        s < g.node_count() && t < g.node_count(),
        "node out of range"
    );
    let mut net = SplitFlow::new(g, s, t);
    net.run();
    let mut paths = net.decompose(g.node_count(), s, t);
    paths.sort();
    paths
}

/// Returns up to `k` internally node-disjoint paths from `s` to `t`, preferring shorter
/// paths first.
///
/// This is the route-selection step of the known-topology Dolev variant: a source that
/// needs `2f+1` routes calls this with `k = 2f+1`. If the graph offers fewer than `k`
/// disjoint paths all of them are returned, so callers must check the length of the result
/// against their fault assumption.
pub fn k_disjoint_routes(g: &Graph, s: ProcessId, t: ProcessId, k: usize) -> Vec<Vec<ProcessId>> {
    let mut all = vertex_disjoint_paths(g, s, t);
    all.sort_by_key(|p| (p.len(), p.clone()));
    all.truncate(k);
    all
}

/// Unit-capacity node-split flow network that also supports decomposing the final flow
/// into explicit paths.
struct SplitFlow {
    /// `edges[i] = (to, cap)`; reverse edge at `i ^ 1`. Original forward edges keep their
    /// index parity (even = forward).
    edges: Vec<(usize, u32)>,
    adj: Vec<Vec<usize>>,
    source: usize,
    sink: usize,
}

impl SplitFlow {
    fn new(g: &Graph, s: ProcessId, t: ProcessId) -> Self {
        let n = g.node_count();
        let mut net = SplitFlow {
            edges: Vec::new(),
            adj: vec![Vec::new(); 2 * n],
            source: 2 * s + 1,
            sink: 2 * t,
        };
        const INF: u32 = u32::MAX / 2;
        for v in 0..n {
            let cap = if v == s || v == t { INF } else { 1 };
            net.add_edge(2 * v, 2 * v + 1, cap);
        }
        for (u, v) in g.edges() {
            net.add_edge(2 * u + 1, 2 * v, 1);
            net.add_edge(2 * v + 1, 2 * u, 1);
        }
        net
    }

    fn add_edge(&mut self, from: usize, to: usize, cap: u32) {
        let idx = self.edges.len();
        self.edges.push((to, cap));
        self.edges.push((from, 0));
        self.adj[from].push(idx);
        self.adj[to].push(idx + 1);
    }

    /// Edmonds–Karp augmentation until no augmenting path remains.
    fn run(&mut self) {
        loop {
            let mut prev: Vec<Option<usize>> = vec![None; self.adj.len()];
            let mut reached = vec![false; self.adj.len()];
            reached[self.source] = true;
            let mut queue = VecDeque::from([self.source]);
            while let Some(u) = queue.pop_front() {
                if u == self.sink {
                    break;
                }
                for &ei in &self.adj[u] {
                    let (to, cap) = self.edges[ei];
                    if cap > 0 && !reached[to] {
                        reached[to] = true;
                        prev[to] = Some(ei);
                        queue.push_back(to);
                    }
                }
            }
            if !reached[self.sink] {
                return;
            }
            let mut v = self.sink;
            while v != self.source {
                let ei = prev[v].expect("path reconstructed from reached sink");
                self.edges[ei].1 -= 1;
                self.edges[ei ^ 1].1 += 1;
                v = self.edges[ei ^ 1].0;
            }
        }
    }

    /// Follows saturated inter-node edges from the source, yielding one node path per unit
    /// of flow. Cancelling flows cannot appear because every internal node has capacity 1.
    fn decompose(&self, n: usize, s: ProcessId, t: ProcessId) -> Vec<Vec<ProcessId>> {
        // used[ei] marks forward inter-node edges already claimed by a path.
        let mut used = vec![false; self.edges.len()];
        let mut paths = Vec::new();
        loop {
            // Start a new path from the source if an unused saturated edge leaves it.
            let mut path = vec![s];
            let mut current = self.source; // s_out
            let mut advanced = false;
            'walk: loop {
                for &ei in &self.adj[current] {
                    // Forward edges have even index; a saturated unit edge now has cap 0
                    // and its reverse has cap 1.
                    if ei % 2 != 0 || used[ei] {
                        continue;
                    }
                    let (to, cap) = self.edges[ei];
                    let reverse_cap = self.edges[ei ^ 1].1;
                    if cap == 0 && reverse_cap > 0 {
                        used[ei] = true;
                        let node = to / 2;
                        if node != *path.last().expect("path starts non-empty") {
                            path.push(node);
                        }
                        if node == t {
                            advanced = true;
                            break 'walk;
                        }
                        // Continue from node_out.
                        current = 2 * node + 1;
                        advanced = true;
                        continue 'walk;
                    }
                }
                break;
            }
            if !advanced || *path.last().expect("non-empty") != t {
                break;
            }
            debug_assert!(path.len() <= n);
            paths.push(path);
        }
        paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::local_connectivity;
    use crate::families;
    use crate::generate;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Asserts the structural invariants of a disjoint path set.
    fn assert_valid_disjoint(g: &Graph, s: ProcessId, t: ProcessId, paths: &[Vec<ProcessId>]) {
        let mut seen_internal = std::collections::BTreeSet::new();
        for p in paths {
            assert!(p.len() >= 2, "a path has at least two nodes");
            assert_eq!(p[0], s);
            assert_eq!(*p.last().unwrap(), t);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]), "edge {:?} missing", w);
            }
            for &node in &p[1..p.len() - 1] {
                assert!(
                    seen_internal.insert(node),
                    "internal node {node} reused across paths"
                );
                assert!(node != s && node != t);
            }
        }
    }

    #[test]
    fn complete_graph_paths_match_connectivity() {
        let g = generate::complete(6);
        let paths = vertex_disjoint_paths(&g, 0, 5);
        assert_eq!(paths.len(), 5);
        assert_valid_disjoint(&g, 0, 5, &paths);
    }

    #[test]
    fn ring_has_exactly_two_paths() {
        let g = generate::ring(8);
        let paths = vertex_disjoint_paths(&g, 0, 4);
        assert_eq!(paths.len(), 2);
        assert_valid_disjoint(&g, 0, 4, &paths);
        // The two arcs of the ring.
        assert!(paths.contains(&vec![0, 1, 2, 3, 4]));
        assert!(paths.contains(&vec![0, 7, 6, 5, 4]));
    }

    #[test]
    fn direct_edge_is_a_two_node_path() {
        let g = generate::complete(3);
        let paths = vertex_disjoint_paths(&g, 0, 1);
        assert!(paths.contains(&vec![0, 1]));
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn petersen_graph_has_three_disjoint_paths_between_any_pair() {
        let g = generate::figure1_example();
        for s in 0..10 {
            for t in (s + 1)..10 {
                let paths = vertex_disjoint_paths(&g, s, t);
                assert_eq!(paths.len(), 3, "pair ({s}, {t})");
                assert_valid_disjoint(&g, s, t, &paths);
            }
        }
    }

    #[test]
    fn path_count_matches_local_connectivity_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(2024);
        for seed in 0..5u64 {
            let _ = seed;
            let g = generate::random_regular_connected(16, 5, 5, &mut rng).unwrap();
            for &(s, t) in &[(0usize, 8usize), (1, 15), (3, 12)] {
                let paths = vertex_disjoint_paths(&g, s, t);
                assert_eq!(paths.len(), local_connectivity(&g, s, t));
                assert_valid_disjoint(&g, s, t, &paths);
            }
        }
    }

    #[test]
    fn harary_graph_paths_are_tight() {
        let g = families::harary(5, 11).unwrap();
        let paths = vertex_disjoint_paths(&g, 0, 5);
        assert_eq!(paths.len(), 5);
        assert_valid_disjoint(&g, 0, 5, &paths);
    }

    #[test]
    fn disconnected_pair_has_no_paths() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert!(vertex_disjoint_paths(&g, 0, 3).is_empty());
    }

    #[test]
    fn k_disjoint_routes_truncates_and_prefers_short_paths() {
        let g = generate::complete(6);
        let routes = k_disjoint_routes(&g, 0, 5, 3);
        assert_eq!(routes.len(), 3);
        // The direct edge is the shortest possible route and must be kept.
        assert_eq!(routes[0], vec![0, 5]);
        let all = k_disjoint_routes(&g, 0, 5, 100);
        assert_eq!(all.len(), 5);
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn same_endpoints_panic() {
        let g = generate::complete(3);
        let _ = vertex_disjoint_paths(&g, 1, 1);
    }
}
