//! Virtual time of the discrete-event simulation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, with microsecond resolution.
///
/// The simulation starts at [`SimTime::ZERO`]; latencies are differences of `SimTime`s.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// This time in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference between two times.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(50).as_micros(), 50_000);
        assert_eq!(SimTime::from_micros(1_500).as_millis_f64(), 1.5);
        assert_eq!(SimTime::ZERO.as_micros(), 0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(4);
        assert_eq!((a + b).as_micros(), 14_000);
        assert_eq!((a - b).as_micros(), 6_000);
        assert_eq!((b - a).as_micros(), 0, "subtraction saturates");
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_micros(), 14_000);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert_eq!(SimTime::from_millis(50).to_string(), "50.000 ms");
    }
}
