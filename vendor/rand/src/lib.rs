//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no crates.io access, so this crate
//! re-implements the random-number subset the workspace uses: [`rngs::StdRng`] (a
//! deterministic xoshiro256\*\* generator seeded via SplitMix64), the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, uniform range sampling for the primitive
//! integer and float types, [`seq::SliceRandom::shuffle`] and [`thread_rng`].
//!
//! Determinism matters more than statistical perfection here: every generator is a pure
//! function of its 64-bit seed, identical across platforms, so simulation runs and
//! property tests reproduce bit-for-bit everywhere.

#![forbid(unsafe_code)]

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// High-level convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution (uniform over the
    /// integer domain, `[0, 1)` for floats, fair coin for `bool`).
    fn gen<T>(&mut self) -> T
    where
        T: SampleStandard,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from the given range, which must be non-empty.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (which must be within `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from ambient (non-reproducible) state.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    t ^ COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
}

/// Sampling from a type's standard distribution; backs [`Rng::gen`].
pub trait SampleStandard {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly; backs [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t>::sample_standard(rng);
                let value = self.start + unit * (self.end - self.start);
                // start + unit*(end-start) can round up to exactly `end`; keep the
                // documented half-open contract.
                if value >= self.end {
                    self.end.next_down()
                } else {
                    value
                }
            }
        }
    )*};
}

impl_range_float!(f32, f64);

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256\*\* seeded via SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` (whose algorithm is unspecified and may change
    /// between releases), this generator is pinned so that committed test seeds reproduce
    /// identically on every machine.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // xoshiro256** must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Generator returned by [`crate::thread_rng`].
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        inner: StdRng,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            Self {
                inner: StdRng::from_entropy(),
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

/// Returns a process-locally seeded generator (not reproducible across runs).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

pub mod seq {
    //! Random sequence operations.

    use super::{Rng, RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = (0..self.len()).sample_from(rng);
                self.get(idx)
            }
        }
    }

    const _: fn(&mut dyn RngCore) = |_| {};
}

pub mod distributions {
    //! Distribution sampling, mirroring `rand::distributions`.

    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The standard distribution (see [`super::SampleStandard`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: super::SampleStandard> Distribution<T> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_standard(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen_range(0.5..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
