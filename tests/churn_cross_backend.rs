//! Cross-backend churn conformance: one seeded [`ChurnSpec`] — a flapping link under
//! live traffic, a partition/heal cycle in a quiescent gap, and a node restart with
//! state loss — runs on the discrete-event simulator (virtual time), the channel
//! runtime and the TCP deployment (wall clock, via the pacer thread), and the three
//! backends must agree.
//!
//! "Agree" means: for every process, the *set* of `(broadcast id, payload)` deliveries
//! is identical across the backends, every backend's logs satisfy all four BRB
//! properties for all ten broadcasts, and the restarted node reports exactly one
//! restart on the live backends while retaining its pre-restart deliveries in the
//! durable log.
//!
//! The schedule is chosen so completeness is *guaranteed*, not timing-dependent:
//!
//! * the flap downs a single edge of a 5-connected graph while wave one disseminates —
//!   the survivors still give every pair at least the `f + 1 = 3` disjoint paths the
//!   Dolev layer needs, so dropped frames cost latency, never delivery;
//! * the partition (processes `{0, 1, 2}` cut off), heal and restart all sit in the
//!   quiescent gap between the waves — the live runs only reach the gap after
//!   [`Deployment::await_deliveries`] confirmed wave one finished, so no delivery can
//!   depend on a frame the partition would eat;
//! * the restarted process (13) never sources a broadcast — its per-source sequence
//!   counter resets with the volatile state, so a post-restart source would mint
//!   colliding broadcast ids, which is exactly what the durable-log suppression exists
//!   to keep out of the delivery stream.

use std::collections::BTreeSet;
use std::time::{Duration, Instant};

use brb_core::config::Config;
use brb_core::stack::{DynStack, StackSpec};
use brb_core::types::{BroadcastId, Delivery, Payload, ProcessId};
use brb_core::Protocol;
use brb_graph::generate;
use brb_net::TcpDeployment;
use brb_runtime::{Deployment, DriverOptions};
use brb_sim::churn::{ChurnAction, ChurnSpec};
use brb_sim::experiment::experiment_graph;
use brb_sim::invariants::{check_brb, BroadcastRecord};
use brb_sim::{DelayModel, SimTime, Simulation};
use brb_transport::ChurnHandle;

const N: usize = 14;
const K: usize = 5;
const F: usize = 2;
const SEED: u64 = 7031;

/// Wave one: five broadcasts from sources 0..5, injected while the flap is active.
const WAVE1_SOURCES: [ProcessId; 5] = [0, 1, 2, 3, 4];
/// Wave two: five broadcasts from sources 5..10, injected after the restart settled.
const WAVE2_SOURCES: [ProcessId; 5] = [5, 6, 7, 8, 9];
/// The process the schedule crash-recovers between the waves.
const RESTARTED: ProcessId = 13;

/// The shared schedule, in virtual microseconds. The live pacer replays the same
/// numbers in wall-clock time (scale 1.0), so the gap placements below are also the
/// wall-clock budget the live waves get: wave one has two full seconds to finish
/// before the partition hits, which loopback runs at `n = 14` clear by an order of
/// magnitude.
const FLAP_START_US: u64 = 5_000;
const FLAP_DOWN_US: u64 = 445_000;
const PARTITION_AT_US: u64 = 2_000_000;
const HEAL_AT_US: u64 = 2_200_000;
const RESTART_AT_US: u64 = 2_600_000;
const WAVE2_AT_US: u64 = 3_400_000;

fn payload_of(wave: usize, slot: usize) -> Payload {
    Payload::filled((0x10 * wave as u8) | slot as u8, 96)
}

/// The one spec every backend replays. `flaky` is the single edge the flap toggles.
fn churn_spec(flaky: (ProcessId, ProcessId)) -> ChurnSpec {
    ChurnSpec::new()
        .flap(flaky.0, flaky.1, FLAP_START_US, FLAP_DOWN_US, 50_000, 1)
        .at(
            PARTITION_AT_US,
            ChurnAction::Partition {
                side: vec![0, 1, 2],
            },
        )
        .at(HEAL_AT_US, ChurnAction::Heal)
        .at(
            RESTART_AT_US,
            ChurnAction::NodeRestart { process: RESTARTED },
        )
}

/// Normalizes a delivery log into the set the backends must agree on.
fn delivery_set(log: &[Delivery]) -> BTreeSet<(BroadcastId, Payload)> {
    log.iter().map(|d| (d.id, d.payload.clone())).collect()
}

#[test]
fn seeded_churn_schedule_agrees_across_all_three_backends() {
    let graph = experiment_graph(N, K, SEED);
    let config = Config::bdopt_mbd1(N, F);
    let flaky = graph.edges()[0];
    let spec = churn_spec(flaky);
    let everyone: Vec<ProcessId> = (0..N).collect();

    // Every source broadcasts exactly once, so each id is (source, seq 0).
    let broadcasts: Vec<BroadcastRecord> = WAVE1_SOURCES
        .iter()
        .enumerate()
        .map(|(slot, &source)| (1, slot, source))
        .chain(
            WAVE2_SOURCES
                .iter()
                .enumerate()
                .map(|(slot, &source)| (2, slot, source)),
        )
        .map(|(wave, slot, source)| {
            BroadcastRecord::new(source, BroadcastId::new(source, 0), payload_of(wave, slot))
        })
        .collect();

    // 1. Discrete-event simulator: churn events interleave with the injection and
    //    message heaps in virtual time, and the restart swaps in a factory-built
    //    fresh engine.
    let processes: Vec<DynStack> = (0..N)
        .map(|i| StackSpec::Bd.build_protocol(&config, &graph, i))
        .collect();
    let mut sim = Simulation::new(processes, DelayModel::synchronous(), 1);
    sim.set_churn(spec.compile(SEED), graph.edges());
    let (config_for_restart, graph_for_restart) = (config, graph.clone());
    sim.set_restart_builder(move |process| {
        StackSpec::Bd.build_protocol(&config_for_restart, &graph_for_restart, process)
    });
    for (slot, &source) in WAVE1_SOURCES.iter().enumerate() {
        sim.schedule_broadcast(
            SimTime::from_micros(slot as u64 * 10_000),
            source,
            payload_of(1, slot),
        );
    }
    for (slot, &source) in WAVE2_SOURCES.iter().enumerate() {
        sim.schedule_broadcast(
            SimTime::from_micros(WAVE2_AT_US + slot as u64 * 10_000),
            source,
            payload_of(2, slot),
        );
    }
    sim.run_to_quiescence();
    // The restart demonstrably happened: the volatile engine only saw wave two, the
    // durable log carries wave one across the crash.
    assert_eq!(
        sim.processes()[RESTARTED].deliveries().len(),
        WAVE2_SOURCES.len(),
        "the restarted engine's volatile log must only hold post-restart deliveries"
    );
    let sim_logs: Vec<Vec<Delivery>> = (0..N).map(|p| sim.full_deliveries(p)).collect();

    // 2. Channel runtime: the pacer thread replays the same compiled schedule against
    //    the shared link state, and routes the restart command to the node driver.
    let options =
        DriverOptions::default().with_churn(ChurnHandle::new(&spec, SEED, 1.0, &graph.edges()));
    let deployment = Deployment::start(&graph, config, StackSpec::Bd, options, &[]);
    run_live_waves(
        "runtime",
        |source, payload| deployment.broadcast(source, payload),
        |expected, timeout| deployment.await_deliveries(expected, timeout),
    );
    let threaded = deployment.shutdown();

    // 3. TCP sockets over loopback, same pacer, fresh handle (each deployment's churn
    //    clock starts at its own start time).
    let options =
        DriverOptions::default().with_churn(ChurnHandle::new(&spec, SEED, 1.0, &graph.edges()));
    let deployment =
        TcpDeployment::start(&graph, config, StackSpec::Bd, options, &[]).expect("TCP starts");
    run_live_waves(
        "tcp",
        |source, payload| deployment.broadcast(source, payload),
        |expected, timeout| deployment.await_deliveries(expected, timeout),
    );
    let tcp = deployment.shutdown();

    // The restart really ran on both live backends, exactly once, and only there.
    for (backend, report) in [("runtime", &threaded), ("tcp", &tcp)] {
        assert_eq!(
            report.nodes[RESTARTED].restarts, 1,
            "{backend}: process {RESTARTED} must restart exactly once"
        );
        for p in (0..N).filter(|&p| p != RESTARTED) {
            assert_eq!(report.nodes[p].restarts, 0, "{backend}: process {p}");
        }
    }

    // Identical, complete per-process delivery sets on every backend.
    for (p, sim_log) in sim_logs.iter().enumerate() {
        let sim_set = delivery_set(sim_log);
        assert_eq!(
            sim_set.len(),
            broadcasts.len(),
            "process {p} must deliver all {} broadcasts in the simulator",
            broadcasts.len()
        );
        assert_eq!(
            sim_set,
            delivery_set(&threaded.nodes[p].deliveries),
            "sim and channel runtime disagree at process {p}"
        );
        assert_eq!(
            sim_set,
            delivery_set(&tcp.nodes[p].deliveries),
            "sim and TCP disagree at process {p}"
        );
    }

    // All four BRB properties hold per broadcast on every backend's logs — including
    // No duplication at the restarted process, the property a resurrected instance
    // would break.
    for (backend, logs) in [
        ("sim", sim_logs.clone()),
        (
            "runtime",
            threaded
                .nodes
                .iter()
                .map(|node| node.deliveries.clone())
                .collect(),
        ),
        (
            "tcp",
            tcp.nodes
                .iter()
                .map(|node| node.deliveries.clone())
                .collect(),
        ),
    ] {
        let slices: Vec<&[Delivery]> = logs.iter().map(|l| l.as_slice()).collect();
        check_brb(&slices, &everyone, &broadcasts)
            .unwrap_or_else(|v| panic!("churn schedule on {backend}: {v}"));
    }
}

/// Drives the two-wave broadcast schedule against a live deployment (the channel
/// runtime and the TCP deployment expose the same broadcast/await surface, threaded in
/// here as closures). Wall-clock placement mirrors the virtual-time schedule: wave one
/// immediately, wave two after the pacer has replayed the partition, heal and restart.
fn run_live_waves(
    backend: &str,
    broadcast: impl Fn(ProcessId, Payload),
    await_deliveries: impl Fn(usize, Duration) -> usize,
) {
    let start = Instant::now();
    // Wave one, racing the flap: completeness is topology-guaranteed (see module docs).
    for (slot, &source) in WAVE1_SOURCES.iter().enumerate() {
        broadcast(source, payload_of(1, slot));
    }
    let expected = N * WAVE1_SOURCES.len();
    let got = await_deliveries(expected, Duration::from_secs(60));
    assert_eq!(
        got, expected,
        "{backend}: wave one must complete everywhere"
    );
    assert!(
        start.elapsed() < Duration::from_micros(PARTITION_AT_US),
        "{backend}: wave one must finish inside the pre-partition window \
         (took {:?}; raise the schedule gaps if this machine is that slow)",
        start.elapsed()
    );

    // Sleep through the partition, heal and restart; wave two starts strictly after
    // the pacer delivered the restart command.
    let wave2_at = Duration::from_micros(WAVE2_AT_US);
    std::thread::sleep(wave2_at.saturating_sub(start.elapsed()));
    for (slot, &source) in WAVE2_SOURCES.iter().enumerate() {
        broadcast(source, payload_of(2, slot));
    }
    let got = await_deliveries(expected, Duration::from_secs(60));
    assert_eq!(
        got, expected,
        "{backend}: wave two must complete everywhere"
    );
}

#[test]
fn per_link_delay_override_is_asymmetric_on_a_live_deployment() {
    // The live twin of the simulator's asymmetric-override regression: a
    // `SetLinkDelay` on 0 -> 1 only must slow that direction's one-way latency without
    // touching 1 -> 0. Two processes, Dolev with f = 0, so each broadcast is one frame
    // across the single link and the await time *is* the link latency (plus loopback
    // noise, which is orders of magnitude under the 400 ms override).
    let graph = generate::complete(2);
    let config = Config::plain(2, 0);
    let extra = Duration::from_millis(400);
    let spec = ChurnSpec::new().at(
        0,
        ChurnAction::SetLinkDelay {
            from: 0,
            to: 1,
            extra_micros: extra.as_micros() as u64,
        },
    );
    let options =
        DriverOptions::default().with_churn(ChurnHandle::new(&spec, SEED, 1.0, &graph.edges()));
    let deployment = Deployment::start(&graph, config, StackSpec::Dolev, options, &[]);
    // Let the pacer apply the t = 0 override before the first frame is sent.
    std::thread::sleep(Duration::from_millis(50));

    // Slow direction: node 1 only delivers after the overridden 0 -> 1 link fires.
    let start = Instant::now();
    deployment.broadcast(0, Payload::filled(0xA0, 32));
    assert_eq!(deployment.await_deliveries(2, Duration::from_secs(30)), 2);
    let slow = start.elapsed();

    // Fast direction: 1 -> 0 carries no override and completes in loopback time.
    let start = Instant::now();
    deployment.broadcast(1, Payload::filled(0xB0, 32));
    assert_eq!(deployment.await_deliveries(2, Duration::from_secs(30)), 2);
    let fast = start.elapsed();
    let report = deployment.shutdown();

    assert!(
        slow >= extra - Duration::from_millis(20),
        "0 -> 1 must ride the 400 ms override (one-way latency {slow:?})"
    );
    assert!(
        fast < extra / 2,
        "1 -> 0 must stay unaffected by the opposite direction's override \
         (one-way latency {fast:?})"
    );
    assert!(fast < slow, "the override must be direction-specific");
    for node in &report.nodes {
        assert_eq!(
            node.deliveries.len(),
            2,
            "both broadcasts deliver everywhere"
        );
    }
}
