//! A miniature cluster over real TCP sockets.
//!
//! The paper benchmarks its C++ implementation with one node per Docker container and TCP
//! connections as authenticated channels. This example reproduces that deployment shape at
//! laptop scale: 13 protocol nodes in one OS process, one loopback TCP connection per edge
//! of a 4-regular communication graph, one crashed node, and one broadcast of a 1 KiB
//! payload with the paper's bandwidth-oriented configuration.
//!
//! Run with: `cargo run --release --example tcp_cluster`

use std::time::{Duration, Instant};

use brb_core::config::Config;
use brb_core::stack::StackSpec;
use brb_core::types::Payload;
use brb_graph::{connectivity, generate};
use brb_net::{run_tcp_broadcast, DriverOptions, TcpDeployment};

fn main() -> std::io::Result<()> {
    let (n, f) = (13, 1);
    let graph = generate::circulant(n, 2); // 4-regular, 4-connected
    println!(
        "Topology: circulant C_{n}(1,2), vertex connectivity {} (need {} for f = {f})",
        connectivity::vertex_connectivity(&graph),
        2 * f + 1
    );

    // One-shot convenience API.
    let crashed = [7usize];
    println!("\n[1] One broadcast with a crashed node (process 7), immediate links:");
    let start = Instant::now();
    let report = run_tcp_broadcast(
        &graph,
        Config::bandwidth_preset(n, f),
        StackSpec::Bd,
        Payload::filled(0xAB, 1024),
        0,
        &crashed,
        Duration::from_secs(30),
    )?;
    let elapsed = start.elapsed();
    let delivered = report
        .nodes
        .iter()
        .filter(|node| !node.deliveries.is_empty())
        .count();
    println!(
        "    delivered at {delivered}/{} correct nodes in {:.0} ms wall-clock",
        n - crashed.len(),
        elapsed.as_secs_f64() * 1000.0
    );
    println!(
        "    network consumption: {:.1} kB over {} messages",
        report.total_bytes() as f64 / 1000.0,
        report.total_messages()
    );

    // Long-lived deployment: several broadcasts from different sources over the same
    // sockets, with an artificial 5 ms per-message delay to make the wall-clock latency
    // visible (the paper uses 50 ms; scaled down to keep the example fast).
    println!("\n[2] Long-lived deployment, three broadcasts, 5 ms per-message delay:");
    let options = DriverOptions {
        delay: Some((Duration::from_millis(5), Duration::from_millis(2))),
        ..DriverOptions::default()
    };
    let deployment = TcpDeployment::start(
        &graph,
        Config::latency_preset(n, f),
        StackSpec::Bd,
        options,
        &[],
    )?;
    for source in [0usize, 4, 9] {
        let start = Instant::now();
        deployment.broadcast(source, Payload::filled(source as u8, 256));
        let seen = deployment.await_deliveries(n, Duration::from_secs(30));
        println!(
            "    broadcast from {source}: {seen}/{n} deliveries observed in {:.0} ms",
            start.elapsed().as_secs_f64() * 1000.0
        );
    }
    let report = deployment.shutdown();
    println!(
        "    totals: {:.1} kB, {} messages",
        report.total_bytes() as f64 / 1000.0,
        report.total_messages()
    );
    println!(
        "\nSame engine, same wire format, real sockets: the simulator's predictions carry over."
    );
    Ok(())
}
