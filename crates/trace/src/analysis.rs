//! Order-normalized causal sequences and per-broadcast latency breakdowns.

use std::collections::BTreeMap;

use crate::event::{NodeId, TraceEvent, TraceEventKind};

/// The order-normalized causal sequence of a trace: every causal event (see
/// [`TraceEventKind::is_causal`]) reduced to `(source, seq, kind, node)` and
/// sorted, discarding timestamps and arrival order. Two backends running the
/// same seeded scenario must produce identical sequences.
pub fn causal_sequence(events: &[TraceEvent]) -> Vec<(NodeId, u32, &'static str, NodeId)> {
    let mut seq: Vec<_> = events
        .iter()
        .filter(|e| e.kind.is_causal())
        .map(|e| (e.source, e.seq, e.kind.name(), e.node))
        .collect();
    seq.sort_unstable();
    seq.dedup();
    seq
}

/// Renders a causal sequence one entry per line: `source seq kind node`.
pub fn render_causal_sequence(seq: &[(NodeId, u32, &'static str, NodeId)]) -> String {
    let mut out = String::new();
    for (source, sq, kind, node) in seq {
        out.push_str(&format!("({source}, {sq}) {kind} @ node {node}\n"));
    }
    out
}

/// Causal latency decomposition of one broadcast instance:
/// `injection → first hop → threshold → delivery`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Source process of the instance.
    pub source: NodeId,
    /// Sequence number of the instance.
    pub seq: u32,
    /// When the source injected the broadcast.
    pub injection_us: u64,
    /// First protocol event at any node other than the source (first hop).
    pub first_hop_us: Option<u64>,
    /// First threshold crossing anywhere (Dolev disjoint set, Bracha ready,
    /// CPA acceptance).
    pub threshold_us: Option<u64>,
    /// Last delivery across all nodes (completion of the broadcast).
    pub delivery_us: Option<u64>,
    /// Number of nodes that delivered.
    pub deliveries: usize,
}

/// Computes the per-instance breakdown from a raw trace. Instances without an
/// `Injected` mark (e.g. trace fragments) are skipped. Sorted by `(source, seq)`.
pub fn latency_breakdown(events: &[TraceEvent]) -> Vec<LatencyBreakdown> {
    struct Acc {
        injection: Option<u64>,
        first_hop: Option<u64>,
        threshold: Option<u64>,
        delivery: Option<u64>,
        deliveries: usize,
    }
    let mut by_id: BTreeMap<(NodeId, u32), Acc> = BTreeMap::new();
    for event in events {
        if matches!(
            event.kind,
            TraceEventKind::FrameSent { .. }
                | TraceEventKind::FrameDropped { .. }
                | TraceEventKind::QueueDepth { .. }
                | TraceEventKind::Restarted
        ) {
            continue;
        }
        let acc = by_id.entry((event.source, event.seq)).or_insert(Acc {
            injection: None,
            first_hop: None,
            threshold: None,
            delivery: None,
            deliveries: 0,
        });
        let min_in = |slot: &mut Option<u64>, t: u64| {
            *slot = Some(slot.map_or(t, |v| v.min(t)));
        };
        match event.kind {
            TraceEventKind::Injected => min_in(&mut acc.injection, event.time_us),
            TraceEventKind::Delivered => {
                acc.deliveries += 1;
                acc.delivery = Some(acc.delivery.map_or(event.time_us, |v| v.max(event.time_us)));
            }
            TraceEventKind::DisjointReached { .. }
            | TraceEventKind::ReadySent
            | TraceEventKind::CpaAccepted { .. } => min_in(&mut acc.threshold, event.time_us),
            _ => {}
        }
        if event.node != event.source {
            min_in(&mut acc.first_hop, event.time_us);
        }
    }
    let mut rows: Vec<LatencyBreakdown> = by_id
        .into_iter()
        .filter_map(|((source, seq), acc)| {
            let injection_us = acc.injection?;
            Some(LatencyBreakdown {
                source,
                seq,
                injection_us,
                first_hop_us: acc.first_hop,
                threshold_us: acc.threshold,
                delivery_us: acc.delivery,
                deliveries: acc.deliveries,
            })
        })
        .collect();
    rows.sort_unstable_by_key(|r| (r.source, r.seq));
    rows
}
