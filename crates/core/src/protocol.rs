//! The [`Protocol`] trait: the event-driven interface every broadcast protocol in this
//! crate exposes, and that both the discrete-event simulator (`brb-sim`) and the threaded
//! runtime (`brb-runtime`) drive.
//!
//! Two event APIs coexist on the trait:
//!
//! * the original `Vec`-returning methods ([`Protocol::broadcast`],
//!   [`Protocol::handle_message`]), convenient for tests and one-off drivers;
//! * the sink-based methods ([`Protocol::broadcast_into`],
//!   [`Protocol::handle_message_into`]), which write into a caller-owned, reusable
//!   [`ActionBuf`] so that hot loops (the simulator's dispatch path, the deployments'
//!   node loops) process millions of events without one `Vec` allocation per event.
//!
//! The sink methods default to shims over the `Vec` methods, so existing protocols work
//! unchanged; the protocols on the experiment hot paths ([`crate::bd::BdProcess`],
//! [`crate::dolev::DolevProcess`], [`crate::bracha::BrachaProcess`], …) override them
//! natively and implement the `Vec` methods as thin wrappers instead.

use crate::types::{Action, Delivery, Payload, ProcessId};

/// A reusable sink for the [`Action`]s produced by one protocol event.
///
/// Drivers keep one `ActionBuf` alive across events: the protocol pushes the actions of
/// the current event into it, the driver drains them, and the allocation is recycled for
/// the next event. This removes the per-event `Vec` allocation of the original
/// [`Protocol::handle_message`] API from the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionBuf<M> {
    actions: Vec<Action<M>>,
}

impl<M> ActionBuf<M> {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self {
            actions: Vec::new(),
        }
    }

    /// Creates an empty buffer with room for `capacity` actions.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            actions: Vec::with_capacity(capacity),
        }
    }

    /// Appends one action.
    pub fn push(&mut self, action: Action<M>) {
        self.actions.push(action);
    }

    /// Appends a send action.
    pub fn send(&mut self, to: ProcessId, message: M) {
        self.actions.push(Action::send(to, message));
    }

    /// Appends a delivery action.
    pub fn deliver(&mut self, delivery: Delivery) {
        self.actions.push(Action::Deliver(delivery));
    }

    /// Appends every action of `iter`.
    pub fn extend(&mut self, iter: impl IntoIterator<Item = Action<M>>) {
        self.actions.extend(iter);
    }

    /// Number of buffered actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Removes every buffered action, keeping the allocation.
    pub fn clear(&mut self) {
        self.actions.clear();
    }

    /// Drains the buffered actions in push order, keeping the allocation.
    pub fn drain(&mut self) -> std::vec::Drain<'_, Action<M>> {
        self.actions.drain(..)
    }

    /// The buffered actions, in push order.
    pub fn as_slice(&self) -> &[Action<M>] {
        &self.actions
    }

    /// Mutable access to the underlying vector, for protocol internals that already
    /// thread a `&mut Vec<Action<M>>` through their layers.
    pub fn as_mut_vec(&mut self) -> &mut Vec<Action<M>> {
        &mut self.actions
    }

    /// Consumes the buffer and returns the actions.
    pub fn into_vec(self) -> Vec<Action<M>> {
        self.actions
    }
}

impl<M> Default for ActionBuf<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> IntoIterator for ActionBuf<M> {
    type Item = Action<M>;
    type IntoIter = std::vec::IntoIter<Action<M>>;

    fn into_iter(self) -> Self::IntoIter {
        self.actions.into_iter()
    }
}

/// An event-driven broadcast protocol instance running at one process.
///
/// A protocol instance is a deterministic state machine: it reacts to exactly two kinds of
/// events — the local application broadcasting a payload, and the arrival of a message on
/// an authenticated link — and produces a list of [`Action`]s (messages to send to direct
/// neighbors, payloads to deliver to the application).
///
/// Determinism is what makes the discrete-event simulation reproducible and the property
/// tests meaningful: for a fixed sequence of events, a protocol instance always produces
/// the same actions.
pub trait Protocol {
    /// Message type exchanged on the links.
    type Message: Clone + std::fmt::Debug;

    /// Identifier of the process running this instance.
    fn process_id(&self) -> ProcessId;

    /// Initiates the broadcast of `payload` and returns the resulting actions.
    fn broadcast(&mut self, payload: Payload) -> Vec<Action<Self::Message>>;

    /// Handles a message received from direct neighbor `from` over the authenticated link
    /// and returns the resulting actions.
    fn handle_message(
        &mut self,
        from: ProcessId,
        message: Self::Message,
    ) -> Vec<Action<Self::Message>>;

    /// Sink-based variant of [`Protocol::broadcast`]: pushes the resulting actions into
    /// `out` instead of allocating a fresh `Vec`.
    ///
    /// The default implementation shims over [`Protocol::broadcast`]; protocols on hot
    /// paths override it natively.
    fn broadcast_into(&mut self, payload: Payload, out: &mut ActionBuf<Self::Message>) {
        out.extend(self.broadcast(payload));
    }

    /// Sink-based variant of [`Protocol::handle_message`]: pushes the resulting actions
    /// into `out` instead of allocating a fresh `Vec`.
    ///
    /// The default implementation shims over [`Protocol::handle_message`]; protocols on
    /// hot paths override it natively.
    fn handle_message_into(
        &mut self,
        from: ProcessId,
        message: Self::Message,
        out: &mut ActionBuf<Self::Message>,
    ) {
        out.extend(self.handle_message(from, message));
    }

    /// The sequence number the next plain [`Protocol::broadcast`] will mint.
    ///
    /// Repeatable-broadcast engines own a per-process counter; protocols without one
    /// report 0.
    fn next_seq(&self) -> crate::types::BroadcastSeq {
        0
    }

    /// Overrides the sequence number the next plain [`Protocol::broadcast`] will mint.
    ///
    /// The default implementation ignores it (single-shot protocols have no counter).
    fn set_next_seq(&mut self, _seq: crate::types::BroadcastSeq) {}

    /// Broadcasts `payload` under an explicitly chosen sequence number instead of the
    /// engine's own counter, leaving the counter unchanged.
    ///
    /// This is the hook layered clients use to mint ids in their own client-instance
    /// namespace (see [`crate::types::namespaced_seq`]): a consensus layer broadcasting
    /// round-messages picks `seq = namespaced_seq(NAMESPACE_CONSENSUS, local)` so its
    /// instances can never collide with the engine-counter ids
    /// ([`crate::types::NAMESPACE_CLIENT`]) a workload generator predicts.
    fn broadcast_with_seq_into(
        &mut self,
        seq: crate::types::BroadcastSeq,
        payload: Payload,
        out: &mut ActionBuf<Self::Message>,
    ) {
        let saved = self.next_seq();
        self.set_next_seq(seq);
        self.broadcast_into(payload, out);
        self.set_next_seq(saved);
    }

    /// All payloads delivered so far, in delivery order.
    fn deliveries(&self) -> &[Delivery];

    /// Size of a message on the wire, in bytes, following the paper's Table 3 accounting.
    fn message_size(message: &Self::Message) -> usize;

    /// Approximate number of bytes of protocol state currently held (stored paths,
    /// memoized path combinations, buffered payloads). Used as the memory-consumption
    /// proxy of Sec. 7.3.
    fn state_bytes(&self) -> usize {
        0
    }

    /// Number of transmission paths currently stored for disjoint-path verification.
    ///
    /// The paper attributes the memory growth of the protocol to this quantity
    /// (Sec. 7.3); the simulator tracks its peak over a run.
    fn stored_paths(&self) -> usize {
        0
    }

    /// Installs an instance-GC retention policy (see [`crate::gc::GcPolicy`]).
    ///
    /// The default implementation ignores it: protocols without per-broadcast state (or
    /// without GC support) simply keep their historical behavior.
    fn set_gc_policy(&mut self, _policy: crate::gc::GcPolicy) {}

    /// Feeds the host's clock to the engine for time-based retention windows: virtual
    /// milliseconds in the simulator, wall-clock milliseconds in the live deployments.
    /// The default implementation ignores it.
    fn note_time(&mut self, _now_ms: u64) {}

    /// Number of broadcast instances this engine has retired through GC so far.
    fn gc_retired(&self) -> u64 {
        0
    }

    /// Installs a structured-trace handle (see [`brb_trace::Tracer`]) through which
    /// the engine reports protocol phase transitions — Dolev path accumulation,
    /// Bracha echo/ready thresholds, CPA acceptance, GC retirement.
    ///
    /// The default implementation ignores it, so third-party protocols (and engines
    /// without interesting phases) stay source-compatible; a disabled tracer costs a
    /// single branch per would-be event.
    fn set_tracer(&mut self, _tracer: brb_trace::Tracer) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::BroadcastId;

    /// A trivial protocol used to check that the trait is object-safe enough for tests and
    /// that default methods behave.
    struct Loopback {
        id: ProcessId,
        deliveries: Vec<Delivery>,
    }

    impl Protocol for Loopback {
        type Message = Payload;

        fn process_id(&self) -> ProcessId {
            self.id
        }

        fn broadcast(&mut self, payload: Payload) -> Vec<Action<Payload>> {
            let d = Delivery {
                id: BroadcastId::new(self.id, 0),
                payload,
            };
            self.deliveries.push(d.clone());
            vec![Action::Deliver(d)]
        }

        fn handle_message(&mut self, _from: ProcessId, _m: Payload) -> Vec<Action<Payload>> {
            Vec::new()
        }

        fn deliveries(&self) -> &[Delivery] {
            &self.deliveries
        }

        fn message_size(message: &Payload) -> usize {
            message.len()
        }
    }

    #[test]
    fn default_state_bytes_is_zero() {
        let mut p = Loopback {
            id: 0,
            deliveries: vec![],
        };
        assert_eq!(p.state_bytes(), 0);
        let actions = p.broadcast(Payload::from("x"));
        assert_eq!(actions.len(), 1);
        assert_eq!(p.deliveries().len(), 1);
        assert_eq!(Loopback::message_size(&Payload::from("abc")), 3);
    }

    #[test]
    fn default_sink_methods_shim_over_the_vec_methods() {
        let mut p = Loopback {
            id: 3,
            deliveries: vec![],
        };
        let mut buf: ActionBuf<Payload> = ActionBuf::with_capacity(4);
        p.broadcast_into(Payload::from("a"), &mut buf);
        assert_eq!(buf.len(), 1);
        assert!(buf.as_slice()[0].as_delivery().is_some());
        p.handle_message_into(0, Payload::from("b"), &mut buf);
        assert_eq!(buf.len(), 1, "loopback ignores incoming messages");
        let drained: Vec<_> = buf.drain().collect();
        assert_eq!(drained.len(), 1);
        assert!(buf.is_empty());
        // The allocation survives draining; pushing again reuses it.
        buf.send(1, Payload::from("m"));
        buf.deliver(Delivery {
            id: BroadcastId::new(3, 0),
            payload: Payload::from("x"),
        });
        assert_eq!(buf.len(), 2);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn action_buf_conversions() {
        let mut buf: ActionBuf<u8> = ActionBuf::default();
        buf.extend([Action::send(1, 9), Action::send(2, 7)]);
        assert_eq!(buf.as_mut_vec().len(), 2);
        let collected: Vec<_> = buf.clone().into_iter().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(buf.into_vec().len(), 2);
    }
}
