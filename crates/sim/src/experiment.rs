//! High-level experiment runner used by the benchmark harnesses.
//!
//! One *experiment* reproduces one data point of the paper's evaluation: a protocol
//! stack ([`StackSpec`]), a `(N, k, f)` random regular topology, a protocol
//! configuration (a set of MD/MBD modifications), a payload size, a delay model and a
//! number of Byzantine (crashed) processes. The runner generates the topology, builds
//! one protocol instance per node, lets one source broadcast once, runs the
//! discrete-event simulation to quiescence and reports the metrics the paper plots:
//! latency, network consumption, message count and memory proxies.
//!
//! The default stack is the paper's Bracha–Dolev combination ([`BdProcess`]), which runs
//! on the typed fast path; every other [`StackSpec`] runs through the
//! [`brb_core::stack::DynStack`] adapter, which moves encoded wire frames through the
//! simulator — the exact bytes the socket deployments put on their links.

use brb_core::bd::BdProcess;
use brb_core::config::Config;
use brb_core::protocol::Protocol;
use brb_core::stack::StackSpec;
use brb_core::types::{BroadcastId, Payload, ProcessId};
use brb_graph::{generate, Graph, NeighborIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::behavior::Behavior;
use crate::delay::DelayModel;
use crate::metrics::RunMetrics;
use crate::sim::Simulation;

/// Parameters of one experiment (one data point of a figure or table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentParams {
    /// Number of processes `N`.
    pub n: usize,
    /// Target vertex connectivity `k` of the random regular topology (also its degree).
    pub connectivity: usize,
    /// Fault threshold `f` the protocol is configured for.
    pub f: usize,
    /// Number of processes that actually crash during the run (at most `f`).
    pub crashed: usize,
    /// Payload size in bytes (the paper uses 16 B and 1024 B).
    pub payload_size: usize,
    /// Protocol configuration (which MD/MBD modifications are enabled).
    pub config: Config,
    /// Protocol stack the experiment runs ([`StackSpec::Bd`] reproduces the paper).
    pub stack: StackSpec,
    /// Link delay model.
    pub delay: DelayModel,
    /// Random seed (topology generation, delays and behaviours).
    pub seed: u64,
}

impl ExperimentParams {
    /// A convenient starting point matching the paper's default synchronous setting
    /// (Bracha–Dolev stack, 1024 B payload, 50 ms constant delays, no crash, seed 1).
    pub fn new(n: usize, connectivity: usize, f: usize, config: Config) -> Self {
        Self {
            n,
            connectivity,
            f,
            crashed: 0,
            payload_size: 1024,
            config,
            stack: StackSpec::Bd,
            delay: DelayModel::synchronous(),
            seed: 1,
        }
    }

    /// Returns a copy of the parameters with the protocol stack replaced.
    pub fn with_stack(mut self, stack: StackSpec) -> Self {
        self.stack = stack;
        self
    }
}

/// Result of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Broadcast latency in milliseconds (time until all correct processes delivered), or
    /// `None` if some correct process never delivered.
    pub latency_ms: Option<f64>,
    /// Total network consumption in bytes.
    pub bytes: usize,
    /// Total number of messages transmitted.
    pub messages: usize,
    /// Number of correct processes that delivered.
    pub delivered: usize,
    /// Number of correct processes.
    pub correct: usize,
    /// Peak protocol-state size (bytes) over all processes (Sec. 7.3 memory proxy).
    pub peak_state_bytes: usize,
    /// Peak number of stored transmission paths over all processes.
    pub peak_stored_paths: usize,
}

impl ExperimentResult {
    /// Network consumption in kilobytes, the unit used by Figs. 4b/5b.
    pub fn kilobytes(&self) -> f64 {
        self.bytes as f64 / 1_000.0
    }

    /// Whether every correct process delivered the broadcast.
    pub fn complete(&self) -> bool {
        self.delivered == self.correct
    }
}

/// Generates the topology for an experiment: a random `k`-regular graph over `n` nodes.
///
/// Connectivity is not re-verified for every seed (random regular graphs are almost
/// surely `k`-connected); harnesses that need a certificate use
/// [`brb_graph::generate::random_regular_connected`] directly.
pub fn experiment_graph(n: usize, connectivity: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    generate::random_regular_graph(n, connectivity, &mut rng)
        .expect("the (n, k) combinations used in experiments admit regular graphs")
}

/// An [`ExperimentResult`] together with the full [`RunMetrics`] of the underlying
/// simulation run, as returned by [`run_experiment_recorded`].
///
/// The determinism harness compares the canonical rendering of `metrics` against golden
/// snapshots, which would be impossible from the aggregated [`ExperimentResult`] alone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// The aggregated per-run result (what the figures and tables consume).
    pub result: ExperimentResult,
    /// The raw simulator metrics of the run.
    pub metrics: RunMetrics,
}

/// Runs one experiment and returns its metrics.
///
/// The source is process 0; the `crashed` Byzantine processes are chosen among the highest
/// identifiers so that the source itself stays correct.
pub fn run_experiment(params: &ExperimentParams) -> ExperimentResult {
    let graph = experiment_graph(params.n, params.connectivity, params.seed);
    run_experiment_on_graph(params, &graph)
}

/// Runs one experiment on a caller-provided topology (used when several configurations
/// must be compared on the *same* graph, as in Table 1 and Figs. 4–10).
pub fn run_experiment_on_graph(params: &ExperimentParams, graph: &Graph) -> ExperimentResult {
    run_experiment_recorded(params, graph).result
}

/// Runs one experiment on a caller-provided topology and returns both the aggregated
/// result and the full run metrics.
pub fn run_experiment_recorded(params: &ExperimentParams, graph: &Graph) -> ExperimentRecord {
    assert_eq!(graph.node_count(), params.n, "graph size must match N");
    assert!(
        params.crashed <= params.f,
        "cannot crash more than f processes"
    );
    match params.stack {
        // The paper's stack keeps its typed fast path: no frame encoding, no boxing.
        StackSpec::Bd => {
            // Flatten the adjacency once per run; every process then copies its own
            // (sorted) neighbor slice instead of walking the graph's per-node tree sets.
            let index = NeighborIndex::new(graph);
            let processes: Vec<BdProcess> = (0..params.n)
                .map(|i| BdProcess::new(i, params.config, index.neighbors(i).to_vec()))
                .collect();
            record_run(params, processes)
        }
        // Every other stack goes through the boxed engine + wire codec, the same code
        // path the socket deployments drive. Topology-aware stacks share one graph copy.
        stack => {
            let shared = std::sync::Arc::new(graph.clone());
            let processes: Vec<_> = (0..params.n)
                .map(|i| stack.build_protocol_shared(&params.config, &shared, i))
                .collect();
            record_run(params, processes)
        }
    }
}

/// Simulates one broadcast over prebuilt protocol instances and collects the metrics.
fn record_run<P: Protocol>(params: &ExperimentParams, processes: Vec<P>) -> ExperimentRecord
where
    P::Message: Eq,
{
    let mut sim = Simulation::new(processes, params.delay, params.seed);
    // Crash the `crashed` highest-numbered processes (never the source, process 0).
    for offset in 0..params.crashed {
        let victim = params.n - 1 - offset;
        sim.set_behavior(victim, Behavior::Crash);
    }
    let source: ProcessId = 0;
    sim.broadcast(source, Payload::filled(0xAB, params.payload_size));
    sim.run_to_quiescence();

    let correct = sim.correct_processes();
    let id = BroadcastId::new(source, 0);
    let latency_ms = sim
        .metrics()
        .latency(id, &correct)
        .map(|t| t.as_millis_f64());
    let delivered = sim.metrics().delivered_count(id, &correct);
    let peak_stored_paths = sim
        .processes()
        .iter()
        .map(|p| Protocol::stored_paths(p))
        .max()
        .unwrap_or(0)
        .max(sim.metrics().peak_stored_paths);
    let peak_state_bytes = sim
        .processes()
        .iter()
        .map(|p| p.state_bytes())
        .max()
        .unwrap_or(0)
        .max(sim.metrics().peak_state_bytes);
    let result = ExperimentResult {
        latency_ms,
        bytes: sim.metrics().bytes_sent,
        messages: sim.metrics().messages_sent,
        delivered,
        correct: correct.len(),
        peak_state_bytes,
        peak_stored_paths,
    };
    ExperimentRecord {
        result,
        metrics: sim.into_metrics(),
    }
}

/// Runs the same experiment over several seeds and returns every result (the paper reports
/// averages of at least 5 runs per point).
pub fn run_experiment_repeated(params: &ExperimentParams, runs: usize) -> Vec<ExperimentResult> {
    (0..runs)
        .map(|i| {
            let mut p = params.clone();
            p.seed = params.seed.wrapping_add(i as u64);
            run_experiment(&p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(config: Config) -> ExperimentParams {
        ExperimentParams {
            n: 16,
            connectivity: 5,
            f: 2,
            crashed: 0,
            payload_size: 64,
            config,
            stack: StackSpec::Bd,
            delay: DelayModel::synchronous(),
            seed: 11,
        }
    }

    #[test]
    fn experiment_delivers_everywhere() {
        let r = run_experiment(&params(Config::bdopt_mbd1(16, 2)));
        assert!(r.complete());
        assert_eq!(r.correct, 16);
        assert!(r.latency_ms.unwrap() >= 100.0);
        assert!(r.bytes > 0);
        assert!(r.kilobytes() > 0.0);
        assert!(r.peak_state_bytes > 0);
    }

    #[test]
    fn experiment_with_crashes_still_delivers_to_correct_processes() {
        let mut p = params(Config::bdopt_mbd1(16, 2));
        p.crashed = 2;
        let r = run_experiment(&p);
        assert_eq!(r.correct, 14);
        assert!(
            r.complete(),
            "correct processes must deliver despite crashes"
        );
    }

    #[test]
    fn bandwidth_preset_reduces_bytes_on_same_graph() {
        let p_base = params(Config::bdopt_mbd1(16, 2));
        let graph = experiment_graph(16, 5, 3);
        let base = run_experiment_on_graph(&p_base, &graph);
        let p_bdw = params(Config::bandwidth_preset(16, 2));
        let bdw = run_experiment_on_graph(&p_bdw, &graph);
        assert!(base.complete() && bdw.complete());
        assert!(
            bdw.bytes <= base.bytes,
            "bdw. preset should not increase bytes: {} vs {}",
            bdw.bytes,
            base.bytes
        );
    }

    #[test]
    fn mbd1_reduces_bytes_vs_bdopt_on_same_graph() {
        let graph = experiment_graph(16, 5, 5);
        let mut p0 = params(Config::bdopt(16, 2));
        p0.payload_size = 1024;
        let mut p1 = params(Config::bdopt_mbd1(16, 2));
        p1.payload_size = 1024;
        let base = run_experiment_on_graph(&p0, &graph);
        let opt = run_experiment_on_graph(&p1, &graph);
        assert!(base.complete() && opt.complete());
        assert!(
            (opt.bytes as f64) < 0.5 * base.bytes as f64,
            "MBD.1 should at least halve the bytes with 1 KiB payloads: {} vs {}",
            opt.bytes,
            base.bytes
        );
    }

    #[test]
    fn repeated_runs_use_distinct_seeds() {
        let results = run_experiment_repeated(&params(Config::bdopt_mbd1(16, 2)), 3);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(ExperimentResult::complete));
    }

    #[test]
    #[should_panic(expected = "cannot crash")]
    fn too_many_crashes_are_rejected() {
        let mut p = params(Config::bdopt_mbd1(16, 2));
        p.crashed = 3;
        run_experiment(&p);
    }

    #[test]
    fn asynchronous_experiment_completes() {
        let mut p = params(Config::latency_preset(16, 2));
        p.delay = DelayModel::asynchronous();
        let r = run_experiment(&p);
        assert!(r.complete());
    }

    #[test]
    fn alternative_stacks_run_through_the_experiment_runner() {
        // Every non-default stack goes through the DynStack (encoded frames) path; the
        // ones whose assumptions hold on a 5-regular random graph with f = 2 must still
        // deliver everywhere. (Bracha sees the simulator as a complete network — the
        // simulator imposes no topology — which matches its system model.)
        for stack in [
            StackSpec::BrachaRoutedDolev,
            StackSpec::Dolev,
            StackSpec::RoutedDolev,
            StackSpec::Bracha,
        ] {
            let p = params(Config::bdopt_mbd1(16, 2)).with_stack(stack);
            let r = run_experiment(&p);
            assert!(r.complete(), "{stack} must deliver everywhere");
            assert!(r.bytes > 0, "{stack} reports Table 3 bytes");
            assert!(r.latency_ms.unwrap() > 0.0, "{stack} reports latency");
        }
    }

    #[test]
    fn stack_choice_changes_the_traffic_profile() {
        let graph = experiment_graph(16, 5, 3);
        let bd = run_experiment_on_graph(&params(Config::bdopt_mbd1(16, 2)), &graph);
        let routed = run_experiment_on_graph(
            &params(Config::bdopt_mbd1(16, 2)).with_stack(StackSpec::BrachaRoutedDolev),
            &graph,
        );
        assert!(bd.complete() && routed.complete());
        assert_ne!(
            bd.messages, routed.messages,
            "different stacks produce different message counts"
        );
    }

    #[test]
    fn rc_only_stacks_report_their_memory_proxies() {
        let p = params(Config::bdopt(16, 2)).with_stack(StackSpec::Dolev);
        let r = run_experiment(&p);
        assert!(r.complete());
        assert!(r.peak_state_bytes > 0, "Dolev tracks per-content state");
    }
}
