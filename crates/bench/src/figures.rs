//! Figures 4–10 and the Sec. 7.3 memory experiment.
//!
//! Every harness builds the full list of sweep points up front and runs it through the
//! parallel sweep engine (`brb_sim::sweep`); outcomes come back in spec order, so the
//! printed series are bit-identical for every worker count.

use brb_core::config::Config;
use brb_core::stack::StackSpec;
use brb_graph::connectivity::is_k_connected;
use brb_graph::{families, Graph};
use brb_sim::{run_sweep, DelayModel, ExperimentSpec, SweepOutcome};
use brb_stats::FiveNumber;

use crate::{
    averaged_of_outcomes, averaged_on_graphs, experiment, point_specs, variation_pct,
    AveragedResult, Scale,
};

/// One point of a connectivity-sweep series: the configuration label, the connectivity and
/// the averaged metrics.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Configuration label (e.g. `"BDopt + MBD.1/7"`).
    pub label: String,
    /// Network connectivity `k`.
    pub k: usize,
    /// Averaged metrics at this point.
    pub result: AveragedResult,
}

fn delay(asynchronous: bool) -> DelayModel {
    if asynchronous {
        DelayModel::asynchronous()
    } else {
        DelayModel::synchronous()
    }
}

/// Topology seed base shared by every configuration compared at one `(n, k)` point (the
/// paper reuses one generated graph per tuple; run `i` uses `graph_seed_base(n, k) + i`).
fn graph_seed_base(n: usize, k: usize) -> u64 {
    7_000 + (n * k) as u64
}

fn sweep_connectivities(scale: Scale, n: usize, f: usize) -> Vec<usize> {
    let min_k = 2 * f + 1;
    let candidates: Vec<usize> = match scale {
        Scale::Quick => vec![min_k, (min_k + n - 1) / 2],
        Scale::Paper => (0..6).map(|i| min_k + i * (n - 1 - min_k) / 5).collect(),
    };
    let mut ks: Vec<usize> = candidates
        .into_iter()
        .map(|k| if (n * k) % 2 == 1 { k + 1 } else { k })
        .map(|k| k.min(n - 1))
        .map(|k| if (n * k) % 2 == 1 { k - 1 } else { k })
        .collect();
    ks.dedup();
    ks
}

/// Fig. 4a/4b: latency and bandwidth versus connectivity for BDopt + MBD.1 and
/// BDopt + MBD.1/{7, 8, 9, 11}, with `N = 50`, `f = 9`, 1024 B payloads.
pub fn run_fig4(
    scale: Scale,
    asynchronous: bool,
    workers: usize,
    stack: StackSpec,
) -> Vec<SeriesPoint> {
    let (n, f, payload) = match scale {
        Scale::Quick => (20, 3, 1024),
        Scale::Paper => (50, 9, 1024),
    };
    let configs: Vec<(String, Config)> = [
        (1u8, None),
        (1, Some(7)),
        (1, Some(8)),
        (1, Some(9)),
        (1, Some(11)),
    ]
    .iter()
    .map(|&(_, extra)| match extra {
        None => ("BDopt + MBD.1".to_string(), Config::bdopt_mbd1(n, f)),
        Some(i) => (
            format!("BDopt + MBD.1/{i}"),
            Config::bdopt_mbd1(n, f).with_mbd(&[i]),
        ),
    })
    .collect();
    let points = sweep(scale, asynchronous, n, f, payload, &configs, workers, stack);
    print_series(
        &format!("Fig. 4a/4b — stack={stack}, N={n}, f={f}, {payload} B payload"),
        &points,
    );
    points
}

/// Fig. 5a/5b: latency and bandwidth versus connectivity for the lat. / bdw. / lat.&bdw.
/// combined configurations, with `(N, f) = (50, 10)` and 1024 B payloads.
pub fn run_fig5(
    scale: Scale,
    asynchronous: bool,
    workers: usize,
    stack: StackSpec,
) -> Vec<SeriesPoint> {
    let (n, f, payload) = match scale {
        Scale::Quick => (20, 3, 1024),
        Scale::Paper => (50, 10, 1024),
    };
    let configs = vec![
        ("BDopt + MBD.1".to_string(), Config::bdopt_mbd1(n, f)),
        ("lat.".to_string(), Config::latency_preset(n, f)),
        ("bdw.".to_string(), Config::bandwidth_preset(n, f)),
        (
            "lat. & bdw.".to_string(),
            Config::latency_bandwidth_preset(n, f),
        ),
    ];
    let points = sweep(scale, asynchronous, n, f, payload, &configs, workers, stack);
    print_series(
        &format!("Fig. 5a/5b — stack={stack}, (N, f)=({n}, {f}), {payload} B payload"),
        &points,
    );
    points
}

/// Fig. 6a/6b: relative bandwidth and latency variation (in %) of the lat. and bdw.
/// configurations over BDopt + MBD.1, for `N = 30` and `N = 50`.
pub fn run_fig6(
    scale: Scale,
    asynchronous: bool,
    workers: usize,
    stack: StackSpec,
) -> Vec<(String, usize, f64, f64)> {
    let systems: Vec<(usize, usize)> = match scale {
        Scale::Quick => vec![(20, 3)],
        Scale::Paper => vec![(30, 7), (50, 12)],
    };
    let payload = 1024;
    let runs = scale.runs();
    let dl = delay(asynchronous);

    // One flat spec list over every (system, k, configuration, run) tuple; the sweep
    // engine shards it, and chunks of `runs` outcomes are averaged back below.
    let mut specs: Vec<ExperimentSpec> = Vec::new();
    let mut groups: Vec<(String, usize)> = Vec::new();
    for &(n, f) in &systems {
        for k in sweep_connectivities(scale, n, f) {
            for (label, config) in [
                ("base".to_string(), Config::bdopt_mbd1(n, f)),
                (format!("lat., N={n}"), Config::latency_preset(n, f)),
                (format!("bdw., N={n}"), Config::bandwidth_preset(n, f)),
            ] {
                let params = experiment(n, k, f, payload, config, dl, 1).with_stack(stack);
                specs.extend(point_specs(&label, &params, graph_seed_base(n, k), runs));
                groups.push((label, k));
            }
        }
    }
    let outcomes = run_sweep(&specs, workers);

    let mut rows = Vec::new();
    println!("# Fig. 6a/6b — stack={stack}, variation (%) over BDopt+MBD.1, {payload} B payload");
    println!(
        "{:<14} {:>4} {:>4} {:>18} {:>18}",
        "configuration", "N", "k", "bandwidth var. %", "latency var. %"
    );
    let mut base = averaged_of_outcomes(&[]);
    for (chunk, (label, k)) in outcomes.chunks(runs).zip(groups) {
        let r = averaged_of_outcomes(chunk);
        if label == "base" {
            base = r;
            continue;
        }
        // No process crashes in this figure, so `correct` is exactly N.
        let n: usize = chunk[0].record.result.correct;
        let bytes_var = variation_pct(base.bytes, r.bytes);
        let latency_var = variation_pct(base.latency_ms, r.latency_ms);
        println!(
            "{:<14} {:>4} {:>4} {:>18.1} {:>18.1}",
            label, n, k, bytes_var, latency_var
        );
        rows.push((label, k, bytes_var, latency_var));
    }
    rows
}

/// Figs. 7–10: distribution (five-number summary) of the impact of each modification on
/// network consumption and latency over the whole sweep, with synchronous
/// (Figs. 7/9) or asynchronous (Figs. 8/10) communications and 1 KiB payloads.
pub fn run_fig7_to_10(
    scale: Scale,
    asynchronous: bool,
    workers: usize,
    stack: StackSpec,
) -> Vec<(u8, FiveNumber, FiveNumber)> {
    let rows = crate::table1::compute_table1(scale, asynchronous, &[1024], workers, stack);
    let mode = if asynchronous {
        "asynchronous (Figs. 8 and 10)"
    } else {
        "synchronous (Figs. 7 and 9)"
    };
    println!("# Figs. 7-10 — impact distribution per modification, 1 KiB payload, {mode}");
    println!(
        "{:<8} {:>44} {:>44}",
        "MBD", "network consumption impact % (5-number)", "latency impact % (5-number)"
    );
    let mut out = Vec::new();
    for row in rows.iter().filter(|r| r.payload == 1024) {
        let bytes = FiveNumber::of(&row.bytes_var).expect("non-empty sweep");
        let latency = FiveNumber::of(&row.latency_var).expect("non-empty sweep");
        println!(
            "MBD.{:<4} {:>44} {:>44}",
            row.mbd,
            bytes.to_bracket_string(),
            latency.to_bracket_string()
        );
        out.push((row.mbd, bytes, latency));
    }
    out
}

/// Sec. 7.3: memory-consumption proxy (peak stored paths / protocol state) for
/// `N ∈ {10, 30, 50}` with 16 B payloads.
pub fn run_memory(scale: Scale, workers: usize, stack: StackSpec) -> Vec<(usize, f64, f64)> {
    let systems: Vec<(usize, usize, usize)> = match scale {
        Scale::Quick => vec![(10, 3, 1), (20, 7, 3)],
        Scale::Paper => vec![(10, 3, 1), (30, 9, 4), (50, 21, 9)],
    };
    let runs = scale.runs();
    let mut specs: Vec<ExperimentSpec> = Vec::new();
    for &(n, k, f) in &systems {
        let params = experiment(
            n,
            k,
            f,
            16,
            Config::bdopt(n, f),
            DelayModel::synchronous(),
            1,
        )
        .with_stack(stack);
        specs.extend(point_specs(
            &format!("memory/N={n}"),
            &params,
            graph_seed_base(n, k),
            runs,
        ));
    }
    let outcomes = run_sweep(&specs, workers);

    println!("# Sec. 7.3 — stack={stack}, memory consumption proxy (16 B payload, synchronous)");
    println!(
        "{:<4} {:>6} {:>4} {:>22} {:>22}",
        "N", "k", "f", "peak stored paths", "peak state bytes"
    );
    let mut rows = Vec::new();
    for (chunk, &(n, k, f)) in outcomes.chunks(runs).zip(&systems) {
        let r = averaged_of_outcomes(chunk);
        println!(
            "{:<4} {:>6} {:>4} {:>22.0} {:>22.0}",
            n, k, f, r.peak_stored_paths, r.peak_state_bytes
        );
        rows.push((n, r.peak_stored_paths, r.peak_state_bytes));
    }
    rows
}

/// One row of the topology-family connectivity sweep.
#[derive(Debug, Clone)]
pub struct FamilyPoint {
    /// Family name (`"planar-grid"`, `"geometric"`, `"expander"`).
    pub family: String,
    /// Number of processes.
    pub n: usize,
    /// Verified vertex connectivity floor of the generated instance.
    pub k: usize,
    /// Fault budget at the paper's threshold, `f = (k - 1) / 2`.
    pub f: usize,
    /// Averaged metrics at this point.
    pub result: AveragedResult,
}

/// The non-regular topology families at a target connectivity threshold `k`, generated
/// as pure functions of the seed: the planar grid exists only at its fixed `k = 3`,
/// the geometric graph densifies its radius with `k`, the expander stacks `d/2`
/// Hamiltonian cycles with `d` the smallest even degree above `k`. The random families
/// are re-seeded deterministically until they verify `k`-connectivity, so every row
/// actually sits at the paper's `k >= 2f + 1` threshold it claims.
fn family_graphs_at(k: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    let n = 20;
    let mut out: Vec<(&'static str, Graph)> = Vec::new();
    if k == 3 {
        out.push(("planar-grid", families::planar_grid(4, 5)));
    }
    let radius = 0.25 + 0.08 * k as f64;
    let geometric = (0..)
        .map(|i| families::geometric_random_graph(n, radius, seed + i))
        .find(|g| is_k_connected(g, k))
        .expect("some seed yields a k-connected geometric graph");
    out.push(("geometric", geometric));
    let d = if k.is_multiple_of(2) { k } else { k + 1 };
    let expander = (0..)
        .map(|i| {
            families::bounded_degree_expander(n, d, seed + i)
                .expect("n = 20 with even d is a feasible expander")
        })
        .find(|g| is_k_connected(g, k))
        .expect("some seed yields a k-connected expander");
    out.push(("expander", expander));
    out
}

/// The topology-family sweep: the single-broadcast experiment on the planar-grid /
/// geometric / expander families across the paper's `k`-connectivity thresholds
/// (`k = 2f + 1` for `f = 1, 2, 3`), reporting the same latency / bandwidth / message
/// columns as the figure harnesses. Deterministic for a fixed scale and stack — the
/// rows are generated and run outside the sweep engine but are pure functions of their
/// seeds, so the CI byte-diff covers them too.
pub fn run_topology_families(
    scale: Scale,
    asynchronous: bool,
    stack: StackSpec,
) -> Vec<FamilyPoint> {
    let thresholds: &[usize] = match scale {
        Scale::Quick => &[3, 5],
        Scale::Paper => &[3, 5, 7],
    };
    let runs = scale.runs();
    let dl = delay(asynchronous);
    let payload = 256;
    let seed_base = 31_000;
    let mut rows = Vec::new();
    for &k in thresholds {
        let f = (k - 1) / 2;
        for (family, graph) in family_graphs_at(k, seed_base + k as u64) {
            let n = graph.node_count();
            let params =
                experiment(n, k, f, payload, Config::bdopt_mbd1(n, f), dl, 1).with_stack(stack);
            let graphs = vec![graph; runs];
            let result = averaged_on_graphs(&params, &graphs);
            rows.push(FamilyPoint {
                family: family.to_string(),
                n,
                k,
                f,
                result,
            });
        }
    }
    println!(
        "# Topology families — stack={stack}, k thresholds {thresholds:?}, {payload} B payload"
    );
    println!(
        "{:<12} {:>4} {:>4} {:>4} {:>14} {:>20} {:>10}",
        "family", "n", "k", "f", "latency (ms)", "bandwidth (kB)", "messages"
    );
    for p in &rows {
        println!(
            "{:<12} {:>4} {:>4} {:>4} {:>14.1} {:>20.1} {:>10.0}",
            p.family,
            p.n,
            p.k,
            p.f,
            p.result.latency_ms,
            p.result.bytes / 1_000.0,
            p.result.messages
        );
    }
    rows
}

#[allow(clippy::too_many_arguments)]
fn sweep(
    scale: Scale,
    asynchronous: bool,
    n: usize,
    f: usize,
    payload: usize,
    configs: &[(String, Config)],
    workers: usize,
    stack: StackSpec,
) -> Vec<SeriesPoint> {
    let runs = scale.runs();
    let mut specs: Vec<ExperimentSpec> = Vec::new();
    let mut groups: Vec<(String, usize)> = Vec::new();
    for k in sweep_connectivities(scale, n, f) {
        for (label, config) in configs {
            let params =
                experiment(n, k, f, payload, *config, delay(asynchronous), 1).with_stack(stack);
            specs.extend(point_specs(label, &params, graph_seed_base(n, k), runs));
            groups.push((label.clone(), k));
        }
    }
    let outcomes: Vec<SweepOutcome> = run_sweep(&specs, workers);
    outcomes
        .chunks(runs)
        .zip(groups)
        .map(|(chunk, (label, k))| SeriesPoint {
            label,
            k,
            result: averaged_of_outcomes(chunk),
        })
        .collect()
}

fn print_series(title: &str, points: &[SeriesPoint]) {
    println!("# {title}");
    println!(
        "{:<22} {:>4} {:>14} {:>20} {:>10}",
        "configuration", "k", "latency (ms)", "bandwidth (kB)", "messages"
    );
    for p in points {
        println!(
            "{:<22} {:>4} {:>14.1} {:>20.1} {:>10.0}",
            p.label,
            p.k,
            p.result.latency_ms,
            p.result.bytes / 1_000.0,
            p.result.messages
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connectivity_sweep_respects_constraints() {
        for &(n, f) in &[(20usize, 3usize), (30, 7), (50, 9)] {
            for k in sweep_connectivities(Scale::Paper, n, f) {
                assert!(k > 2 * f);
                assert!(k < n);
                assert_eq!((n * k) % 2, 0, "n*k must be even for a regular graph");
            }
        }
    }

    #[test]
    fn quick_fig5_bdw_reduces_bandwidth() {
        let points = run_fig5(Scale::Quick, false, 2, StackSpec::Bd);
        assert!(!points.is_empty());
        for k in points
            .iter()
            .map(|p| p.k)
            .collect::<std::collections::BTreeSet<_>>()
        {
            let base = points
                .iter()
                .find(|p| p.k == k && p.label == "BDopt + MBD.1")
                .unwrap();
            let bdw = points
                .iter()
                .find(|p| p.k == k && p.label == "bdw.")
                .unwrap();
            assert!(
                bdw.result.bytes <= base.result.bytes,
                "bdw. preset should not increase bandwidth at k = {k}"
            );
        }
    }

    #[test]
    fn quick_fig5_is_worker_count_invariant() {
        let one = run_fig5(Scale::Quick, false, 1, StackSpec::Bd);
        let four = run_fig5(Scale::Quick, false, 4, StackSpec::Bd);
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.k, b.k);
            assert_eq!(a.result.latency_ms.to_bits(), b.result.latency_ms.to_bits());
            assert_eq!(a.result.bytes.to_bits(), b.result.bytes.to_bits());
            assert_eq!(a.result.messages.to_bits(), b.result.messages.to_bits());
        }
    }

    #[test]
    fn quick_topology_families_sit_at_their_thresholds() {
        let rows = run_topology_families(Scale::Quick, false, StackSpec::Bd);
        assert_eq!(
            rows.len(),
            3 + 2,
            "three families at k=3, geometric+expander at k=5"
        );
        for p in &rows {
            assert!(
                p.result.latency_ms.is_finite(),
                "{} at k={} must complete",
                p.family,
                p.k
            );
            assert!(p.result.bytes > 0.0);
            assert_eq!(p.f, (p.k - 1) / 2, "paper threshold k >= 2f + 1");
        }
    }

    #[test]
    fn quick_memory_grows_with_system_size() {
        let rows = run_memory(Scale::Quick, 2, StackSpec::Bd);
        assert!(rows.len() >= 2);
        assert!(rows[0].2 <= rows[1].2, "state bytes grow with N");
    }
}
