//! The saturation-throughput axis: an open-loop arrival-rate ramp with knee detection.
//!
//! The batching/sharding/buffer-pool work on the live transports is motivated by one
//! question: *at what offered load does the system stop keeping up?* This module holds
//! the two halves of the answer:
//!
//! * [`run_saturation_sweep`] — the **deterministic** half: the same ramp replayed on
//!   the discrete-event simulator through the parallel sweep engine. Virtual time has
//!   no scheduling jitter and unbounded queues, so the simulator never collapses — the
//!   section exists to pin the *shape* of the ramp (throughput tracks the offered rate,
//!   latency stays flat) as a byte-identical CSV section that participates in the
//!   1-vs-4-worker diff of the CI smoke job.
//! * [`knee_index`] — the knee rule shared with the live `bench_saturation` binary,
//!   where wall-clock scheduling makes the ramp actually bend: the knee is the highest
//!   offered rate that still completes every broadcast with a bounded p99.

use brb_core::stack::StackSpec;
use brb_sim::{run_sweep, DelayModel, ExperimentSpec};
use brb_workload::{SourceSelection, WorkloadSpec, WorkloadStats};

use crate::{experiment, Scale};

/// One point of the saturation ramp: an offered arrival rate with its merged stats.
#[derive(Debug, Clone)]
pub struct SaturationPoint {
    /// Human-readable point label (the arrival/source shape of the ramp).
    pub label: String,
    /// Mean inter-arrival gap of the point, in microseconds (the ramp's x-axis,
    /// descending = load ascending).
    pub interval_micros: u64,
    /// The offered arrival rate, in broadcasts per second (`1e6 / interval`).
    pub offered_per_sec: f64,
    /// Stats merged over the point's seeds.
    pub stats: WorkloadStats,
    /// Whether this point is the detected knee of the ramp (see [`knee_index`]).
    pub knee: bool,
}

/// Topology seed base of the saturation ramp (disjoint from the other harnesses).
fn graph_seed_base(n: usize, k: usize) -> u64 {
    23_000 + (n * k) as u64
}

/// A saturation observation as the knee rule consumes it: did the point complete every
/// broadcast, and what p99 did it show.
#[derive(Debug, Clone, Copy)]
pub struct KneeObservation {
    /// Whether every effective broadcast of the point completed.
    pub all_completed: bool,
    /// The point's p99 completion latency in milliseconds.
    pub p99_ms: f64,
}

/// The knee of a ramp of observations ordered by ascending offered rate: the index of
/// the highest-rate point, *before the first collapsed point*, that still completed
/// every broadcast with `p99 <= p99_cap_ms`. Returns `None` when even the lowest rate
/// collapses.
///
/// Scanning stops at the first failure so a spuriously healthy point beyond the
/// collapse (timeout truncation can make a overloaded run look "complete") can never
/// be reported as the knee.
pub fn knee_index(points: &[KneeObservation], p99_cap_ms: f64) -> Option<usize> {
    let mut knee = None;
    for (i, p) in points.iter().enumerate() {
        if p.all_completed && p.p99_ms <= p99_cap_ms {
            knee = Some(i);
        } else {
            break;
        }
    }
    knee
}

/// The deterministic saturation ramp: a fixed descending-interval (ascending-rate)
/// open-loop constant-rate workload with Zipf sources, each point run through the
/// parallel sweep engine and merged across seeds. The CSV rows are a pure function of
/// the virtual clock, so they are byte-identical for every `--workers` value.
pub fn run_saturation_sweep(
    scale: Scale,
    asynchronous: bool,
    workers: usize,
    stack: StackSpec,
) -> Vec<SaturationPoint> {
    let (n, k, f, broadcasts, intervals): (usize, usize, usize, u32, &[u64]) = match scale {
        Scale::Quick => (16, 5, 2, 24, &[20_000, 10_000, 5_000, 2_500, 1_250]),
        Scale::Paper => (
            30,
            7,
            3,
            96,
            &[20_000, 10_000, 5_000, 2_500, 1_250, 625, 312],
        ),
    };
    let runs = scale.runs();
    let delay = if asynchronous {
        DelayModel::asynchronous()
    } else {
        DelayModel::synchronous()
    };

    let mut specs: Vec<ExperimentSpec> = Vec::new();
    for &interval in intervals {
        let workload = WorkloadSpec::constant_rate(interval, broadcasts)
            .with_sources(SourceSelection::Zipf { exponent: 1.1 });
        let config = brb_core::config::Config::bdopt_mbd1(n, f);
        let params = experiment(n, k, f, 64, config, delay, 1)
            .with_stack(stack)
            .with_workload(workload);
        for run in 0..runs {
            let mut p = params.clone();
            p.seed = 1 + run as u64;
            specs.push(ExperimentSpec::new(
                format!("open-loop/{interval}us"),
                graph_seed_base(n, k) + run as u64,
                p,
            ));
        }
    }

    let outcomes = run_sweep(&specs, workers);
    let mut points: Vec<SaturationPoint> = outcomes
        .chunks(runs)
        .zip(intervals)
        .map(|(chunk, &interval_micros)| {
            let mut stats = WorkloadStats::default();
            for outcome in chunk {
                let per_run = outcome
                    .record
                    .result
                    .workload
                    .as_ref()
                    .expect("saturation sweeps always fill workload stats");
                stats.merge(per_run);
            }
            SaturationPoint {
                label: "open-loop/zipf".to_string(),
                interval_micros,
                offered_per_sec: 1e6 / interval_micros as f64,
                stats,
                knee: false,
            }
        })
        .collect();

    // The knee rule, applied with the shared cap: 8x the lowest-rate point's p99. On
    // the simulator the ramp never bends, so this marks the last point — the live
    // binary is where the flag moves left.
    let cap = 8.0 * points.first().map_or(f64::INFINITY, |p| p.stats.p99_ms());
    let observations: Vec<KneeObservation> = points
        .iter()
        .map(|p| KneeObservation {
            all_completed: p.stats.all_completed(),
            p99_ms: p.stats.p99_ms(),
        })
        .collect();
    if let Some(i) = knee_index(&observations, cap) {
        points[i].knee = true;
    }

    print_points(
        &format!(
            "Saturation ramp — stack={stack}, N={n}, k={k}, f={f}, {broadcasts} broadcasts/point"
        ),
        &points,
    );
    points
}

fn print_points(title: &str, points: &[SaturationPoint]) {
    println!("# {title}");
    println!(
        "{:<18} {:>14} {:>12} {:>10} {:>10} {:>10} {:>6}",
        "interval (us)", "offered (bc/s)", "thr (bc/s)", "p50 (ms)", "p99 (ms)", "completed", "knee"
    );
    for p in points {
        println!(
            "{:<18} {:>14.1} {:>12.2} {:>10.1} {:>10.1} {:>10} {:>6}",
            p.interval_micros,
            p.offered_per_sec,
            p.stats.throughput_per_sec(),
            p.stats.p50_ms(),
            p.stats.p99_ms(),
            p.stats.completed,
            if p.knee { "*" } else { "" },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(all_completed: bool, p99_ms: f64) -> KneeObservation {
        KneeObservation {
            all_completed,
            p99_ms,
        }
    }

    #[test]
    fn knee_is_the_last_healthy_point_before_the_first_collapse() {
        let ramp = [
            obs(true, 10.0),
            obs(true, 12.0),
            obs(true, 40.0),
            obs(false, 900.0),
            // A timeout-truncated overloaded run can look "complete" again; the scan
            // must never reach it.
            obs(true, 11.0),
        ];
        assert_eq!(knee_index(&ramp, 80.0), Some(2));
        // A tighter p99 cap moves the knee left.
        assert_eq!(knee_index(&ramp, 15.0), Some(1));
        // A collapse at the lowest rate means no knee at all.
        assert_eq!(knee_index(&[obs(false, 5.0)], 80.0), None);
        assert_eq!(knee_index(&[], 80.0), None);
    }

    #[test]
    fn quick_saturation_sweep_is_worker_count_invariant() {
        let a = run_saturation_sweep(Scale::Quick, false, 1, StackSpec::Bd);
        let b = run_saturation_sweep(Scale::Quick, false, 4, StackSpec::Bd);
        assert_eq!(a.len(), 5, "one point per ramp interval");
        assert_eq!(a.len(), b.len());
        let knees = a.iter().filter(|p| p.knee).count();
        assert_eq!(knees, 1, "exactly one knee per ramp");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.interval_micros, y.interval_micros);
            assert_eq!(x.stats, y.stats, "{} differs across worker counts", x.label);
            assert_eq!(x.knee, y.knee);
            assert!(x.stats.all_completed(), "virtual time never collapses");
            assert!(x.offered_per_sec > 0.0);
        }
    }
}
