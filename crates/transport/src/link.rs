//! Authenticated links backed by crossbeam channels.
//!
//! An authenticated link guarantees that the identity of the sender cannot be forged
//! (Sec. 3 of the paper). In the in-process deployments that guarantee is structural:
//! each process holds one dedicated sender handle per outgoing link, and the frame put on
//! the channel is tagged with the sending process identifier by the link itself, not by
//! the (possibly Byzantine) protocol layer.
//!
//! This module used to live in `brb-runtime`; it moved here when the node loops of the
//! channel and TCP deployments were unified into the shared [`crate::NodeDriver`], because
//! the [`Frame`] type is the common inbound currency of every [`crate::Transport`].

use brb_core::types::ProcessId;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

/// A frame travelling on an authenticated link: the authenticated sender identity and the
/// binary-encoded wire message.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Identity of the sending process, set by the link (not forgeable by the sender's
    /// protocol layer).
    pub from: ProcessId,
    /// Encoded wire message of whichever stack the deployment runs (a
    /// [`brb_core::stack::WireCodec`] frame; the link treats it as opaque bytes), or —
    /// when [`Frame::batch`] is set — a coalesced burst of such messages.
    pub bytes: Bytes,
    /// Whether [`Frame::bytes`] is a coalesced batch in the
    /// [`brb_core::wire::encode_batch`] framing (one channel op carrying a whole
    /// same-destination burst) rather than a single encoded message. Receivers split
    /// batches back into messages with [`brb_core::wire::split_batch`].
    pub batch: bool,
}

impl Frame {
    /// A frame carrying one encoded message.
    pub fn single(from: ProcessId, bytes: Bytes) -> Self {
        Self {
            from,
            bytes,
            batch: false,
        }
    }

    /// A frame carrying a coalesced batch buffer produced by
    /// [`brb_core::wire::encode_batch`].
    pub fn batched(from: ProcessId, bytes: Bytes) -> Self {
        Self {
            from,
            bytes,
            batch: true,
        }
    }
}

/// Sending half of an authenticated link from a fixed process to a fixed neighbor.
#[derive(Debug, Clone)]
pub struct AuthenticatedSender {
    from: ProcessId,
    to: ProcessId,
    tx: Sender<Frame>,
}

impl AuthenticatedSender {
    /// The neighbor this link leads to.
    pub fn peer(&self) -> ProcessId {
        self.to
    }

    /// Sends an encoded message. Returns `false` if the peer has shut down.
    pub fn send(&self, bytes: Bytes) -> bool {
        self.tx.send(Frame::single(self.from, bytes)).is_ok()
    }

    /// Sends a coalesced batch buffer ([`brb_core::wire::encode_batch`]) as **one**
    /// channel op; the receiver splits it back into messages. Returns `false` if the
    /// peer has shut down.
    pub fn send_batch(&self, bytes: Bytes) -> bool {
        self.tx.send(Frame::batched(self.from, bytes)).is_ok()
    }
}

/// Receiving half of a process's mailbox: all inbound links are multiplexed into a single
/// channel (the sender identity travels inside each [`Frame`]).
#[derive(Debug)]
pub struct Mailbox {
    rx: Receiver<Frame>,
}

impl Mailbox {
    /// The underlying receiver (for use in `select!` loops).
    pub fn receiver(&self) -> &Receiver<Frame> {
        &self.rx
    }
}

/// Builds the full mesh of authenticated links for a set of processes: one mailbox per
/// process and, for each directed pair `(from, to)` that must be connected, one
/// [`AuthenticatedSender`].
///
/// `edges` lists undirected adjacencies; both directions are created.
pub fn build_links(
    n: usize,
    edges: &[(ProcessId, ProcessId)],
) -> (Vec<Mailbox>, Vec<Vec<AuthenticatedSender>>) {
    let mut txs = Vec::with_capacity(n);
    let mut mailboxes = Vec::with_capacity(n);
    for _ in 0..n {
        let (tx, rx) = unbounded();
        txs.push(tx);
        mailboxes.push(Mailbox { rx });
    }
    let mut senders: Vec<Vec<AuthenticatedSender>> = (0..n).map(|_| Vec::new()).collect();
    for &(u, v) in edges {
        senders[u].push(AuthenticatedSender {
            from: u,
            to: v,
            tx: txs[v].clone(),
        });
        senders[v].push(AuthenticatedSender {
            from: v,
            to: u,
            tx: txs[u].clone(),
        });
    }
    for s in &mut senders {
        s.sort_by_key(|l| l.peer());
    }
    (mailboxes, senders)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_carry_the_link_identity() {
        let (mailboxes, senders) = build_links(3, &[(0, 1), (1, 2)]);
        // Process 0 sends to its only neighbor, process 1.
        assert_eq!(senders[0].len(), 1);
        assert_eq!(senders[0][0].peer(), 1);
        assert!(senders[0][0].send(Bytes::from_static(b"hello")));
        let frame = mailboxes[1].receiver().recv().unwrap();
        assert_eq!(frame.from, 0);
        assert_eq!(&frame.bytes[..], b"hello");
    }

    #[test]
    fn both_directions_exist() {
        let (mailboxes, senders) = build_links(2, &[(0, 1)]);
        assert!(senders[1][0].send(Bytes::from_static(b"x")));
        assert_eq!(mailboxes[0].receiver().recv().unwrap().from, 1);
    }

    #[test]
    fn senders_are_sorted_by_peer() {
        let (_mailboxes, senders) = build_links(4, &[(0, 3), (0, 1), (0, 2)]);
        let peers: Vec<_> = senders[0].iter().map(|s| s.peer()).collect();
        assert_eq!(peers, vec![1, 2, 3]);
    }

    #[test]
    fn send_to_dropped_mailbox_reports_failure() {
        let (mailboxes, senders) = build_links(2, &[(0, 1)]);
        drop(mailboxes);
        assert!(!senders[0][0].send(Bytes::from_static(b"y")));
    }
}
