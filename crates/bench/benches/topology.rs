//! Criterion microbenchmarks of the topology substrate: vertex-connectivity verification
//! (run once per generated experiment graph to certify `k >= 2f+1`), disjoint-route
//! extraction (the planning step of the known-topology Dolev variant), and the additional
//! graph families used by the robustness tests.

use brb_graph::connectivity::vertex_connectivity;
use brb_graph::paths::{k_disjoint_routes, vertex_disjoint_paths};
use brb_graph::{families, generate};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_connectivity_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_connectivity");
    for &(n, d) in &[(20usize, 5usize), (30, 7), (50, 9)] {
        let mut rng = StdRng::seed_from_u64(3);
        let graph = generate::random_regular_connected(n, d, 3, &mut rng).expect("graph exists");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_d{d}")),
            &graph,
            |b, graph| b.iter(|| black_box(vertex_connectivity(graph))),
        );
    }
    group.finish();
}

fn bench_disjoint_route_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("disjoint_route_extraction");
    for &(n, d, f) in &[(20usize, 5usize, 2usize), (50, 9, 4)] {
        let mut rng = StdRng::seed_from_u64(11);
        let graph =
            generate::random_regular_connected(n, d, 2 * f + 1, &mut rng).expect("graph exists");
        group.bench_with_input(
            BenchmarkId::new("all_pairs_from_source", format!("n{n}_d{d}_f{f}")),
            &graph,
            |b, graph| {
                b.iter(|| {
                    // The planning work one origin performs under the routed Dolev variant.
                    let mut total_hops = 0usize;
                    for dest in 1..graph.node_count() {
                        for route in k_disjoint_routes(graph, 0, dest, 2 * f + 1) {
                            total_hops += route.len() - 1;
                        }
                    }
                    black_box(total_hops)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("single_pair_maximum_set", format!("n{n}_d{d}")),
            &graph,
            |b, graph| {
                b.iter(|| black_box(vertex_disjoint_paths(graph, 0, graph.node_count() - 1).len()))
            },
        );
    }
    group.finish();
}

fn bench_graph_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_families");
    group.bench_function("harary_5_50", |b| {
        b.iter(|| black_box(families::harary(5, 50).unwrap().edge_count()))
    });
    group.bench_function("generalized_wheel_3_47", |b| {
        b.iter(|| black_box(families::generalized_wheel(3, 47).edge_count()))
    });
    group.bench_function("watts_strogatz_50_6", |b| {
        b.iter_with_setup(
            || StdRng::seed_from_u64(5),
            |mut rng| {
                black_box(
                    families::watts_strogatz(50, 6, 0.1, &mut rng)
                        .unwrap()
                        .edge_count(),
                )
            },
        )
    });
    group.bench_function("barabasi_albert_50_3", |b| {
        b.iter_with_setup(
            || StdRng::seed_from_u64(5),
            |mut rng| {
                black_box(
                    families::barabasi_albert(50, 3, &mut rng)
                        .unwrap()
                        .edge_count(),
                )
            },
        )
    });
    group.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_connectivity_verification, bench_disjoint_route_extraction, bench_graph_families
}
criterion_main!(benches);
