//! Table 1: impact of each modification on latency and network consumption.
//!
//! The paper reports, for small (16 B) and large (1024 B) payloads, the range of the
//! relative latency and network-consumption variation of each modification MBD.1–12 over
//! random regular graphs with synchronous communications. MBD.1 is compared against BDopt;
//! MBD.2–12 are compared against BDopt + MBD.1 (the paper's reference configuration).
//! Running the harness with `--async` reproduces the asynchronous variant of Sec. 7.6
//! (Tables 8 and 10 of the appendix).
//!
//! The whole table is submitted as one flat spec list to the parallel sweep engine;
//! baseline and modified configurations of one `(N, k, f)` tuple share their topology
//! seeds, so both run on the same generated graphs regardless of which worker picks each
//! point up.

use brb_core::config::Config;
use brb_core::stack::StackSpec;
use brb_sim::{run_sweep, DelayModel, ExperimentSpec};

use crate::{averaged_of_outcomes, experiment, point_specs, variation_pct, Scale};

/// One row of Table 1: the impact of a single modification for one payload size.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Modification index (1–12).
    pub mbd: u8,
    /// Payload size in bytes.
    pub payload: usize,
    /// Observed latency variations (%) across the parameter sweep.
    pub latency_var: Vec<f64>,
    /// Observed network-consumption variations (%) across the parameter sweep.
    pub bytes_var: Vec<f64>,
}

impl Table1Row {
    /// `[min, max]` of the latency variation, as printed in the paper's table.
    pub fn latency_range(&self) -> (f64, f64) {
        range(&self.latency_var)
    }

    /// `[min, max]` of the network-consumption variation.
    pub fn bytes_range(&self) -> (f64, f64) {
        range(&self.bytes_var)
    }
}

fn range(values: &[f64]) -> (f64, f64) {
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (min, max)
}

/// `(N, k, f)` tuples swept by the harness.
fn sweep(scale: Scale) -> Vec<(usize, usize, usize)> {
    match scale {
        Scale::Quick => vec![(20, 7, 3), (20, 11, 3)],
        Scale::Paper => vec![
            (30, 9, 4),
            (30, 15, 4),
            (30, 21, 7),
            (50, 21, 9),
            (50, 25, 9),
            (50, 35, 9),
        ],
    }
}

/// Computes every row of Table 1 for the given payload sizes, sharding the underlying
/// simulations across `workers` threads.
pub fn compute_table1(
    scale: Scale,
    asynchronous: bool,
    payloads: &[usize],
    workers: usize,
    stack: StackSpec,
) -> Vec<Table1Row> {
    let delay = if asynchronous {
        DelayModel::asynchronous()
    } else {
        DelayModel::synchronous()
    };
    let runs = scale.runs();

    // Flatten the whole table into one spec list: for every (payload, mbd, (n, k, f))
    // cell, `runs` baseline points followed by `runs` modified points, both on the same
    // topology seeds (1_000 + k + i, the scheme the serial harness used).
    let mut specs: Vec<ExperimentSpec> = Vec::new();
    for &payload in payloads {
        for mbd in 1..=12u8 {
            for &(n, k, f) in &sweep(scale) {
                let (base_cfg, mod_cfg) = if mbd == 1 {
                    (Config::bdopt(n, f), Config::bdopt_mbd1(n, f))
                } else {
                    (
                        Config::bdopt_mbd1(n, f),
                        Config::bdopt_mbd1(n, f).with_mbd(&[mbd]),
                    )
                };
                let graph_base = 1_000 + k as u64;
                let base = experiment(n, k, f, payload, base_cfg, delay, 1).with_stack(stack);
                let modified = experiment(n, k, f, payload, mod_cfg, delay, 1).with_stack(stack);
                let label = format!("table1/mbd={mbd}/payload={payload}/n={n}/k={k}");
                specs.extend(point_specs(
                    &format!("{label}/base"),
                    &base,
                    graph_base,
                    runs,
                ));
                specs.extend(point_specs(
                    &format!("{label}/mod"),
                    &modified,
                    graph_base,
                    runs,
                ));
            }
        }
    }
    let outcomes = run_sweep(&specs, workers);

    // Walk the outcomes back in the same nesting order, 2 * runs per cell.
    let mut rows = Vec::new();
    let mut cells = outcomes.chunks(2 * runs);
    for &payload in payloads {
        for mbd in 1..=12u8 {
            let mut latency_var = Vec::new();
            let mut bytes_var = Vec::new();
            for _ in &sweep(scale) {
                let cell = cells.next().expect("one cell per (payload, mbd, nkf)");
                let base = averaged_of_outcomes(&cell[..runs]);
                let modified = averaged_of_outcomes(&cell[runs..]);
                latency_var.push(variation_pct(base.latency_ms, modified.latency_ms));
                bytes_var.push(variation_pct(base.bytes, modified.bytes));
            }
            rows.push(Table1Row {
                mbd,
                payload,
                latency_var,
                bytes_var,
            });
        }
    }
    rows
}

/// Runs the Table 1 harness and prints the table to stdout.
pub fn run_table1(
    scale: Scale,
    asynchronous: bool,
    workers: usize,
    stack: StackSpec,
) -> Vec<Table1Row> {
    let payloads = [16usize, 1024];
    let rows = compute_table1(scale, asynchronous, &payloads, workers, stack);
    println!(
        "# Table 1 — stack={stack}, impact of each modification ({} communications, {:?} scale)",
        if asynchronous {
            "asynchronous"
        } else {
            "synchronous"
        },
        scale
    );
    println!("# MBD.1 is relative to BDopt; MBD.2-12 are relative to BDopt+MBD.1.");
    println!(
        "{:<6} {:<9} {:>22} {:>22}",
        "MBD", "payload", "latency var. % [min,max]", "#bits var. % [min,max]"
    );
    for row in &rows {
        let (lmin, lmax) = row.latency_range();
        let (bmin, bmax) = row.bytes_range();
        println!(
            "{:<6} {:<9} [{:>8.1}, {:>8.1}]   [{:>8.1}, {:>8.1}]",
            format!("MBD.{}", row.mbd),
            format!("{} B", row.payload),
            lmin,
            lmax,
            bmin,
            bmax
        );
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_has_expected_shape_and_mbd1_reduces_bytes() {
        let rows = compute_table1(Scale::Quick, false, &[1024], 4, StackSpec::Bd);
        assert_eq!(rows.len(), 12);
        let mbd1 = rows.iter().find(|r| r.mbd == 1).unwrap();
        let (_, bytes_max) = mbd1.bytes_range();
        assert!(
            bytes_max < -80.0,
            "MBD.1 must cut most of the bytes with 1 KiB payloads, got max {bytes_max}"
        );
        let mbd11 = rows.iter().find(|r| r.mbd == 11).unwrap();
        assert!(
            mbd11.bytes_range().0 < 0.0,
            "MBD.11 reduces bytes somewhere in the sweep"
        );
    }

    #[test]
    fn quick_table1_is_worker_count_invariant() {
        let one = compute_table1(Scale::Quick, false, &[16], 1, StackSpec::Bd);
        let four = compute_table1(Scale::Quick, false, &[16], 4, StackSpec::Bd);
        assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            assert_eq!(a.mbd, b.mbd);
            assert_eq!(a.payload, b.payload);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a.latency_var), bits(&b.latency_var));
            assert_eq!(bits(&a.bytes_var), bits(&b.bytes_var));
        }
    }
}
