//! Bracha's authenticated double-echo broadcast (Algorithm 1 of the paper).
//!
//! This is the classic BRB protocol for **asynchronous, fully connected** networks with
//! authenticated, reliable point-to-point links, tolerating `f < N/3` Byzantine processes.
//! It is used in this repository as the upper protocol layer of the Bracha–Dolev
//! combination (see [`crate::bd`]) and as a standalone baseline on complete topologies.
//!
//! The protocol has three phases. The source sends `SEND(m)` to every process. On the
//! first `SEND(m)`, a process sends `ECHO(m)` to every process. On `⌈(N+f+1)/2⌉` ECHOs
//! (or `f+1` READYs), a process sends `READY(m)`. On `2f+1` READYs, it delivers `m`.

use std::collections::{BTreeSet, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::gc::{GcPolicy, GcState};
use crate::protocol::{ActionBuf, Protocol};
use crate::quorum;
use crate::types::{Action, BroadcastId, Content, Delivery, Payload, ProcessId};
use crate::wire::{FIELD_BID, FIELD_MTYPE, FIELD_PAYLOAD_SIZE, FIELD_PROCESS_ID};

/// Phase of a Bracha message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BrachaKind {
    /// Phase 1: the source disseminates the payload.
    Send,
    /// Phase 2: witnesses echo the payload.
    Echo,
    /// Phase 3: processes announce they are ready to deliver.
    Ready,
}

/// A message of Bracha's protocol.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BrachaMessage {
    /// Message phase.
    pub kind: BrachaKind,
    /// Broadcast identifier `(s, bid)`.
    pub id: BroadcastId,
    /// Payload data.
    pub payload: Payload,
}

impl BrachaMessage {
    /// Wire size following Table 3: `mtype + s + bid + payloadSize + payload`.
    pub fn wire_size(&self) -> usize {
        FIELD_MTYPE + FIELD_PROCESS_ID + FIELD_BID + FIELD_PAYLOAD_SIZE + self.payload.len()
    }
}

/// Per-content protocol state (Algorithm 1's `sentEcho`, `sentReady`, `delivered`,
/// `echos`, `readys`).
#[derive(Debug, Default, Clone)]
struct BrachaState {
    sent_echo: bool,
    sent_ready: bool,
    delivered: bool,
    echos: BTreeSet<ProcessId>,
    readys: BTreeSet<ProcessId>,
}

/// One process running Bracha's protocol on a fully connected network.
#[derive(Debug, Clone)]
pub struct BrachaProcess {
    id: ProcessId,
    n: usize,
    f: usize,
    states: HashMap<Content, BrachaState>,
    delivered_ids: HashSet<BroadcastId>,
    deliveries: Vec<Delivery>,
    next_seq: u32,
    gc: GcState,
    tracer: brb_trace::Tracer,
}

impl BrachaProcess {
    /// Creates a Bracha process.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not smaller than `n / 3` or if `id >= n`.
    pub fn new(id: ProcessId, n: usize, f: usize) -> Self {
        assert!(id < n, "process id {id} out of range for n = {n}");
        assert!(
            f <= quorum::max_faults(n),
            "f = {f} violates f < N/3 for N = {n}"
        );
        Self {
            id,
            n,
            f,
            states: HashMap::new(),
            delivered_ids: HashSet::new(),
            deliveries: Vec::new(),
            next_seq: 0,
            gc: GcState::new(GcPolicy::DISABLED),
            tracer: brb_trace::Tracer::disabled(),
        }
    }

    /// Retires every instance whose retention window elapsed: quorum state and the
    /// delivered-id marker are pruned (the GC watermark keeps rejecting the id, which is
    /// what preserves BRB-No duplication after the prune).
    fn run_gc(&mut self) {
        for id in self.gc.due() {
            self.states.retain(|content, _| content.id != id);
            self.delivered_ids.remove(&id);
            self.tracer
                .emit(self.id, id.source, id.seq, brb_trace::TraceEventKind::Retired);
        }
    }

    /// ECHO quorum size.
    pub fn echo_quorum(&self) -> usize {
        quorum::echo_quorum(self.n, self.f)
    }

    /// READY delivery quorum size.
    pub fn ready_quorum(&self) -> usize {
        quorum::ready_quorum(self.f)
    }

    /// Sends `message` to every other process and processes it locally, accumulating the
    /// resulting actions (Bracha's sends are all-to-all, including the sender itself).
    fn send_to_all(&mut self, message: BrachaMessage, actions: &mut Vec<Action<BrachaMessage>>) {
        for q in 0..self.n {
            if q != self.id {
                actions.push(Action::send(q, message.clone()));
            }
        }
        // Local copy: a process also counts its own Echo/Ready and handles its own Send.
        self.handle_internal(self.id, message, actions);
    }

    fn handle_internal(
        &mut self,
        from: ProcessId,
        message: BrachaMessage,
        actions: &mut Vec<Action<BrachaMessage>>,
    ) {
        // Frames for a retired instance are dropped deterministically: recreating the
        // entry below would resurrect pruned state (and could re-deliver).
        if self.gc.is_retired(message.id) {
            self.tracer.emit(
                self.id,
                message.id.source,
                message.id.seq,
                brb_trace::TraceEventKind::FrameDropped {
                    to: self.id,
                    cause: brb_trace::DropCause::GcRetired,
                },
            );
            return;
        }
        let content = Content::new(message.id, message.payload.clone());
        let state = self.states.entry(content.clone()).or_default();
        let mut send_echo = false;
        let mut send_ready = false;
        let mut deliver = false;
        match message.kind {
            BrachaKind::Send => {
                // Only the claimed source may originate a SEND; the authenticated link
                // exposes the actual sender, so a SEND relayed by someone else is ignored.
                if from == message.id.source && !state.sent_echo {
                    state.sent_echo = true;
                    send_echo = true;
                }
            }
            BrachaKind::Echo => {
                state.echos.insert(from);
                if state.echos.len() >= quorum::echo_quorum(self.n, self.f) && !state.sent_ready {
                    state.sent_ready = true;
                    send_ready = true;
                    self.tracer.emit(
                        self.id,
                        message.id.source,
                        message.id.seq,
                        brb_trace::TraceEventKind::EchoThreshold {
                            echoes: state.echos.len(),
                        },
                    );
                }
            }
            BrachaKind::Ready => {
                state.readys.insert(from);
                if state.readys.len() >= quorum::ready_amplification(self.f) && !state.sent_ready {
                    state.sent_ready = true;
                    send_ready = true;
                    self.tracer.emit(
                        self.id,
                        message.id.source,
                        message.id.seq,
                        brb_trace::TraceEventKind::ReadyAmplified,
                    );
                }
                if state.readys.len() >= quorum::ready_quorum(self.f) && !state.delivered {
                    state.delivered = true;
                    deliver = true;
                }
            }
        }
        if send_ready {
            self.tracer.emit(
                self.id,
                message.id.source,
                message.id.seq,
                brb_trace::TraceEventKind::ReadySent,
            );
        }
        if send_echo {
            self.send_to_all(
                BrachaMessage {
                    kind: BrachaKind::Echo,
                    id: message.id,
                    payload: message.payload.clone(),
                },
                actions,
            );
        }
        if send_ready {
            self.send_to_all(
                BrachaMessage {
                    kind: BrachaKind::Ready,
                    id: message.id,
                    payload: message.payload.clone(),
                },
                actions,
            );
        }
        if deliver && self.delivered_ids.insert(content.id) {
            self.gc.on_delivered(content.id);
            let delivery = Delivery {
                id: content.id,
                payload: content.payload,
            };
            self.deliveries.push(delivery.clone());
            actions.push(Action::Deliver(delivery));
        }
    }

    /// Shared body of [`Protocol::broadcast`] / [`Protocol::broadcast_into`].
    fn broadcast_inner(&mut self, payload: Payload, actions: &mut Vec<Action<BrachaMessage>>) {
        let id = BroadcastId::new(self.id, self.next_seq);
        self.next_seq += 1;
        self.tracer
            .emit(self.id, id.source, id.seq, brb_trace::TraceEventKind::Injected);
        self.send_to_all(
            BrachaMessage {
                kind: BrachaKind::Send,
                id,
                payload,
            },
            actions,
        );
    }
}

impl Protocol for BrachaProcess {
    type Message = BrachaMessage;

    fn process_id(&self) -> ProcessId {
        self.id
    }

    fn next_seq(&self) -> u32 {
        self.next_seq
    }

    fn set_next_seq(&mut self, seq: u32) {
        self.next_seq = seq;
    }

    fn broadcast(&mut self, payload: Payload) -> Vec<Action<BrachaMessage>> {
        let mut actions = Vec::new();
        self.gc.on_event();
        self.broadcast_inner(payload, &mut actions);
        self.run_gc();
        actions
    }

    fn handle_message(
        &mut self,
        from: ProcessId,
        message: BrachaMessage,
    ) -> Vec<Action<BrachaMessage>> {
        let mut actions = Vec::new();
        self.gc.on_event();
        self.handle_internal(from, message, &mut actions);
        self.run_gc();
        actions
    }

    fn broadcast_into(&mut self, payload: Payload, out: &mut ActionBuf<BrachaMessage>) {
        self.gc.on_event();
        self.broadcast_inner(payload, out.as_mut_vec());
        self.run_gc();
    }

    fn handle_message_into(
        &mut self,
        from: ProcessId,
        message: BrachaMessage,
        out: &mut ActionBuf<BrachaMessage>,
    ) {
        self.gc.on_event();
        self.handle_internal(from, message, out.as_mut_vec());
        self.run_gc();
    }

    fn deliveries(&self) -> &[Delivery] {
        &self.deliveries
    }

    fn message_size(message: &BrachaMessage) -> usize {
        message.wire_size()
    }

    fn state_bytes(&self) -> usize {
        // Per tracked content: the buffered payload bytes (the [`Content`] key owns a
        // copy until quiescence), the quorum membership sets, and the three booleans
        // (Sec. 7.3 memory-proxy accounting, kept comparable with the other stacks).
        self.states
            .iter()
            .map(|(content, s)| content.payload.len() + 8 * (s.echos.len() + s.readys.len()) + 3)
            .sum()
    }

    fn stored_paths(&self) -> usize {
        // Bracha assumes direct authenticated links and never records transmission
        // paths; reported explicitly (rather than via the trait default) so that the
        // Sec. 7.3 memory tables show a deliberate zero, not a missing metric.
        0
    }

    fn set_gc_policy(&mut self, policy: GcPolicy) {
        self.gc.set_policy(policy);
    }

    fn note_time(&mut self, now_ms: u64) {
        self.gc.note_time(now_ms);
    }

    fn gc_retired(&self) -> u64 {
        self.gc.retired_count()
    }

    fn set_tracer(&mut self, tracer: brb_trace::Tracer) {
        self.tracer = tracer;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives a set of Bracha processes to quiescence by synchronously delivering every
    /// sent message (a minimal in-test network with no Byzantine behaviour).
    fn run_to_quiescence(
        processes: &mut [BrachaProcess],
        initial: Vec<(ProcessId, Action<BrachaMessage>)>,
    ) {
        let mut queue: Vec<(ProcessId, Action<BrachaMessage>)> = initial;
        while let Some((sender, action)) = queue.pop() {
            if let Action::Send { to, message } = action {
                let actions = processes[to].handle_message(sender, message);
                for a in actions {
                    queue.push((to, a));
                }
            }
        }
    }

    fn new_system(n: usize, f: usize) -> Vec<BrachaProcess> {
        (0..n).map(|i| BrachaProcess::new(i, n, f)).collect()
    }

    #[test]
    fn all_correct_processes_deliver_a_correct_broadcast() {
        let n = 7;
        let mut processes = new_system(n, 2);
        let actions = processes[0].broadcast(Payload::from("hello"));
        let initial: Vec<_> = actions.into_iter().map(|a| (0, a)).collect();
        run_to_quiescence(&mut processes, initial);
        for p in &processes {
            assert_eq!(
                p.deliveries().len(),
                1,
                "process {} did not deliver",
                p.process_id()
            );
            assert_eq!(p.deliveries()[0].payload, Payload::from("hello"));
            assert_eq!(p.deliveries()[0].id, BroadcastId::new(0, 0));
        }
    }

    #[test]
    fn no_duplication_across_two_broadcasts() {
        let n = 4;
        let mut processes = new_system(n, 1);
        for round in 0..2 {
            let actions = processes[1].broadcast(Payload::from(format!("m{round}").as_str()));
            let initial: Vec<_> = actions.into_iter().map(|a| (1, a)).collect();
            run_to_quiescence(&mut processes, initial);
        }
        for p in &processes {
            assert_eq!(p.deliveries().len(), 2);
            let ids: Vec<_> = p.deliveries().iter().map(|d| d.id).collect();
            assert_eq!(ids, vec![BroadcastId::new(1, 0), BroadcastId::new(1, 1)]);
        }
    }

    #[test]
    fn send_from_non_source_is_ignored() {
        let mut p = BrachaProcess::new(2, 4, 1);
        let msg = BrachaMessage {
            kind: BrachaKind::Send,
            id: BroadcastId::new(0, 0),
            payload: Payload::from("forged"),
        };
        // Process 3 forwards a SEND claiming to originate at process 0: ignored.
        let actions = p.handle_message(3, msg);
        assert!(actions.is_empty());
    }

    #[test]
    fn ready_amplification_takes_over_without_echo_quorum() {
        // With n = 4, f = 1: ready amplification = 2, delivery = 3.
        let mut p = BrachaProcess::new(0, 4, 1);
        let mk = |kind| BrachaMessage {
            kind,
            id: BroadcastId::new(3, 0),
            payload: Payload::from("m"),
        };
        assert!(p.handle_message(1, mk(BrachaKind::Ready)).is_empty());
        // Second ready triggers the amplification: our own Ready is sent to everyone, and
        // since our own Ready also counts towards the quorum (1 + 2 remote = 3 = 2f+1),
        // the content is delivered at the same event.
        let actions = p.handle_message(2, mk(BrachaKind::Ready));
        let sends: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, message } => Some((*to, message.kind)),
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 3);
        assert!(sends.iter().all(|(_, k)| *k == BrachaKind::Ready));
        assert!(actions.iter().any(|a| a.as_delivery().is_some()));
        // A third ready must not produce a duplicate delivery (BRB-No duplication).
        let actions = p.handle_message(3, mk(BrachaKind::Ready));
        assert!(actions.iter().all(|a| a.as_delivery().is_none()));
        assert_eq!(p.deliveries().len(), 1);
    }

    #[test]
    fn equivocating_source_leads_to_at_most_one_delivery_per_id() {
        // A Byzantine source sends SEND(m1) to half the processes and SEND(m2) to the
        // other half, with the same broadcast id. Echo quorums cannot form for both, so
        // at most one payload is delivered by correct processes; and whichever is
        // delivered is delivered by all (agreement) — here neither reaches a quorum.
        let n = 4;
        let mut processes = new_system(n, 1);
        let id = BroadcastId::new(3, 0);
        let m1 = BrachaMessage {
            kind: BrachaKind::Send,
            id,
            payload: Payload::from("m1"),
        };
        let m2 = BrachaMessage {
            kind: BrachaKind::Send,
            id,
            payload: Payload::from("m2"),
        };
        // Byzantine process 3 equivocates towards 0/1 (m1) and 2 (m2).
        let mut queue: Vec<(ProcessId, Action<BrachaMessage>)> = Vec::new();
        for (target, msg) in [(0usize, m1.clone()), (1, m1), (2, m2)] {
            for a in processes[target].handle_message(3, msg) {
                queue.push((target, a));
            }
        }
        // Drop every message addressed to the Byzantine process 3 and run to quiescence.
        while let Some((sender, action)) = queue.pop() {
            if let Action::Send { to, message } = action {
                if to == 3 {
                    continue;
                }
                for a in processes[to].handle_message(sender, message) {
                    queue.push((to, a));
                }
            }
        }
        let delivered_payloads: Vec<_> = processes[..3]
            .iter()
            .flat_map(|p| p.deliveries().iter().map(|d| d.payload.clone()))
            .collect();
        // Either nobody delivered, or everyone delivered the same payload.
        if !delivered_payloads.is_empty() {
            assert!(delivered_payloads.windows(2).all(|w| w[0] == w[1]));
        }
        for p in &processes[..3] {
            assert!(p.deliveries().len() <= 1);
        }
    }

    #[test]
    fn wire_size_matches_table3() {
        let m = BrachaMessage {
            kind: BrachaKind::Echo,
            id: BroadcastId::new(0, 0),
            payload: Payload::filled(0, 1024),
        };
        assert_eq!(m.wire_size(), 1 + 4 + 4 + 4 + 1024);
    }

    #[test]
    fn state_bytes_grow_with_activity() {
        let mut p = BrachaProcess::new(0, 4, 1);
        let before = p.state_bytes();
        p.handle_message(
            1,
            BrachaMessage {
                kind: BrachaKind::Echo,
                id: BroadcastId::new(2, 0),
                payload: Payload::from("m"),
            },
        );
        assert!(p.state_bytes() > before);
    }

    #[test]
    fn gc_retires_delivered_instances_and_drops_replays() {
        let n = 4;
        let mut processes = new_system(n, 1);
        for p in &mut processes {
            p.set_gc_policy(GcPolicy::after_events(2));
        }
        let actions = processes[0].broadcast(Payload::from("gc"));
        let initial: Vec<_> = actions.into_iter().map(|a| (0, a)).collect();
        run_to_quiescence(&mut processes, initial);
        assert!(processes.iter().all(|p| p.deliveries().len() == 1));
        // Push every process past its retention window with unrelated traffic.
        let unrelated = |seq| BrachaMessage {
            kind: BrachaKind::Echo,
            id: BroadcastId::new(1, seq),
            payload: Payload::from("pad"),
        };
        for p in &mut processes {
            for seq in 10..14 {
                p.handle_message(2, unrelated(seq));
            }
            assert!(p.gc_retired() >= 1, "the delivered instance must retire");
        }
        let p = &mut processes[3];
        let retired_state = p.state_bytes();
        // Replaying the full READY quorum of the retired broadcast must neither
        // re-deliver nor recreate state.
        for from in 0..3 {
            let actions = p.handle_message(
                from,
                BrachaMessage {
                    kind: BrachaKind::Ready,
                    id: BroadcastId::new(0, 0),
                    payload: Payload::from("gc"),
                },
            );
            assert!(actions.is_empty(), "replayed frames are no-ops");
        }
        assert_eq!(p.deliveries().len(), 1, "no duplicate delivery");
        assert_eq!(p.state_bytes(), retired_state, "no state regrowth");
    }

    #[test]
    #[should_panic(expected = "violates")]
    fn rejects_invalid_fault_threshold() {
        BrachaProcess::new(0, 6, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_id() {
        BrachaProcess::new(9, 4, 1);
    }
}
